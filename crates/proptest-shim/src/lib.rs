//! An offline, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build container has no crates.io access, so this workspace member
//! provides the subset of the proptest API the repository's property
//! tests use: the [`proptest!`] macro, the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, [`Just`], `any::<T>()`, integer-range
//! strategies, tuples, [`collection::vec`], [`option::of`],
//! [`sample::select`], [`prop_oneof!`], and the `prop_assert*` macros.
//! On top of the stock surface, [`correlated`] adds a two-table
//! correlated-key strategy for join differentials (shared key domain
//! with controllable overlap and skew, no rejection sampling).
//!
//! Differences from real proptest, by design:
//!
//! * **deterministic**: cases derive from a fixed per-test seed (the hash
//!   of the test name), so runs are reproducible and CI is stable;
//! * **no shrinking**: a failing case reports the sampled input verbatim.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod arbitrary;
pub mod collection;
pub mod correlated;
pub mod option;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError};

/// Declares deterministic property tests.
///
/// Mirrors proptest's macro shape: an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg_pat:pat in $arg_strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($arg_strat,)+);
            $crate::test_runner::run(
                &config,
                stringify!($name),
                &strategy,
                |($($arg_pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects (skips) the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniformly picks one of several strategies producing the same value
/// type (weights are not supported by the shim).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}
