//! The glob-import surface (`use proptest::prelude::*`).

pub use crate as prop;
pub use crate::arbitrary::{any, Arbitrary};
pub use crate::correlated::{join_tables, JoinConfig, JoinTables, SideData, TablePair};
pub use crate::strategy::{BoxedStrategy, Just, LazyJust, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
