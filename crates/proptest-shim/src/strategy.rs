//! The [`Strategy`] trait and its combinators.

use crate::test_runner::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for sampling values of one type.
///
/// The shim's strategies sample directly from an RNG; there is no
/// shrinking tree.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Maps sampled values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each sampled value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut Rng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(pub Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        self.0.sample(rng)
    }
}

/// A uniform choice among boxed strategies (the [`crate::prop_oneof!`]
/// backing type).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        let i = rng.next_below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.next_below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut Rng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// A lazily-constructed constant strategy (`LazyJust`), for parity with
/// proptest's prelude.
#[derive(Debug, Clone)]
pub struct LazyJust<T, F: Fn() -> T>(pub F, PhantomData<T>);

impl<T, F: Fn() -> T> LazyJust<T, F> {
    /// Wraps the constructor.
    pub fn new(f: F) -> Self {
        Self(f, PhantomData)
    }
}

impl<T, F: Fn() -> T> Strategy for LazyJust<T, F> {
    type Value = T;
    fn sample(&self, _rng: &mut Rng) -> T {
        (self.0)()
    }
}
