//! The deterministic case runner and its tiny splitmix/xorshift RNG.

use crate::strategy::Strategy;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// How many cases to run per test (the shim honours `cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by an assumption and should be skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (skipped) case with the given message.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "test case failed: {msg}"),
            TestCaseError::Reject(msg) => write!(f, "test case rejected: {msg}"),
        }
    }
}

/// A small deterministic RNG (xorshift64* seeded through splitmix64).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds from arbitrary bytes (the test name).
    pub fn seeded_from(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        // One splitmix64 round to spread low-entropy seeds.
        let mut z = h.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        Self((z ^ (z >> 31)) | 1)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-data generation.
        self.next_u64() % bound
    }
}

/// Runs `config.cases` successful cases of `test` over values sampled
/// from `strategy`, panicking on the first failure with the sampled
/// input included in the report.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, test: F)
where
    S: Strategy,
    S::Value: fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = Rng::seeded_from(name);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(20).max(100);
    while passed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest shim: {name} rejected too many cases ({attempts} attempts \
             for {passed} passes)"
        );
        let value = strategy.sample(&mut rng);
        let shown = format!("{value:#?}");
        let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => continue,
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("proptest case {name} failed: {msg}\ninput: {shown}")
            }
            Err(panic) => {
                eprintln!("proptest case {name} panicked\ninput: {shown}");
                resume_unwind(panic);
            }
        }
    }
}
