//! A two-table correlated-key strategy for join property tests.
//!
//! Join differentials need two tables whose key columns share a domain:
//! sampling each side's keys independently and uniformly makes matches
//! vanishingly rare (or forces `prop_assume!` rejection loops), so this
//! module draws both sides from one explicit pool of distinct key
//! tuples. The fraction of the pool reachable from *both* sides
//! ([`JoinConfig::overlap_pct`]) and the fraction of rows concentrated
//! on a small hot subset ([`JoinConfig::skew_pct`]) are tunables, and
//! every sample is produced directly — no rejection sampling anywhere.

use crate::strategy::Strategy;
use crate::test_runner::Rng;

/// Tunables for [`join_tables`].
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Number of key columns per table (composite join keys when > 1).
    pub key_columns: usize,
    /// Number of distinct key tuples in the shared pool.
    pub domain: usize,
    /// Percentage (0..=100) of the pool reachable from **both** sides;
    /// the rest is split into left-only and right-only keys, so 0 means
    /// the tables never match and 100 means every key can match.
    pub overlap_pct: u32,
    /// Percentage (0..=100) of each side's rows drawn from a small hot
    /// subset of its pool instead of uniformly — 0 is uniform, high
    /// values model the heavy-hitter distributions that stress
    /// broadcast-vs-partition choices.
    pub skew_pct: u32,
    /// Inclusive row-count range for the left table.
    pub left_rows: (usize, usize),
    /// Inclusive row-count range for the right table.
    pub right_rows: (usize, usize),
    /// Exclusive upper bound for the generated value columns.
    pub value_bound: u32,
}

impl Default for JoinConfig {
    fn default() -> Self {
        Self {
            key_columns: 1,
            domain: 16,
            overlap_pct: 60,
            skew_pct: 25,
            left_rows: (1, 48),
            right_rows: (1, 48),
            value_bound: 1_000,
        }
    }
}

/// One generated table side: column-major key columns plus one value
/// column of the same length.
#[derive(Debug, Clone)]
pub struct SideData {
    /// Key columns, column-major (`keys[c][row]`).
    pub keys: Vec<Vec<u32>>,
    /// The value column.
    pub vals: Vec<u32>,
}

impl SideData {
    /// Number of rows in this side.
    pub fn rows(&self) -> usize {
        self.vals.len()
    }

    /// The key tuple of one row.
    pub fn key_tuple(&self, row: usize) -> Vec<u32> {
        self.keys.iter().map(|c| c[row]).collect()
    }
}

/// The sampled pair of correlated tables.
#[derive(Debug, Clone)]
pub struct TablePair {
    /// Number of key columns in each side.
    pub key_columns: usize,
    /// The left table's data.
    pub left: SideData,
    /// The right table's data.
    pub right: SideData,
}

/// The strategy returned by [`join_tables`].
#[derive(Debug, Clone)]
pub struct JoinTables {
    cfg: JoinConfig,
}

/// A pair of tables whose keys come from one shared pool, per `cfg`.
pub fn join_tables(cfg: JoinConfig) -> JoinTables {
    assert!(cfg.key_columns >= 1, "join keys need at least one column");
    assert!(cfg.domain >= 1, "the key pool cannot be empty");
    assert!(cfg.overlap_pct <= 100 && cfg.skew_pct <= 100);
    assert!(cfg.left_rows.0 <= cfg.left_rows.1, "empty left row range");
    assert!(
        cfg.right_rows.0 <= cfg.right_rows.1,
        "empty right row range"
    );
    assert!(cfg.value_bound >= 1, "value bound must be positive");
    JoinTables { cfg }
}

/// `domain` distinct key tuples: the first component is a shuffled
/// contiguous window (distinct by construction — no rejection), the
/// remaining components are free random values. Components stay small
/// (`< SPREAD + domain`): grouping engines commonly size tables by the
/// key domain, so huge key values would make generated queries
/// needlessly expensive without adding coverage.
fn distinct_pool(rng: &mut Rng, domain: usize, key_columns: usize) -> Vec<Vec<u32>> {
    const SPREAD: u64 = 240;
    let offset = rng.next_below(SPREAD) as u32;
    let mut first: Vec<u32> = (0..domain as u32).map(|i| offset.wrapping_add(i)).collect();
    for i in (1..first.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        first.swap(i, j);
    }
    first
        .into_iter()
        .map(|head| {
            let mut tuple = Vec::with_capacity(key_columns);
            tuple.push(head);
            for _ in 1..key_columns {
                tuple.push(rng.next_below(SPREAD) as u32);
            }
            tuple
        })
        .collect()
}

/// Splits the pool into the tuples one side may use: the shared prefix
/// plus that side's exclusive slice of the remainder. Degenerate
/// configs (a side left with nothing) fall back to the whole pool so
/// the side can still produce rows.
fn side_pool(pool: &[Vec<u32>], shared: usize, left: bool) -> Vec<&[u32]> {
    let rest = &pool[shared..];
    let cut = rest.len().div_ceil(2);
    let own = if left { &rest[..cut] } else { &rest[cut..] };
    let picks: Vec<&[u32]> = pool[..shared]
        .iter()
        .chain(own.iter())
        .map(Vec::as_slice)
        .collect();
    if picks.is_empty() {
        pool.iter().map(Vec::as_slice).collect()
    } else {
        picks
    }
}

/// Fills one side: each row keys from `picks` (hot subset with
/// probability `skew_pct`%) and carries a bounded random value.
fn sample_side(rng: &mut Rng, picks: &[&[u32]], rows: usize, cfg: &JoinConfig) -> SideData {
    let hot = picks.len().div_ceil(8);
    let mut keys = vec![Vec::with_capacity(rows); cfg.key_columns];
    let mut vals = Vec::with_capacity(rows);
    for _ in 0..rows {
        let from_hot = rng.next_below(100) < cfg.skew_pct as u64;
        let bound = if from_hot { hot } else { picks.len() };
        let tuple = picks[rng.next_below(bound as u64) as usize];
        for (column, part) in keys.iter_mut().zip(tuple) {
            column.push(*part);
        }
        vals.push(rng.next_below(cfg.value_bound as u64) as u32);
    }
    SideData { keys, vals }
}

impl Strategy for JoinTables {
    type Value = TablePair;

    fn sample(&self, rng: &mut Rng) -> TablePair {
        let cfg = &self.cfg;
        let pool = distinct_pool(rng, cfg.domain, cfg.key_columns);
        let shared = cfg.domain * cfg.overlap_pct as usize / 100;
        let left_picks = side_pool(&pool, shared, true);
        let right_picks = side_pool(&pool, shared, false);
        let rows = |rng: &mut Rng, (lo, hi): (usize, usize)| {
            lo + rng.next_below((hi - lo) as u64 + 1) as usize
        };
        let left_rows = rows(rng, cfg.left_rows);
        let right_rows = rows(rng, cfg.right_rows);
        TablePair {
            key_columns: cfg.key_columns,
            left: sample_side(rng, &left_picks, left_rows, cfg),
            right: sample_side(rng, &right_picks, right_rows, cfg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn tuples(side: &SideData) -> BTreeSet<Vec<u32>> {
        (0..side.rows()).map(|r| side.key_tuple(r)).collect()
    }

    #[test]
    fn pool_tuples_are_distinct() {
        let mut rng = Rng::seeded_from("pool_tuples_are_distinct");
        for columns in 1..=3 {
            let pool = distinct_pool(&mut rng, 64, columns);
            let unique: BTreeSet<_> = pool.iter().cloned().collect();
            assert_eq!(unique.len(), 64);
            assert!(pool.iter().all(|t| t.len() == columns));
        }
    }

    #[test]
    fn zero_overlap_never_matches() {
        let cfg = JoinConfig {
            overlap_pct: 0,
            domain: 12,
            left_rows: (8, 32),
            right_rows: (8, 32),
            ..JoinConfig::default()
        };
        let strat = join_tables(cfg);
        let mut rng = Rng::seeded_from("zero_overlap_never_matches");
        for _ in 0..32 {
            let pair = strat.sample(&mut rng);
            let shared: Vec<_> = tuples(&pair.left)
                .intersection(&tuples(&pair.right))
                .cloned()
                .collect();
            assert!(shared.is_empty(), "disjoint pools matched: {shared:?}");
        }
    }

    #[test]
    fn full_overlap_produces_matches() {
        let cfg = JoinConfig {
            overlap_pct: 100,
            domain: 4,
            left_rows: (24, 24),
            right_rows: (24, 24),
            ..JoinConfig::default()
        };
        let strat = join_tables(cfg);
        let mut rng = Rng::seeded_from("full_overlap_produces_matches");
        for _ in 0..32 {
            let pair = strat.sample(&mut rng);
            let matched = tuples(&pair.left)
                .intersection(&tuples(&pair.right))
                .count();
            assert!(matched > 0, "24 rows over 4 shared keys must collide");
        }
    }

    #[test]
    fn composite_keys_and_row_ranges_are_honoured() {
        let cfg = JoinConfig {
            key_columns: 2,
            left_rows: (3, 7),
            right_rows: (1, 5),
            ..JoinConfig::default()
        };
        let strat = join_tables(cfg);
        let mut rng = Rng::seeded_from("composite_keys_and_row_ranges");
        for _ in 0..64 {
            let pair = strat.sample(&mut rng);
            assert_eq!(pair.key_columns, 2);
            assert_eq!(pair.left.keys.len(), 2);
            assert!((3..=7).contains(&pair.left.rows()));
            assert!((1..=5).contains(&pair.right.rows()));
            assert_eq!(pair.left.keys[0].len(), pair.left.vals.len());
            assert_eq!(pair.left.keys[1].len(), pair.left.vals.len());
        }
    }
}
