//! Option strategies (`option::of`).

use crate::strategy::Strategy;
use crate::test_runner::Rng;

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut Rng) -> Option<S::Value> {
        // 3-in-4 Some: biased toward exercising the interesting branch
        // while still covering None regularly.
        if rng.next_below(4) == 0 {
            None
        } else {
            Some(self.0.sample(rng))
        }
    }
}

/// `None` or a value from the inner strategy.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}
