//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Samples one arbitrary value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
