//! Collection strategies (`collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let n = self.size.lo + rng.next_below(span + 1) as usize;
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

/// A vector of values from `elem` with a length drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}
