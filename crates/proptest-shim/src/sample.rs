//! Sampling strategies (`sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::Rng;

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        self.0[rng.next_below(self.0.len() as u64) as usize].clone()
    }
}

/// Uniformly selects one of the given values (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select(options)
}
