//! A blocking client for the vagg wire protocol.
//!
//! [`Client`] owns one connection and speaks strict request/reply.
//! It exists for tests, benches and the example programs; it is also
//! the reference implementation for anyone writing a client in
//! another language — every method is a thin, readable mapping onto
//! one [`Request`] frame.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameError, Request, Response, WireRow, PROTOCOL_VERSION,
};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server sent a frame this client cannot parse.
    Frame(FrameError),
    /// The server answered with a typed error.
    Server {
        /// The wire error code.
        code: ErrorCode,
        /// The human-readable detail.
        message: String,
    },
    /// The server answered with the wrong response kind (a protocol
    /// state bug on one side).
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl ClientError {
    /// The server's typed error code, when this is a server error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// A statement's reply: rows for a `SELECT`, a rendered outcome for
/// everything else.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// A `SELECT`'s result rows.
    Rows(Vec<WireRow>),
    /// A non-`SELECT` acknowledgement.
    Outcome(String),
}

/// One blocking connection to a vagg server.
pub struct Client {
    stream: TcpStream,
    next_query_id: u64,
}

impl Client {
    /// Connects and completes the `Hello` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Self {
            stream,
            next_query_id: 0,
        };
        match client.call(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::HelloOk { .. } => Ok(client),
            other => Err(unexpected(&other)),
        }
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        Ok(Response::decode(&payload)?)
    }

    fn fresh_query_id(&mut self) -> u64 {
        self.next_query_id += 1;
        self.next_query_id
    }

    /// Runs one SQL statement under a fresh query id.
    pub fn run(&mut self, sql: &str) -> Result<Reply, ClientError> {
        let query_id = self.fresh_query_id();
        self.run_with_id(query_id, sql)
    }

    /// Runs one SQL statement under a caller-chosen query id — the
    /// handle [`Client::cancel`] (from any connection) refers to.
    pub fn run_with_id(&mut self, query_id: u64, sql: &str) -> Result<Reply, ClientError> {
        match self.call(&Request::Query {
            query_id,
            sql: sql.into(),
        })? {
            Response::Rows(rows) => Ok(Reply::Rows(rows)),
            Response::Outcome(text) => Ok(Reply::Outcome(text)),
            other => Err(server_or_unexpected(other)),
        }
    }

    /// Runs a `SELECT` and returns its rows (an error if the statement
    /// was not a `SELECT`).
    pub fn query(&mut self, sql: &str) -> Result<Vec<WireRow>, ClientError> {
        match self.run(sql)? {
            Reply::Rows(rows) => Ok(rows),
            Reply::Outcome(text) => Err(ClientError::Unexpected(format!(
                "expected rows, got outcome: {text}"
            ))),
        }
    }

    /// Plans and caches a statement with `?` placeholders; returns the
    /// statement id for [`Client::execute`].
    pub fn prepare(&mut self, sql: &str) -> Result<u32, ClientError> {
        match self.call(&Request::Prepare { sql: sql.into() })? {
            Response::Prepared { statement } => Ok(statement),
            other => Err(server_or_unexpected(other)),
        }
    }

    /// Binds and runs a prepared statement.
    pub fn execute(&mut self, statement: u32, params: &[u64]) -> Result<Vec<WireRow>, ClientError> {
        let query_id = self.fresh_query_id();
        match self.call(&Request::Execute {
            query_id,
            statement,
            params: params.to_vec(),
        })? {
            Response::Rows(rows) => Ok(rows),
            other => Err(server_or_unexpected(other)),
        }
    }

    /// Opens a transaction on this session.
    pub fn begin(&mut self, read_only: bool) -> Result<String, ClientError> {
        self.outcome(&Request::Begin { read_only })
    }

    /// Commits the open transaction.
    pub fn commit(&mut self) -> Result<String, ClientError> {
        self.outcome(&Request::Commit)
    }

    /// Rolls the open transaction back.
    pub fn rollback(&mut self) -> Result<String, ClientError> {
        self.outcome(&Request::Rollback)
    }

    /// Trips the cancel token of the query registered under
    /// `query_id`, whichever connection submitted it.
    pub fn cancel(&mut self, query_id: u64) -> Result<String, ClientError> {
        self.outcome(&Request::Cancel { query_id })
    }

    /// Fetches the server's metrics as Prometheus text.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(server_or_unexpected(other)),
        }
    }

    /// Closes the session cleanly.
    pub fn goodbye(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Goodbye)? {
            Response::Bye => Ok(()),
            other => Err(server_or_unexpected(other)),
        }
    }

    fn outcome(&mut self, request: &Request) -> Result<String, ClientError> {
        match self.call(request)? {
            Response::Outcome(text) => Ok(text),
            other => Err(server_or_unexpected(other)),
        }
    }
}

fn server_or_unexpected(resp: Response) -> ClientError {
    match resp {
        Response::Error { code, message } => ClientError::Server { code, message },
        other => unexpected(&other),
    }
}

fn unexpected(resp: &Response) -> ClientError {
    ClientError::Unexpected(format!("{resp:?}"))
}
