//! The serving loop: listener, sessions, admission, cancellation.
//!
//! [`serve`] binds a `TcpListener` and returns a [`ServerHandle`];
//! each accepted connection gets its own reader thread and its own
//! [`Database`] session over the shared catalogue, so sessions are
//! isolated (per-connection transactions, prepared statements, plan
//! cache) while all of them read the same column store.
//!
//! The interesting part is not the socket plumbing but the *policy*
//! between the socket and the engine:
//!
//! - **Admission control** — a bounded gate caps how many queries
//!   execute at once and how many may wait. When the wait queue is
//!   full the server answers [`ErrorCode::Overloaded`] *immediately*
//!   instead of wedging the connection, so clients see backpressure
//!   as a typed, retryable error rather than latency.
//! - **Cancellation** — every `Query`/`Execute` registers a
//!   [`CancelToken`] under its client-chosen `query_id` in a
//!   server-wide table, so a `Cancel` frame from *any* connection can
//!   trip it. The engine observes the token at morsel boundaries and
//!   the worker is freed mid-query.
//! - **Budgets** — the server can impose a wall-clock timeout and a
//!   morsel budget on every query it admits
//!   ([`ServerConfig::query_timeout`] /
//!   [`ServerConfig::morsel_budget`]); both surface as
//!   [`ErrorCode::Cancelled`] with the cause in the message.
//! - **Graceful shutdown** — [`ServerHandle::shutdown`] stops
//!   accepting, lets every in-flight query finish and its reply be
//!   written, then joins all connection threads.

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vagg_db::{
    CancelToken, Database, PlanError, PreparedStatement, SharedCatalogue, SqlError, SqlOutcome,
};

use crate::protocol::{
    write_frame, ErrorCode, Request, Response, WireRow, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};

/// How often an idle connection thread polls the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// How many consecutive read timeouts mid-frame before the server
/// gives up on a stalled sender (POLL × this = ~10 s).
const MAX_FRAME_STALLS: u32 = 200;

/// Serving policy and socket configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` (port 0 picks a free
    /// port; read the real one off [`ServerHandle::addr`]).
    pub addr: String,
    /// Queries allowed to execute concurrently. Admission beyond this
    /// waits in the queue.
    pub max_inflight: usize,
    /// Queries allowed to *wait* for admission. When the queue is
    /// full, further queries are rejected with
    /// [`ErrorCode::Overloaded`] without blocking the connection.
    pub max_queue: usize,
    /// Wall-clock budget per admitted query; exceeding it cancels the
    /// query at the next morsel boundary
    /// ([`vagg_db::CancelCause::TimedOut`]).
    pub query_timeout: Option<Duration>,
    /// Morsel budget per admitted query; exceeding it cancels the
    /// query ([`vagg_db::CancelCause::OverBudget`]).
    pub morsel_budget: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_inflight: 8,
            max_queue: 32,
            query_timeout: None,
            morsel_budget: None,
        }
    }
}

// ---------------------------------------------------------------------
// Admission gate

/// A bounded semaphore: `max_inflight` permits plus a wait queue of at
/// most `max_queue`. Unlike a plain semaphore, overflow is an
/// immediate typed rejection — the caller never blocks once the queue
/// is full, which is what keeps an overloaded server responsive.
struct Gate {
    max_inflight: usize,
    max_queue: usize,
    /// `(inflight, waiting)` under one lock so the reject decision is
    /// atomic with the counts.
    state: Mutex<(usize, usize)>,
    cond: Condvar,
}

struct GatePermit<'a> {
    gate: &'a Gate,
}

impl Gate {
    fn new(max_inflight: usize, max_queue: usize) -> Self {
        Self {
            max_inflight,
            max_queue,
            state: Mutex::new((0, 0)),
            cond: Condvar::new(),
        }
    }

    /// Admits the caller, waiting in the bounded queue if the server
    /// is at capacity. `Err(())` means the queue was full — overload.
    fn admit(&self) -> Result<GatePermit<'_>, ()> {
        let mut s = self.state.lock().unwrap();
        if s.0 < self.max_inflight {
            s.0 += 1;
            return Ok(GatePermit { gate: self });
        }
        if s.1 >= self.max_queue {
            return Err(());
        }
        s.1 += 1;
        while s.0 >= self.max_inflight {
            s = self.cond.wait(s).unwrap();
        }
        s.1 -= 1;
        s.0 += 1;
        Ok(GatePermit { gate: self })
    }

    /// `(inflight, queued)` right now.
    fn depth(&self) -> (usize, usize) {
        *self.state.lock().unwrap()
    }
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock().unwrap();
        s.0 -= 1;
        drop(s);
        self.gate.cond.notify_one();
    }
}

// ---------------------------------------------------------------------
// Serving stats

/// Aggregate serving counters, readable while the server runs. All
/// counters are monotonic except the gauges.
#[derive(Debug, Default)]
pub struct ServingStats {
    connections_total: AtomicU64,
    connections_open: AtomicU64,
    queries: AtomicU64,
    rows_returned: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    errors: AtomicU64,
}

impl ServingStats {
    /// Connections accepted since the server started.
    pub fn connections_total(&self) -> u64 {
        self.connections_total.load(Ordering::Relaxed)
    }

    /// Connections open right now.
    pub fn connections_open(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// Queries finished (success or typed error), excluding rejected.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Result rows written to the wire.
    pub fn rows_returned(&self) -> u64 {
        self.rows_returned.load(Ordering::Relaxed)
    }

    /// Queries rejected by admission control (`Overloaded`).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Queries that ended cancelled (explicit, timeout or budget).
    pub fn cancelled(&self) -> u64 {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Queries that ended in a non-cancellation error.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Server

struct ServerInner {
    catalogue: SharedCatalogue,
    config: ServerConfig,
    gate: Gate,
    /// In-flight cancel tokens keyed by the client-chosen `query_id`.
    /// Server-wide on purpose: a controller connection can cancel a
    /// query submitted on any other connection.
    cancels: Mutex<HashMap<u64, CancelToken>>,
    stats: ServingStats,
    started: Instant,
    shutdown: AtomicBool,
}

/// A running server. Dropping the handle shuts the server down
/// gracefully (same as [`ServerHandle::shutdown`]).
pub struct ServerHandle {
    addr: SocketAddr,
    inner: Arc<ServerInner>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Binds `config.addr` and starts serving `catalogue` on background
/// threads. Returns as soon as the listener is bound.
pub fn serve(catalogue: SharedCatalogue, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let inner = Arc::new(ServerInner {
        gate: Gate::new(config.max_inflight, config.max_queue),
        catalogue,
        config,
        cancels: Mutex::new(HashMap::new()),
        stats: ServingStats::default(),
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
    });
    let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let inner = Arc::clone(&inner);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("vagg-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if inner.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    inner
                        .stats
                        .connections_total
                        .fetch_add(1, Ordering::Relaxed);
                    inner.stats.connections_open.fetch_add(1, Ordering::Relaxed);
                    let inner = Arc::clone(&inner);
                    let handle = std::thread::Builder::new()
                        .name("vagg-conn".into())
                        .spawn(move || {
                            serve_connection(&inner, stream);
                            inner.stats.connections_open.fetch_sub(1, Ordering::Relaxed);
                        })
                        .expect("spawn connection thread");
                    conns.lock().unwrap().push(handle);
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        inner,
        accept: Some(accept),
        conns,
    })
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving counters.
    pub fn stats(&self) -> &ServingStats {
        &self.inner.stats
    }

    /// The same Prometheus exposition a `Metrics` frame returns.
    pub fn metrics_text(&self) -> String {
        self.inner.metrics_text()
    }

    /// Graceful shutdown: stop accepting, let in-flight queries finish
    /// and their replies drain, then join every connection thread.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        // `incoming()` blocks in accept(); a throwaway connection
        // wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

// ---------------------------------------------------------------------
// Per-connection loop

/// Reads one frame, polling the shutdown flag while idle between
/// frames. `Ok(None)` means the connection should close (client EOF or
/// server shutdown).
fn read_frame_polling(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    // Idle wait: the first length byte may take arbitrarily long, so
    // retry timeouts indefinitely, checking the shutdown flag.
    let mut first = [0u8; 1];
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(None);
        }
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if stalled(&e) => continue,
            Err(e) => return Err(e),
        }
    }
    // Once a frame has started, the rest must follow promptly; a
    // sender that stalls mid-frame is dropped rather than pinning the
    // thread forever.
    let mut len = [first[0], 0, 0, 0];
    read_exact_bounded(stream, &mut len[1..])?;
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; n];
    read_exact_bounded(stream, &mut payload)?;
    Ok(Some(payload))
}

fn read_exact_bounded(stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<()> {
    let mut at = 0;
    let mut stalls = 0u32;
    while at < buf.len() {
        match stream.read(&mut buf[at..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => {
                at += n;
                stalls = 0;
            }
            Err(e) if stalled(&e) => {
                stalls += 1;
                if stalls > MAX_FRAME_STALLS {
                    return Err(io::Error::new(io::ErrorKind::TimedOut, "frame stalled"));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn stalled(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn send(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    write_frame(stream, &resp.encode())
}

fn serve_connection(inner: &ServerInner, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));

    // Handshake: the first frame must be a version-compatible Hello.
    match read_frame_polling(&mut stream, &inner.shutdown) {
        Ok(Some(payload)) => match Request::decode(&payload) {
            Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {
                let hello = Response::HelloOk {
                    version: PROTOCOL_VERSION,
                    server: format!("vagg-serve/{}", env!("CARGO_PKG_VERSION")),
                };
                if send(&mut stream, &hello).is_err() {
                    return;
                }
            }
            Ok(Request::Hello { version }) => {
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: format!(
                            "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
                        ),
                    },
                );
                return;
            }
            Ok(_) | Err(_) => {
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: "the first frame must be Hello".into(),
                    },
                );
                return;
            }
        },
        Ok(None) | Err(_) => return,
    }

    // The session: one Database over the shared catalogue, owned by
    // this connection. Prepared statements are connection-scoped.
    let mut db = inner.catalogue.connect();
    let mut prepared: HashMap<u32, PreparedStatement> = HashMap::new();
    let mut next_statement = 0u32;

    loop {
        let payload = match read_frame_polling(&mut stream, &inner.shutdown) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(e) => {
                // A torn or oversize frame leaves the stream at an
                // unknowable offset; answer typed, then close.
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let response = match request {
            Request::Hello { .. } => {
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        code: ErrorCode::Protocol,
                        message: "duplicate Hello".into(),
                    },
                );
                return;
            }
            Request::Goodbye => {
                let _ = send(&mut stream, &Response::Bye);
                return;
            }
            Request::Query { query_id, sql } => inner.run_query(&mut db, query_id, &sql),
            Request::Prepare { sql } => match db.prepare(&sql) {
                Ok(statement) => {
                    next_statement += 1;
                    prepared.insert(next_statement, statement);
                    Response::Prepared {
                        statement: next_statement,
                    }
                }
                Err(e) => inner.error_response(&e),
            },
            Request::Execute {
                query_id,
                statement,
                params,
            } => inner.run_execute(&mut db, &mut prepared, query_id, statement, &params),
            Request::Begin { read_only } => inner.run_plain(
                &mut db,
                if read_only {
                    "BEGIN READ ONLY"
                } else {
                    "BEGIN"
                },
            ),
            Request::Commit => inner.run_plain(&mut db, "COMMIT"),
            Request::Rollback => inner.run_plain(&mut db, "ROLLBACK"),
            Request::Cancel { query_id } => inner.cancel(query_id),
            Request::Metrics => Response::Metrics(inner.metrics_text()),
        };
        if send(&mut stream, &response).is_err() {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// Request handling

impl ServerInner {
    /// Admission + cancellation bracket around one SQL statement.
    fn run_query(&self, db: &mut Database, query_id: u64, sql: &str) -> Response {
        let Ok(permit) = self.gate.admit() else {
            return self.reject();
        };
        let token = CancelToken::with_limits(self.config.query_timeout, self.config.morsel_budget);
        self.cancels.lock().unwrap().insert(query_id, token.clone());
        let result = db.run_sql_cancellable(sql, &token);
        self.cancels.lock().unwrap().remove(&query_id);
        drop(permit);
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(outcome) => self.render(outcome),
            Err(e) => self.count_and_render_error(&e),
        }
    }

    /// Same bracket for a prepared statement. The engine's prepared
    /// path is already a single staged pass, so the token is checked
    /// coarsely (before and after) rather than per morsel.
    fn run_execute(
        &self,
        db: &mut Database,
        prepared: &mut HashMap<u32, PreparedStatement>,
        query_id: u64,
        statement: u32,
        params: &[u64],
    ) -> Response {
        let Some(stmt) = prepared.get_mut(&statement) else {
            return Response::Error {
                code: ErrorCode::Bind,
                message: format!("unknown prepared statement id {statement}"),
            };
        };
        let Ok(permit) = self.gate.admit() else {
            return self.reject();
        };
        let token = CancelToken::with_limits(self.config.query_timeout, self.config.morsel_budget);
        self.cancels.lock().unwrap().insert(query_id, token.clone());
        let result = match token.cause() {
            Some(cause) => Err(SqlError::Cancelled(cause)),
            None => {
                let out = stmt.execute(db, params);
                match (out, token.cause()) {
                    (Ok(_), Some(cause)) => Err(SqlError::Cancelled(cause)),
                    (out, _) => out,
                }
            }
        };
        self.cancels.lock().unwrap().remove(&query_id);
        drop(permit);
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        match result {
            Ok(output) => self.render(SqlOutcome::Rows(output)),
            Err(e) => self.count_and_render_error(&e),
        }
    }

    /// Transaction brackets bypass admission: they touch only session
    /// state and must stay responsive even under query overload.
    fn run_plain(&self, db: &mut Database, sql: &str) -> Response {
        match db.run_sql(sql) {
            Ok(outcome) => self.render(outcome),
            Err(e) => self.count_and_render_error(&e),
        }
    }

    fn cancel(&self, query_id: u64) -> Response {
        match self.cancels.lock().unwrap().get(&query_id) {
            Some(token) => {
                token.cancel();
                Response::Outcome(format!("cancel signalled for query {query_id}"))
            }
            None => Response::Outcome(format!("no in-flight query {query_id}")),
        }
    }

    fn reject(&self) -> Response {
        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        let (inflight, queued) = self.gate.depth();
        Response::Error {
            code: ErrorCode::Overloaded,
            message: format!(
                "admission queue full ({inflight} in flight, {queued} queued); retry later"
            ),
        }
    }

    fn render(&self, outcome: SqlOutcome) -> Response {
        match outcome {
            SqlOutcome::Rows(output) => {
                self.stats
                    .rows_returned
                    .fetch_add(output.rows.len() as u64, Ordering::Relaxed);
                Response::Rows(
                    output
                        .rows
                        .into_iter()
                        .map(|row| WireRow {
                            group: row.group,
                            group_parts: row.group_parts,
                            values: row.values,
                        })
                        .collect(),
                )
            }
            SqlOutcome::Analyzed(analyzed) => Response::Outcome(analyzed.explain()),
            SqlOutcome::Plan(plan) => Response::Outcome(format!("{:?}", plan.steps())),
            SqlOutcome::JoinPlan(plan) => Response::Outcome(format!("{plan:?}")),
            SqlOutcome::Inserted(receipt) => Response::Outcome(format!(
                "inserted {} rows (data version {})",
                receipt.rows, receipt.data_version
            )),
            SqlOutcome::Deleted(receipt) => {
                Response::Outcome(format!("deleted {} rows", receipt.rows))
            }
            SqlOutcome::Updated(receipt) => {
                Response::Outcome(format!("updated {} rows", receipt.rows))
            }
            SqlOutcome::Queued(n) => Response::Outcome(format!("queued ({n} statements buffered)")),
            SqlOutcome::TransactionBegun => Response::Outcome("transaction begun".into()),
            SqlOutcome::TransactionCommitted => Response::Outcome("transaction committed".into()),
            SqlOutcome::TransactionRolledBack => {
                Response::Outcome("transaction rolled back".into())
            }
            SqlOutcome::SnapshotCreated => Response::Outcome("snapshot created".into()),
        }
    }

    fn count_and_render_error(&self, e: &SqlError) -> Response {
        if matches!(e, SqlError::Cancelled(_)) {
            self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.error_response(e)
    }

    fn error_response(&self, e: &SqlError) -> Response {
        Response::Error {
            code: classify(e),
            message: e.to_string(),
        }
    }

    /// The full exposition: the engine's metrics registry (query
    /// counts, cycle histogram, slow queries, executor gauges) plus
    /// the serving layer's own counters and derived rates.
    fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let snapshot = self.catalogue.metrics().snapshot();
        let mut text = snapshot.to_text();
        let (inflight, queued) = self.gate.depth();
        let uptime = self.started.elapsed().as_secs_f64().max(1e-9);
        let queries = self.stats.queries();
        let _ = writeln!(
            text,
            "vagg_server_connections_open {}",
            self.stats.connections_open()
        );
        let _ = writeln!(
            text,
            "vagg_server_connections_total {}",
            self.stats.connections_total()
        );
        let _ = writeln!(text, "vagg_server_queries_total {queries}");
        let _ = writeln!(
            text,
            "vagg_server_rows_returned_total {}",
            self.stats.rows_returned()
        );
        let _ = writeln!(text, "vagg_server_rejected_total {}", self.stats.rejected());
        let _ = writeln!(
            text,
            "vagg_server_cancelled_total {}",
            self.stats.cancelled()
        );
        let _ = writeln!(text, "vagg_server_errors_total {}", self.stats.errors());
        let _ = writeln!(text, "vagg_server_inflight {inflight}");
        let _ = writeln!(text, "vagg_server_queue_depth {queued}");
        let _ = writeln!(text, "vagg_server_uptime_seconds {uptime:.3}");
        let _ = writeln!(text, "vagg_server_qps {:.3}", queries as f64 / uptime);
        if let Some(p50) = snapshot.cycle_quantile(0.5) {
            let _ = writeln!(text, "vagg_query_cycles_p50 {p50}");
        }
        if let Some(p99) = snapshot.cycle_quantile(0.99) {
            let _ = writeln!(text, "vagg_query_cycles_p99 {p99}");
        }
        text
    }
}

fn classify(e: &SqlError) -> ErrorCode {
    match e {
        SqlError::Parse(_) => ErrorCode::Parse,
        SqlError::UnknownTable(_) => ErrorCode::UnknownTable,
        SqlError::Plan(PlanError::BindArity { .. } | PlanError::BindType { .. }) => ErrorCode::Bind,
        SqlError::Plan(_) => ErrorCode::Plan,
        SqlError::Cancelled(_) => ErrorCode::Cancelled,
        SqlError::NestedTransaction
        | SqlError::NoOpenTransaction
        | SqlError::TransactionStatement
        | SqlError::ReadOnly => ErrorCode::Transaction,
        _ => ErrorCode::Unsupported,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_gate_admits_up_to_capacity_and_rejects_queue_overflow() {
        let gate = Gate::new(2, 1);
        let a = gate.admit().unwrap();
        let b = gate.admit().unwrap();
        assert_eq!(gate.depth(), (2, 0));

        // A third caller would wait; prove the *reject* path with a
        // zero-capacity gate instead (waiting needs another thread).
        drop(a);
        drop(b);
        let closed = Gate::new(0, 0);
        assert!(closed.admit().is_err());
    }

    #[test]
    fn waiting_callers_are_admitted_when_a_permit_frees() {
        let gate = Arc::new(Gate::new(1, 4));
        let permit = gate.admit().unwrap();
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _permit = gate.admit().expect("queued caller is admitted");
            })
        };
        // Give the waiter time to queue, then free the permit.
        while gate.depth().1 == 0 {
            std::thread::yield_now();
        }
        drop(permit);
        waiter.join().unwrap();
        assert_eq!(gate.depth(), (0, 0));
    }
}
