//! vagg-server: a TCP serving front end over the vagg engine.
//!
//! The engine crates answer "how fast can a vector machine aggregate
//! a column?"; this crate answers "what does it take to *serve* that
//! engine?". It adds no query smarts — it is deliberately a policy
//! layer between sockets and [`vagg_db::SharedCatalogue`]:
//!
//! - a small length-prefixed framed **protocol** ([`protocol`]) with
//!   typed error codes, so clients distinguish a plan error from an
//!   overload rejection from a cancellation without parsing prose;
//! - a thread-per-connection **server** ([`server`]) where each
//!   connection owns a [`vagg_db::Database`] session (its own
//!   transactions and prepared statements) over the one shared
//!   column store;
//! - **admission control**: a bounded gate caps concurrent queries
//!   and the wait queue; overflow is an immediate, typed
//!   [`ErrorCode::Overloaded`] instead of unbounded queueing;
//! - **cancellation**: every query registers a
//!   [`vagg_db::CancelToken`] under a client-chosen id, server-wide,
//!   so any connection can cancel it; the engine observes the token
//!   at morsel boundaries. Optional per-query wall-clock and morsel
//!   budgets ride the same token;
//! - **live metrics**: the engine's metrics registry plus serving
//!   counters (QPS, p50/p99 query cycles, queue depth,
//!   rejected/cancelled counts) as a Prometheus text exposition over
//!   the wire;
//! - a blocking reference [`Client`] used by the tests, benches and
//!   examples.
//!
//! ```no_run
//! use vagg_server::{serve, Client, Reply, ServerConfig};
//!
//! let catalogue = vagg_db::SharedCatalogue::new();
//! // ... register tables ...
//! let handle = serve(catalogue, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let rows = client.query("SELECT g, COUNT(*) FROM r GROUP BY g").unwrap();
//! # let _ = rows;
//! client.goodbye().unwrap();
//! handle.shutdown(); // drains in-flight queries, joins every thread
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, Reply};
pub use protocol::{ErrorCode, FrameError, Request, Response, WireRow, PROTOCOL_VERSION};
pub use server::{serve, ServerConfig, ServerHandle, ServingStats};
