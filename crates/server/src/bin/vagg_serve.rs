//! `vagg-serve` — stand up a vagg server on a TCP port.
//!
//! ```text
//! vagg-serve [--addr HOST:PORT] [--max-inflight N] [--max-queue N]
//!            [--timeout-ms MS] [--morsel-budget N] [--demo-rows N]
//! ```
//!
//! With `--demo-rows N` the server seeds two tables before listening:
//! `events(g, v, k)` with N rows and `dims(g, w)` with the matching
//! key domain — enough to try every statement in the protocol
//! (aggregates, joins, prepared statements, transactions) from a
//! fresh checkout:
//!
//! ```text
//! $ vagg-serve --addr 127.0.0.1:4711 --demo-rows 100000
//! ```

use std::process::exit;
use std::time::Duration;

use vagg_db::{SharedCatalogue, Table};
use vagg_server::{serve, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: vagg-serve [--addr HOST:PORT] [--max-inflight N] [--max-queue N]\n\
         \x20                 [--timeout-ms MS] [--morsel-budget N] [--demo-rows N]"
    );
    exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("{flag} needs a value");
        usage()
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("{flag}: cannot parse {value:?}");
            usage()
        }
    }
}

/// The demo data: `events` rows spread over 31 groups with two value
/// columns, and a `dims` side table keyed by the same group domain so
/// joins have something to probe.
fn seed_demo(catalogue: &SharedCatalogue, rows: usize) {
    catalogue.register(
        Table::new("events")
            .with_column("g", (0..rows).map(|i| ((i * 7919) % 31) as u32).collect())
            .with_column("v", (0..rows).map(|i| ((i * 31) % 100) as u32).collect())
            .with_column("k", (0..rows).map(|i| ((i * 13) % 977) as u32).collect()),
    );
    catalogue.register(
        Table::new("dims")
            .with_column("g", (0..31).collect())
            .with_column("w", (0..31).map(|i| (i * i) as u32).collect()),
    );
    eprintln!("seeded events({rows} rows: g, v, k) and dims(31 rows: g, w)");
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4711".into(),
        ..ServerConfig::default()
    };
    let mut demo_rows = 0usize;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => config.addr = parse(&flag, args.next()),
            "--max-inflight" => config.max_inflight = parse(&flag, args.next()),
            "--max-queue" => config.max_queue = parse(&flag, args.next()),
            "--timeout-ms" => {
                config.query_timeout = Some(Duration::from_millis(parse(&flag, args.next())))
            }
            "--morsel-budget" => config.morsel_budget = Some(parse(&flag, args.next())),
            "--demo-rows" => demo_rows = parse(&flag, args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }

    let catalogue = SharedCatalogue::new();
    if demo_rows > 0 {
        seed_demo(&catalogue, demo_rows);
    }

    let handle = match serve(catalogue, config.clone()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", config.addr);
            exit(1)
        }
    };
    eprintln!(
        "vagg-serve listening on {} (max {} in flight, queue {})",
        handle.addr(),
        config.max_inflight,
        config.max_queue
    );

    // Serve until killed. The accept and connection threads do all the
    // work; this thread just keeps the handle (and so the server)
    // alive.
    loop {
        std::thread::park();
    }
}
