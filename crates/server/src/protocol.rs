//! The wire protocol: length-prefixed frames of typed messages.
//!
//! Every message travels as one *frame*: a little-endian `u32` payload
//! length, then the payload — an opcode byte followed by the message
//! body. Integers are little-endian; strings are a `u32` byte length
//! plus UTF-8 bytes. A frame longer than [`MAX_FRAME_BYTES`] is a
//! protocol error before any allocation happens, so a hostile length
//! prefix cannot balloon server memory.
//!
//! Requests ([`Request`]) flow client → server, responses
//! ([`Response`]) flow back; the connection is strictly
//! request/reply. Errors are typed on the wire as an [`ErrorCode`]
//! plus a human-readable message, so clients can tell a plan error
//! from an overload rejection from a cancellation without parsing
//! prose.

use std::fmt;
use std::io::{self, Read, Write};

/// Version carried in `Hello` / `HelloOk`. The server rejects a client
/// whose major version it does not speak.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's payload. Large enough for any realistic
/// result batch, small enough that a hostile length prefix cannot make
/// the server allocate gigabytes.
pub const MAX_FRAME_BYTES: usize = 1 << 24;

// Request opcodes.
const OP_HELLO: u8 = 0x01;
const OP_QUERY: u8 = 0x02;
const OP_PREPARE: u8 = 0x03;
const OP_EXECUTE: u8 = 0x04;
const OP_BEGIN: u8 = 0x05;
const OP_COMMIT: u8 = 0x06;
const OP_ROLLBACK: u8 = 0x07;
const OP_CANCEL: u8 = 0x08;
const OP_METRICS: u8 = 0x09;
const OP_GOODBYE: u8 = 0x0A;

// Response opcodes.
const OP_HELLO_OK: u8 = 0x81;
const OP_ROWS: u8 = 0x82;
const OP_ERROR: u8 = 0x83;
const OP_PREPARED: u8 = 0x84;
const OP_OUTCOME: u8 = 0x85;
const OP_METRICS_TEXT: u8 = 0x86;
const OP_BYE: u8 = 0x87;

/// A malformed frame: bad opcode, truncated body, oversize length,
/// invalid UTF-8. The server answers with [`ErrorCode::Protocol`] and
/// closes the connection (after a torn frame the stream offset is
/// unknowable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(pub String);

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

/// Typed wire error codes — the stable part of an error reply. The
/// message alongside is for humans and may change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Malformed frame; the server closes the connection after this.
    Protocol = 1,
    /// The statement did not parse.
    Parse = 2,
    /// The planner rejected the query.
    Plan = 3,
    /// Prepared-statement bind failure (arity or type).
    Bind = 4,
    /// The `FROM` table is not registered.
    UnknownTable = 5,
    /// The admission queue is full; retry later.
    Overloaded = 6,
    /// The query was cancelled (explicitly, by timeout, or by morsel
    /// budget — the message says which).
    Cancelled = 7,
    /// Transaction-state misuse (nested `BEGIN`, stray `COMMIT`, …).
    Transaction = 8,
    /// The statement is valid but this surface does not serve it, or
    /// an unclassified engine error.
    Unsupported = 9,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Parse,
            3 => ErrorCode::Plan,
            4 => ErrorCode::Bind,
            5 => ErrorCode::UnknownTable,
            6 => ErrorCode::Overloaded,
            7 => ErrorCode::Cancelled,
            8 => ErrorCode::Transaction,
            9 => ErrorCode::Unsupported,
            _ => return None,
        })
    }
}

/// One result row on the wire — the engine's
/// [`Row`](vagg_db::Row) without the engine types.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRow {
    /// The (possibly fused) group key.
    pub group: u32,
    /// The per-column parts of a composite key (one entry for plain
    /// grouping).
    pub group_parts: Vec<u32>,
    /// One value per selected aggregate, in `SELECT` order.
    pub values: Vec<f64>,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the session; must be the first frame.
    Hello {
        /// The protocol version the client speaks.
        version: u32,
    },
    /// Run one SQL statement. `query_id` is the client-chosen handle
    /// `Cancel` refers to; ids are scoped to the whole server, so any
    /// connection may cancel it.
    Query {
        /// Client-chosen cancellation handle.
        query_id: u64,
        /// The statement.
        sql: String,
    },
    /// Plan and cache a statement with `?` placeholders.
    Prepare {
        /// The parameterised statement.
        sql: String,
    },
    /// Bind and run a prepared statement.
    Execute {
        /// Client-chosen cancellation handle (like `Query`).
        query_id: u64,
        /// The id `Prepared` returned.
        statement: u32,
        /// One value per `?` placeholder.
        params: Vec<u64>,
    },
    /// Open a transaction on this session.
    Begin {
        /// `BEGIN READ ONLY` (pinned snapshot) vs plain `BEGIN`
        /// (buffered writes).
        read_only: bool,
    },
    /// Commit the open transaction.
    Commit,
    /// Roll the open transaction back.
    Rollback,
    /// Trip the cancel token of the in-flight query registered under
    /// `query_id` — on *any* connection.
    Cancel {
        /// The target query's client-chosen handle.
        query_id: u64,
    },
    /// Ask for the server's metrics as Prometheus text.
    Metrics,
    /// Close the session cleanly.
    Goodbye,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The session is open.
    HelloOk {
        /// The protocol version the server speaks.
        version: u32,
        /// Human-readable server identification.
        server: String,
    },
    /// A `SELECT`'s result rows.
    Rows(Vec<WireRow>),
    /// A non-`SELECT` statement's acknowledgement (rendered outcome).
    Outcome(String),
    /// A `Prepare` succeeded; `Execute` with this id.
    Prepared {
        /// Server-assigned statement id, scoped to this connection.
        statement: u32,
    },
    /// The metrics exposition.
    Metrics(String),
    /// A typed failure.
    Error {
        /// The stable, machine-readable classification.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Goodbye acknowledgement; the server closes after sending it.
    Bye,
}

// ---------------------------------------------------------------------
// Framing

/// Writes one frame: length prefix then payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. `Ok(None)` is a clean EOF at a frame
/// boundary; an EOF mid-frame is an error (torn frame).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut len[1..])?,
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Body primitives

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.at < n {
            return Err(FrameError(format!(
                "truncated body: wanted {n} bytes, {} left",
                self.buf.len() - self.at
            )));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError("invalid UTF-8".into()))
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError(format!(
                "{} trailing bytes after the message body",
                self.buf.len() - self.at
            )))
        }
    }
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------
// Request encode/decode

impl Request {
    /// Serialises the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello { version } => {
                buf.push(OP_HELLO);
                buf.extend_from_slice(&version.to_le_bytes());
            }
            Request::Query { query_id, sql } => {
                buf.push(OP_QUERY);
                buf.extend_from_slice(&query_id.to_le_bytes());
                put_string(&mut buf, sql);
            }
            Request::Prepare { sql } => {
                buf.push(OP_PREPARE);
                put_string(&mut buf, sql);
            }
            Request::Execute {
                query_id,
                statement,
                params,
            } => {
                buf.push(OP_EXECUTE);
                buf.extend_from_slice(&query_id.to_le_bytes());
                buf.extend_from_slice(&statement.to_le_bytes());
                buf.extend_from_slice(&(params.len() as u16).to_le_bytes());
                for p in params {
                    buf.extend_from_slice(&p.to_le_bytes());
                }
            }
            Request::Begin { read_only } => {
                buf.push(OP_BEGIN);
                buf.push(u8::from(*read_only));
            }
            Request::Commit => buf.push(OP_COMMIT),
            Request::Rollback => buf.push(OP_ROLLBACK),
            Request::Cancel { query_id } => {
                buf.push(OP_CANCEL);
                buf.extend_from_slice(&query_id.to_le_bytes());
            }
            Request::Metrics => buf.push(OP_METRICS),
            Request::Goodbye => buf.push(OP_GOODBYE),
        }
        buf
    }

    /// Parses a frame payload as a request.
    pub fn decode(payload: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            OP_HELLO => Request::Hello { version: c.u32()? },
            OP_QUERY => Request::Query {
                query_id: c.u64()?,
                sql: c.string()?,
            },
            OP_PREPARE => Request::Prepare { sql: c.string()? },
            OP_EXECUTE => {
                let query_id = c.u64()?;
                let statement = c.u32()?;
                let n = c.u16()? as usize;
                let mut params = Vec::with_capacity(n);
                for _ in 0..n {
                    params.push(c.u64()?);
                }
                Request::Execute {
                    query_id,
                    statement,
                    params,
                }
            }
            OP_BEGIN => Request::Begin {
                read_only: c.u8()? != 0,
            },
            OP_COMMIT => Request::Commit,
            OP_ROLLBACK => Request::Rollback,
            OP_CANCEL => Request::Cancel { query_id: c.u64()? },
            OP_METRICS => Request::Metrics,
            OP_GOODBYE => Request::Goodbye,
            op => return Err(FrameError(format!("unknown request opcode {op:#04x}"))),
        };
        c.done()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------
// Response encode/decode

impl Response {
    /// Serialises the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::HelloOk { version, server } => {
                buf.push(OP_HELLO_OK);
                buf.extend_from_slice(&version.to_le_bytes());
                put_string(&mut buf, server);
            }
            Response::Rows(rows) => {
                buf.push(OP_ROWS);
                buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    buf.extend_from_slice(&row.group.to_le_bytes());
                    buf.extend_from_slice(&(row.group_parts.len() as u16).to_le_bytes());
                    for p in &row.group_parts {
                        buf.extend_from_slice(&p.to_le_bytes());
                    }
                    buf.extend_from_slice(&(row.values.len() as u16).to_le_bytes());
                    for v in &row.values {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Response::Outcome(text) => {
                buf.push(OP_OUTCOME);
                put_string(&mut buf, text);
            }
            Response::Prepared { statement } => {
                buf.push(OP_PREPARED);
                buf.extend_from_slice(&statement.to_le_bytes());
            }
            Response::Metrics(text) => {
                buf.push(OP_METRICS_TEXT);
                put_string(&mut buf, text);
            }
            Response::Error { code, message } => {
                buf.push(OP_ERROR);
                buf.extend_from_slice(&(*code as u16).to_le_bytes());
                put_string(&mut buf, message);
            }
            Response::Bye => buf.push(OP_BYE),
        }
        buf
    }

    /// Parses a frame payload as a response.
    pub fn decode(payload: &[u8]) -> Result<Self, FrameError> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            OP_HELLO_OK => Response::HelloOk {
                version: c.u32()?,
                server: c.string()?,
            },
            OP_ROWS => {
                let n = c.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let group = c.u32()?;
                    let parts = c.u16()? as usize;
                    let mut group_parts = Vec::with_capacity(parts);
                    for _ in 0..parts {
                        group_parts.push(c.u32()?);
                    }
                    let vals = c.u16()? as usize;
                    let mut values = Vec::with_capacity(vals);
                    for _ in 0..vals {
                        values.push(c.f64()?);
                    }
                    rows.push(WireRow {
                        group,
                        group_parts,
                        values,
                    });
                }
                Response::Rows(rows)
            }
            OP_OUTCOME => Response::Outcome(c.string()?),
            OP_PREPARED => Response::Prepared {
                statement: c.u32()?,
            },
            OP_METRICS_TEXT => Response::Metrics(c.string()?),
            OP_ERROR => {
                let raw = c.u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or_else(|| FrameError(format!("unknown error code {raw}")))?;
                Response::Error {
                    code,
                    message: c.string()?,
                }
            }
            OP_BYE => Response::Bye,
            op => return Err(FrameError(format!("unknown response opcode {op:#04x}"))),
        };
        c.done()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello { version: 1 });
        round_trip_request(Request::Query {
            query_id: 42,
            sql: "SELECT g, COUNT(*) FROM r GROUP BY g".into(),
        });
        round_trip_request(Request::Prepare {
            sql: "SELECT g, SUM(v) FROM r WHERE v > ? GROUP BY g".into(),
        });
        round_trip_request(Request::Execute {
            query_id: 7,
            statement: 3,
            params: vec![10, 20, 30],
        });
        round_trip_request(Request::Begin { read_only: true });
        round_trip_request(Request::Commit);
        round_trip_request(Request::Rollback);
        round_trip_request(Request::Cancel { query_id: 42 });
        round_trip_request(Request::Metrics);
        round_trip_request(Request::Goodbye);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::HelloOk {
            version: 1,
            server: "vagg".into(),
        });
        round_trip_response(Response::Rows(vec![
            WireRow {
                group: 3,
                group_parts: vec![1, 2],
                values: vec![2.0, 7.5],
            },
            WireRow {
                group: 0,
                group_parts: vec![0],
                values: vec![],
            },
        ]));
        round_trip_response(Response::Outcome("inserted 3 rows".into()));
        round_trip_response(Response::Prepared { statement: 9 });
        round_trip_response(Response::Metrics("vagg_queries 1\n".into()));
        round_trip_response(Response::Error {
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        });
        round_trip_response(Response::Bye);
    }

    #[test]
    fn garbage_is_a_typed_frame_error() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xFF, 1, 2, 3]).is_err());
        // Truncated string length.
        assert!(Request::decode(&[OP_PREPARE, 0xFF, 0xFF, 0xFF]).is_err());
        // String length pointing past the body.
        assert!(Request::decode(&[OP_PREPARE, 100, 0, 0, 0, b'x']).is_err());
        // Trailing junk after a complete message.
        assert!(Request::decode(&[OP_COMMIT, 0]).is_err());
        // Non-UTF8 SQL.
        assert!(Request::decode(&[OP_PREPARE, 2, 0, 0, 0, 0xC3, 0x28]).is_err());
    }

    #[test]
    fn frames_round_trip_and_cap_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None);

        // A hostile length prefix errors before allocating.
        let huge = (u32::MAX).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());

        // A torn frame (EOF mid-payload) is an error, not a hang.
        let torn = [5u8, 0, 0, 0, b'x'];
        assert!(read_frame(&mut &torn[..]).is_err());
    }
}
