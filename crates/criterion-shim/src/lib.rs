//! An offline, dependency-free stand-in for the [`criterion`] crate.
//!
//! The build container has no crates.io access, so this workspace member
//! provides the subset of the criterion API the repository's benches
//! use: [`Criterion`], [`BenchmarkGroup`] (with `warm_up_time` /
//! `measurement_time` / `sample_size`), [`BenchmarkId`], `bench_function`
//! / `bench_with_input`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is honest but simple: each benchmark warms up for one
//! iteration, then runs timed iterations until the configured
//! measurement window (or an iteration cap) elapses, and reports the
//! mean wall time per iteration on stdout.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement marker types.

    /// Wall-clock time (the shim's only measurement).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    /// (total elapsed, iterations) accumulated by [`Bencher::iter`].
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times the routine: one warm-up call, then iterations until the
    /// measurement window (or a 1000-iteration cap) elapses.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement_time || iters >= 1_000 {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(200),
        }
    }
}

fn run_one(id: &str, settings: Settings, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        measurement_time: settings.measurement_time,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) if iters > 0 => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            println!(
                "bench {id:<40} {:>12.3} ms/iter ({iters} iters)",
                per_iter * 1e3
            );
        }
        _ => println!("bench {id:<40} (no measurement)"),
    }
}

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            settings: Settings::default(),
            _measurement: PhantomData,
        }
    }

    /// Benchmarks one function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into().id, self.settings, f);
        self
    }
}

/// A group of benchmarks sharing settings and a name prefix.
pub struct BenchmarkGroup<'a, M> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Accepted for API compatibility (the shim warms up one iteration).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the timed window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Accepted for API compatibility (the shim sizes by time, not count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks one function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.settings, f);
        self
    }

    /// Benchmarks one function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.settings, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects bench functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// The bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
