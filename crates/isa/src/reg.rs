//! Architectural vector state: vector registers, mask registers and the
//! vector length register (§II-A of the paper).
//!
//! The paper's ISA extension provides sixteen logical vector registers and
//! four logical mask registers, all `MVL` elements wide, plus a vector length
//! register managed with explicit get/set instructions. (The thirty-two
//! *physical* registers of the paper exist only for renaming and are a
//! microarchitectural matter — see `vagg-cpu`; the architectural state here
//! is the logical file.)

use std::fmt;

/// Number of logical vector registers (paper §II-A).
pub const NUM_VREGS: usize = 16;
/// Number of logical mask registers (paper §II-A).
pub const NUM_MASKS: usize = 4;

/// Names a logical vector register `v0..v15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vreg(pub u8);

/// Names a logical mask register `m0..m3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mreg(pub u8);

impl Vreg {
    /// Validates the register index.
    pub fn checked(i: u8) -> Option<Vreg> {
        (usize::from(i) < NUM_VREGS).then_some(Vreg(i))
    }
}

impl Mreg {
    /// Validates the register index.
    pub fn checked(i: u8) -> Option<Mreg> {
        (usize::from(i) < NUM_MASKS).then_some(Mreg(i))
    }
}

impl fmt::Display for Vreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Mreg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One vector register's contents. Elements are 64-bit; the paper's
/// experiments use 32-bit keys and values, which occupy the low half.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorData {
    elems: Vec<u64>,
}

impl VectorData {
    /// A register of `mvl` zeroed elements.
    pub fn zeroed(mvl: usize) -> Self {
        Self {
            elems: vec![0; mvl],
        }
    }

    /// Wraps existing element data.
    pub fn from_elems(elems: Vec<u64>) -> Self {
        Self { elems }
    }

    /// The elements.
    pub fn as_slice(&self) -> &[u64] {
        &self.elems
    }

    /// Mutable access to the elements.
    pub fn as_mut_slice(&mut self) -> &mut [u64] {
        &mut self.elems
    }

    /// Register width (the MVL it was created with).
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the register holds zero elements (only for MVL = 0, which the
    /// file never constructs).
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }
}

/// One mask register's contents: one bit per element position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskData {
    bits: Vec<bool>,
}

impl MaskData {
    /// A mask of `mvl` cleared bits.
    pub fn cleared(mvl: usize) -> Self {
        Self {
            bits: vec![false; mvl],
        }
    }

    /// A mask with the first `vl` bits set (the implicit "all" mask).
    pub fn all_set(mvl: usize, vl: usize) -> Self {
        let mut bits = vec![false; mvl];
        for b in bits.iter_mut().take(vl) {
            *b = true;
        }
        Self { bits }
    }

    /// Wraps existing bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// The bits.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Mutable access to the bits.
    pub fn as_mut_slice(&mut self) -> &mut [bool] {
        &mut self.bits
    }

    /// Number of set bits among the first `vl` (the popcount instruction).
    pub fn popcount(&self, vl: usize) -> usize {
        self.bits.iter().take(vl).filter(|&&b| b).count()
    }

    /// Register width.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the mask holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }
}

/// The complete architectural vector state.
#[derive(Debug, Clone)]
pub struct VectorFile {
    mvl: usize,
    vl: usize,
    vregs: Vec<VectorData>,
    masks: Vec<MaskData>,
}

impl VectorFile {
    /// Creates a file of [`NUM_VREGS`] vector and [`NUM_MASKS`] mask
    /// registers, all `mvl` wide, with the vector length initialised to
    /// `mvl`.
    ///
    /// # Panics
    ///
    /// Panics if `mvl == 0`.
    pub fn new(mvl: usize) -> Self {
        assert!(mvl > 0, "MVL must be positive");
        Self {
            mvl,
            vl: mvl,
            vregs: (0..NUM_VREGS).map(|_| VectorData::zeroed(mvl)).collect(),
            masks: (0..NUM_MASKS).map(|_| MaskData::cleared(mvl)).collect(),
        }
    }

    /// Maximum vector length.
    pub fn mvl(&self) -> usize {
        self.mvl
    }

    /// Current vector length (`get vlen`).
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Sets the vector length (`set vlen`), clamped to MVL as in classic
    /// vector machines.
    pub fn set_vl(&mut self, vl: usize) {
        self.vl = vl.min(self.mvl);
    }

    /// Reads a vector register.
    pub fn vreg(&self, r: Vreg) -> &VectorData {
        &self.vregs[usize::from(r.0)]
    }

    /// Writes a vector register.
    pub fn vreg_mut(&mut self, r: Vreg) -> &mut VectorData {
        &mut self.vregs[usize::from(r.0)]
    }

    /// Reads a mask register.
    pub fn mask(&self, m: Mreg) -> &MaskData {
        &self.masks[usize::from(m.0)]
    }

    /// Writes a mask register.
    pub fn mask_mut(&mut self, m: Mreg) -> &mut MaskData {
        &mut self.masks[usize::from(m.0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_has_sixteen_vregs_four_masks() {
        let f = VectorFile::new(64);
        assert!(Vreg::checked(15).is_some());
        assert!(Vreg::checked(16).is_none());
        assert!(Mreg::checked(3).is_some());
        assert!(Mreg::checked(4).is_none());
        assert_eq!(f.vreg(Vreg(15)).len(), 64);
        assert_eq!(f.mask(Mreg(3)).len(), 64);
    }

    #[test]
    fn vl_initialises_to_mvl_and_clamps() {
        let mut f = VectorFile::new(64);
        assert_eq!(f.vl(), 64);
        f.set_vl(10);
        assert_eq!(f.vl(), 10);
        f.set_vl(1000);
        assert_eq!(f.vl(), 64);
        f.set_vl(0);
        assert_eq!(f.vl(), 0);
    }

    #[test]
    fn registers_are_independent() {
        let mut f = VectorFile::new(8);
        f.vreg_mut(Vreg(0)).as_mut_slice()[0] = 7;
        assert_eq!(f.vreg(Vreg(1)).as_slice()[0], 0);
    }

    #[test]
    fn mask_popcount_respects_vl() {
        let mut m = MaskData::cleared(8);
        m.as_mut_slice()[0] = true;
        m.as_mut_slice()[5] = true;
        assert_eq!(m.popcount(8), 2);
        assert_eq!(m.popcount(5), 1);
        assert_eq!(m.popcount(0), 0);
    }

    #[test]
    fn all_set_mask() {
        let m = MaskData::all_set(8, 3);
        assert_eq!(
            m.as_slice(),
            &[true, true, true, false, false, false, false, false]
        );
    }

    #[test]
    #[should_panic(expected = "MVL must be positive")]
    fn zero_mvl_panics() {
        VectorFile::new(0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Vreg(3).to_string(), "v3");
        assert_eq!(Mreg(1).to_string(), "m1");
    }
}
