//! # vagg-isa
//!
//! The vector SIMD instruction set of *"Future Vector Microprocessor
//! Extensions for Data Aggregations"* (Hayes et al., ISCA 2016), as a
//! faithful functional emulation layer with the paper's timing metadata.
//!
//! The ISA extends a superscalar x86-64 core with:
//!
//! * sixteen logical vector registers and four logical mask registers of
//!   configurable width (MVL), plus a vector length register ([`reg`]);
//! * the regular instruction suite of Table III ([`exec`], [`inst`]);
//! * three classes of vector memory access — unit-stride, strided and
//!   indexed ([`inst::MemPattern`]);
//! * the irregular-DLP instructions VPI and VLU from VSR sort (HPCA 2015)
//!   and this paper's VGAsum/VGAmin/VGAmax, all backed by an MVL-entry CAM
//!   with `p` ports ([`cam`], [`irregular`]).
//!
//! Functional semantics and cycle-occupancy rules are kept side by side so
//! the `vagg-sim` machine can execute and time every instruction exactly as
//! the paper specifies.
//!
//! Beyond the paper's own proposal, [`conflict`] models the best-effort
//! AVX-512-CDI-style conflict detection of §VI-B's related work, so the
//! paper's qualitative comparison can be measured.
//!
//! ```
//! use vagg_isa::irregular::{vpi, vga_sum};
//!
//! // Figure 10a of the paper.
//! let keys = [7, 5, 5, 5, 11, 9, 9, 11];
//! assert_eq!(vpi(&keys, 8, 4).value, vec![0, 0, 1, 2, 0, 0, 1, 1]);
//!
//! // Figure 13 of the paper.
//! let vals = [6, 3, 4, 9, 15, 2, 3, 4];
//! assert_eq!(vga_sum(&keys, &vals, 8, 4).value,
//!            vec![6, 3, 7, 16, 15, 2, 5, 19]);
//! ```

#![warn(missing_docs)]

pub mod cam;
pub mod conflict;
pub mod exec;
pub mod inst;
pub mod irregular;
pub mod reg;

pub use exec::{BinOp, CmpOp, RedOp};
pub use inst::{InstClass, Instruction, MemDir, MemPattern, VecOpTiming};
pub use reg::{MaskData, Mreg, VectorData, VectorFile, Vreg, NUM_MASKS, NUM_VREGS};
