//! The CAM (content-addressable memory) structure that implements the
//! irregular-DLP instructions (paper Figure 11 / Figure 14).
//!
//! The hardware holds one entry per MVL element: `{valid, key, last_idx,
//! accumulator}`. An input vector is processed from the least- to the
//! most-significant element; each element takes two cycles (lookup +
//! write-back). To reduce latency the CAM has `p` ports: a *slice* of up to
//! `p` adjacent elements can be processed in parallel **provided the slice
//! contains no two equal keys** (a conflict would require same-cycle
//! read-after-write on one entry). This port model is what makes sorted
//! inputs pay the maximum latency (every adjacent pair conflicts) while
//! high-cardinality inputs approach `2 * ceil(VL / p)` cycles — exactly the
//! behaviour the paper reports in §V-B.

/// One CAM entry (Figure 11: `valid`, `key`, `last idx`, `count`/`sum`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    key: u64,
    last_idx: usize,
    acc: u64,
}

/// Software model of the MVL-entry CAM with `p` ports.
///
/// The same structure backs VPI, VLU and the VGAx family; only the update
/// rule differs (increment vs. sum/min/max with a value operand) and whether
/// the output is taken before or after the update.
#[derive(Debug, Clone)]
pub struct Cam {
    entries: Vec<Entry>,
    ports: usize,
    /// Cycles consumed by operations since construction or [`Cam::reset`].
    cycles: u64,
}

impl Cam {
    /// Creates a CAM with capacity for `mvl` distinct keys and `p` ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0`.
    pub fn new(mvl: usize, ports: usize) -> Self {
        assert!(ports > 0, "CAM needs at least one port");
        Self {
            entries: Vec::with_capacity(mvl),
            ports,
            cycles: 0,
        }
    }

    /// Number of ports `p`.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Clears all valid bits and the cycle counter (done at instruction
    /// issue; the CAM is not architectural state).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.cycles = 0;
    }

    fn lookup(&mut self, key: u64) -> Option<&mut Entry> {
        self.entries.iter_mut().find(|e| e.key == key)
    }

    /// Runs one instruction pass over `keys[..vl]`, applying `update` to the
    /// accumulator of the matching entry (`None` accumulator = first
    /// instance) and collecting per-element outputs.
    ///
    /// `update` returns `(stored, emitted)`: the new accumulator value and
    /// the value placed in the output vector for this element.
    ///
    /// Returns the output vector; the per-element *last-instance* mask is
    /// available afterwards via [`Cam::last_unique_mask`].
    pub fn run<F>(&mut self, keys: &[u64], vl: usize, mut update: F) -> Vec<u64>
    where
        F: FnMut(Option<u64>, usize) -> (u64, u64),
    {
        self.reset();
        let mut out = vec![0u64; keys.len()];
        // Timing: greedy slicing into groups of up to `ports` adjacent
        // elements with pairwise-distinct keys; 2 cycles per slice.
        let mut slice_len = 0usize;
        let mut slice_keys: Vec<u64> = Vec::with_capacity(self.ports);
        for i in 0..vl {
            let k = keys[i];
            if slice_len == self.ports || slice_keys.contains(&k) {
                self.cycles += 2;
                slice_len = 0;
                slice_keys.clear();
            }
            slice_len += 1;
            slice_keys.push(k);

            // Functional update.
            match self.lookup(k) {
                Some(e) => {
                    let (stored, emitted) = update(Some(e.acc), i);
                    e.acc = stored;
                    e.last_idx = i;
                    out[i] = emitted;
                }
                None => {
                    let (stored, emitted) = update(None, i);
                    self.entries.push(Entry {
                        key: k,
                        last_idx: i,
                        acc: stored,
                    });
                    out[i] = emitted;
                }
            }
        }
        if slice_len > 0 {
            self.cycles += 2;
        }
        out
    }

    /// Converts the `last_idx` fields of all valid entries into the VLU
    /// bitmask (paper Figure 10b): bit `i` is set iff element `i` was the
    /// final instance of its key.
    pub fn last_unique_mask(&self, len: usize) -> Vec<bool> {
        let mut m = vec![false; len];
        for e in &self.entries {
            m[e.last_idx] = true;
        }
        m
    }

    /// Number of distinct keys currently held.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }
}

/// Cycle count for one CAM-class instruction over `keys[..vl]` with `ports`
/// ports, without performing the functional work.
pub fn cam_cycles(keys: &[u64], vl: usize, ports: usize) -> u64 {
    assert!(ports > 0);
    let mut cycles = 0u64;
    let mut slice: Vec<u64> = Vec::with_capacity(ports);
    for &k in keys.iter().take(vl) {
        if slice.len() == ports || slice.contains(&k) {
            cycles += 2;
            slice.clear();
        }
        slice.push(k);
    }
    if !slice.is_empty() {
        cycles += 2;
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_distinct_uses_full_ports() {
        let keys: Vec<u64> = (0..8).collect();
        assert_eq!(cam_cycles(&keys, 8, 4), 4); // two slices of 4
        assert_eq!(cam_cycles(&keys, 8, 8), 2); // one slice
        assert_eq!(cam_cycles(&keys, 8, 1), 16); // fully serial
    }

    #[test]
    fn equal_run_pays_maximum_latency() {
        let keys = vec![5u64; 8];
        // Every adjacent pair conflicts: one element per slice.
        assert_eq!(cam_cycles(&keys, 8, 4), 16);
    }

    #[test]
    fn figure11_input_slicing() {
        // Figure 11's input: 7 5 5 5 11 9 9 11 with p implicit; with p = 4
        // slices are [7 5] [5] [5 11 9] [9 11] → 4 slices → 8 cycles.
        let keys = [7u64, 5, 5, 5, 11, 9, 9, 11];
        assert_eq!(cam_cycles(&keys, 8, 4), 8);
    }

    #[test]
    fn vl_truncates_processing() {
        let keys = vec![5u64; 8];
        assert_eq!(cam_cycles(&keys, 2, 4), 4);
        assert_eq!(cam_cycles(&keys, 0, 4), 0);
    }

    #[test]
    fn run_tracks_occupancy_and_cycles() {
        let keys = [7u64, 5, 5, 5, 11, 9, 9, 11];
        let mut cam = Cam::new(8, 4);
        let out = cam.run(&keys, 8, |prev, _| {
            let n = prev.map_or(0, |c| c + 1);
            (n, n)
        });
        // VPI semantics check (Figure 10a): 0 0 1 2 0 0 1 1.
        assert_eq!(out, vec![0, 0, 1, 2, 0, 0, 1, 1]);
        assert_eq!(cam.occupancy(), 4); // keys {7, 5, 11, 9}
        assert_eq!(cam.cycles(), cam_cycles(&keys, 8, 4));
    }

    #[test]
    fn last_unique_mask_matches_figure_10b() {
        let keys = [7u64, 5, 5, 5, 11, 9, 9, 11];
        let mut cam = Cam::new(8, 4);
        cam.run(&keys, 8, |prev, _| {
            let n = prev.map_or(0, |c| c + 1);
            (n, n)
        });
        assert_eq!(
            cam.last_unique_mask(8),
            vec![true, false, false, true, false, false, true, true]
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut cam = Cam::new(4, 2);
        cam.run(&[1, 2, 3], 3, |p, _| (p.unwrap_or(0), 0));
        assert!(cam.occupancy() > 0);
        cam.reset();
        assert_eq!(cam.occupancy(), 0);
        assert_eq!(cam.cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        Cam::new(8, 0);
    }
}
