//! The irregular-DLP instructions: **VPI**, **VLU** (from VSR sort, HPCA
//! 2015 — paper §V-A) and the paper's novel **VGAx** family (§V-B).
//!
//! All five instructions are register-to-register ("self-contained
//! non-memory instructions"), so GMS conflicts are resolved deterministically
//! *before* any memory access — the key difference from scatter-add and
//! AVX-512-CDI discussed in §VI-B.

use crate::cam::Cam;
use crate::exec::RedOp;

/// Result of a CAM-class instruction: the output operand plus the cycle
/// count the CAM model charged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CamResult<T> {
    /// The architectural result.
    pub value: T,
    /// Occupancy of the CAM functional unit in cycles.
    pub cycles: u64,
}

/// `VPI` — Vector Prior Instances (Figure 10a).
///
/// `out[i]` = how many earlier elements of `keys[..i]` equal `keys[i]`.
pub fn vpi(keys: &[u64], vl: usize, ports: usize) -> CamResult<Vec<u64>> {
    let mut cam = Cam::new(keys.len(), ports);
    let out = cam.run(keys, vl, |prev, _| {
        let n = prev.map_or(0, |c| c + 1);
        (n, n)
    });
    CamResult {
        value: out,
        cycles: cam.cycles(),
    }
}

/// `VLU` — Vector Last Unique (Figure 10b).
///
/// Output mask bit `i` is set iff `keys[i]` does not occur again in
/// `keys[i+1..vl]`.
pub fn vlu(keys: &[u64], vl: usize, ports: usize) -> CamResult<Vec<bool>> {
    let mut cam = Cam::new(keys.len(), ports);
    cam.run(keys, vl, |prev, _| {
        let n = prev.map_or(0, |c| c + 1);
        (n, n)
    });
    CamResult {
        value: cam.last_unique_mask(keys.len()),
        cycles: cam.cycles(),
    }
}

/// `VGAx` — Vector Group Aggregate (Figures 13/14).
///
/// For each element, the accumulator of the element's group (identified by
/// `keys[i]`) is combined with `values[i]`, and the output takes the
/// accumulator *after* the update (inclusive running aggregate) — the
/// documented difference from VPI, whose output precedes the increment.
pub fn vga(
    op: RedOp,
    keys: &[u64],
    values: &[u64],
    vl: usize,
    ports: usize,
) -> CamResult<Vec<u64>> {
    assert!(values.len() >= vl, "value operand shorter than VL");
    let mut cam = Cam::new(keys.len(), ports);
    let out = cam.run(keys, vl, |prev, i| {
        let combined = match prev {
            Some(acc) => op.fold(acc, values[i]),
            None => values[i],
        };
        (combined, combined)
    });
    CamResult {
        value: out,
        cycles: cam.cycles(),
    }
}

/// `VGAsum` (Figure 13).
pub fn vga_sum(keys: &[u64], values: &[u64], vl: usize, ports: usize) -> CamResult<Vec<u64>> {
    vga(RedOp::Sum, keys, values, vl, ports)
}

/// `VGAmin`.
pub fn vga_min(keys: &[u64], values: &[u64], vl: usize, ports: usize) -> CamResult<Vec<u64>> {
    vga(RedOp::Min, keys, values, vl, ports)
}

/// `VGAmax`.
pub fn vga_max(keys: &[u64], values: &[u64], vl: usize, ports: usize) -> CamResult<Vec<u64>> {
    vga(RedOp::Max, keys, values, vl, ports)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The exact vectors from the paper's figures.
    const FIG10_KEYS: [u64; 8] = [7, 5, 5, 5, 11, 9, 9, 11];

    #[test]
    fn vpi_matches_figure_10a() {
        let r = vpi(&FIG10_KEYS, 8, 4);
        assert_eq!(r.value, vec![0, 0, 1, 2, 0, 0, 1, 1]);
    }

    #[test]
    fn vlu_matches_figure_10b() {
        let r = vlu(&FIG10_KEYS, 8, 4);
        assert_eq!(
            r.value,
            vec![true, false, false, true, false, false, true, true]
        );
    }

    #[test]
    fn vga_sum_matches_figure_13() {
        // Figure 13: ing = 7 5 5 5 11 9 9 11, inv = 6 3 4 9 15 2 3 4
        // out = 6 3 7 16 15 2 5 19.
        let values = [6u64, 3, 4, 9, 15, 2, 3, 4];
        let r = vga_sum(&FIG10_KEYS, &values, 8, 4);
        assert_eq!(r.value, vec![6, 3, 7, 16, 15, 2, 5, 19]);
    }

    #[test]
    fn vga_output_is_post_update_unlike_vpi() {
        // With all-ones values, VGAsum equals VPI + 1 on every element.
        let ones = [1u64; 8];
        let s = vga_sum(&FIG10_KEYS, &ones, 8, 4);
        let p = vpi(&FIG10_KEYS, 8, 4);
        for i in 0..8 {
            assert_eq!(s.value[i], p.value[i] + 1, "element {i}");
        }
    }

    #[test]
    fn vga_min_and_max_running_semantics() {
        let keys = [1u64, 1, 1, 2, 2];
        let vals = [5u64, 3, 9, 4, 6];
        assert_eq!(vga_min(&keys, &vals, 5, 4).value, vec![5, 3, 3, 4, 4]);
        assert_eq!(vga_max(&keys, &vals, 5, 4).value, vec![5, 5, 9, 4, 6]);
    }

    #[test]
    fn vpi_naive_equivalence() {
        // O(VL²) reference.
        let keys = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 1];
        let r = vpi(&keys, keys.len(), 4);
        for i in 0..keys.len() {
            let expect = keys[..i].iter().filter(|&&k| k == keys[i]).count() as u64;
            assert_eq!(r.value[i], expect, "element {i}");
        }
    }

    #[test]
    fn vlu_naive_equivalence() {
        let keys = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 1];
        let r = vlu(&keys, keys.len(), 4);
        for i in 0..keys.len() {
            let expect = !keys[i + 1..].contains(&keys[i]);
            assert_eq!(r.value[i], expect, "element {i}");
        }
    }

    #[test]
    fn vl_limits_the_scan() {
        let r = vpi(&FIG10_KEYS, 4, 4);
        assert_eq!(&r.value[..4], &[0, 0, 1, 2]);
        assert_eq!(&r.value[4..], &[0, 0, 0, 0]); // untouched
                                                  // VLU over the truncated window: last instances within [0, 4).
        let l = vlu(&FIG10_KEYS, 4, 4);
        assert_eq!(l.value[..4], [true, false, false, true]);
    }

    #[test]
    fn sorted_input_costs_more_cycles_than_distinct() {
        let sorted = [4u64, 4, 4, 4, 4, 4, 4, 4];
        let distinct = [0u64, 1, 2, 3, 4, 5, 6, 7];
        let cs = vpi(&sorted, 8, 4).cycles;
        let cd = vpi(&distinct, 8, 4).cycles;
        assert!(cs > cd, "sorted {cs} should exceed distinct {cd}");
        assert_eq!(cs, 16);
        assert_eq!(cd, 4);
    }

    #[test]
    #[should_panic(expected = "shorter than VL")]
    fn vga_checks_value_length() {
        vga_sum(&FIG10_KEYS, &[1, 2], 8, 4);
    }
}
