//! Instruction catalogue and timing metadata.
//!
//! [`Instruction`] exhaustively lists the non-memory vector instructions of
//! Table III plus the irregular-DLP additions (VPI/VLU from HPCA'15 and the
//! paper's VGAx family). [`VecOpTiming`] captures the paper's stated
//! occupancy rules (§II-A):
//!
//! * mask instructions: 1 cycle;
//! * most vector instructions: `VL / lanes` cycles through a functional
//!   unit;
//! * reductions: `VL / lanes − 1` cycles of per-lane partial reduction plus
//!   `log2(lanes)` cycles of interlane reduction;
//! * CAM-class (VPI/VLU/VGAx): 2 cycles per conflict-free slice of up to
//!   `p` adjacent elements (see [`crate::cam`]).
//!
//! Memory-instruction address-generation occupancies are also defined here
//! ([`MemPattern::agen_cycles`]): formulaic patterns charge one cycle per
//! cache line touched, indexed (gather/scatter) patterns charge
//! `VL / lanes` cycles.

/// Instruction classes of Table III (plus the irregular additions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// `set all`, `clear all`, `iota`.
    Initialisation,
    /// `maximum`, `add`, `subtract`, `multiply`.
    Arithmetic,
    /// `and`, `shift left`, `shift right`.
    Bitwise,
    /// `not equal`, `not equal to zero`.
    Comparison,
    /// `popcount`.
    Mask,
    /// `compress`, `expand`.
    Permutative,
    /// `maximum`, `minimum`, `sum`.
    Reduction,
    /// `get/set element`, `get/set vlen`.
    Other,
    /// VPI, VLU, VGAsum/min/max (CAM-backed).
    Irregular,
    /// Related-work emulation (§VI-B): AVX-512-CDI-style conflict
    /// detection and scatter-add. Not part of the paper's proposal — these
    /// exist so the paper's qualitative comparison can be measured.
    Extension,
}

/// The full non-memory instruction list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Broadcast a scalar to all (active) elements.
    SetAll,
    /// Zero all (active) elements.
    ClearAll,
    /// Write element indices `0, 1, 2, ...` (CRAY-1 `iota`).
    Iota,
    /// Element-wise maximum.
    VMax,
    /// Element-wise wrapping add.
    VAdd,
    /// Element-wise wrapping subtract.
    VSub,
    /// Element-wise wrapping multiply.
    VMul,
    /// Element-wise bitwise AND.
    VAnd,
    /// Element-wise logical shift left.
    VShl,
    /// Element-wise logical shift right.
    VShr,
    /// Compare not-equal, result to mask.
    VCmpNe,
    /// Compare not-equal-to-zero, result to mask.
    VCmpNez,
    /// Population count of a mask register.
    MaskPopcount,
    /// Pack active elements to the front (mask-controlled).
    Compress,
    /// Unpack front elements to active positions (mask-controlled).
    Expand,
    /// Reduce to scalar: maximum.
    RedMax,
    /// Reduce to scalar: minimum.
    RedMin,
    /// Reduce to scalar: sum.
    RedSum,
    /// Read one element to a scalar register.
    GetElement,
    /// Write one element from a scalar register.
    SetElement,
    /// Read the vector length register.
    GetVlen,
    /// Write the vector length register.
    SetVlen,
    /// Vector Prior Instances (HPCA'15).
    Vpi,
    /// Vector Last Unique (HPCA'15).
    Vlu,
    /// Vector Group Aggregate: sum (this paper).
    VgaSum,
    /// Vector Group Aggregate: minimum (this paper).
    VgaMin,
    /// Vector Group Aggregate: maximum (this paper).
    VgaMax,
    /// AVX-512-CDI-style conflict detection (related work, §VI-B).
    VConflict,
    /// `vptestnm`-style test-against-scalar into a mask (related work).
    VTestnm,
    /// Two-operand mask logic (and/andnot/or/xor; related work).
    MaskLogicOp,
    /// `kmov`: pack a mask register into a scalar (related work).
    MaskToScalar,
    /// Memory-side scatter-add (Ahn et al., HPCA 2005; related work).
    ScatterAdd,
}

impl Instruction {
    /// Every instruction, for catalogue printing (Table III regeneration
    /// plus the related-work [`InstClass::Extension`] entries).
    pub const ALL: [Instruction; 32] = [
        Instruction::SetAll,
        Instruction::ClearAll,
        Instruction::Iota,
        Instruction::VMax,
        Instruction::VAdd,
        Instruction::VSub,
        Instruction::VMul,
        Instruction::VAnd,
        Instruction::VShl,
        Instruction::VShr,
        Instruction::VCmpNe,
        Instruction::VCmpNez,
        Instruction::MaskPopcount,
        Instruction::Compress,
        Instruction::Expand,
        Instruction::RedMax,
        Instruction::RedMin,
        Instruction::RedSum,
        Instruction::GetElement,
        Instruction::SetElement,
        Instruction::GetVlen,
        Instruction::SetVlen,
        Instruction::Vpi,
        Instruction::Vlu,
        Instruction::VgaSum,
        Instruction::VgaMin,
        Instruction::VgaMax,
        Instruction::VConflict,
        Instruction::VTestnm,
        Instruction::MaskLogicOp,
        Instruction::MaskToScalar,
        Instruction::ScatterAdd,
    ];

    /// The instructions of the paper's Table III plus its VPI/VLU/VGAx
    /// additions — i.e. everything except the related-work extensions.
    pub fn is_paper(self) -> bool {
        self.class() != InstClass::Extension
    }

    /// The Table III class this instruction belongs to.
    pub fn class(self) -> InstClass {
        use Instruction::*;
        match self {
            SetAll | ClearAll | Iota => InstClass::Initialisation,
            VMax | VAdd | VSub | VMul => InstClass::Arithmetic,
            VAnd | VShl | VShr => InstClass::Bitwise,
            VCmpNe | VCmpNez => InstClass::Comparison,
            MaskPopcount => InstClass::Mask,
            Compress | Expand => InstClass::Permutative,
            RedMax | RedMin | RedSum => InstClass::Reduction,
            GetElement | SetElement | GetVlen | SetVlen => InstClass::Other,
            Vpi | Vlu | VgaSum | VgaMin | VgaMax => InstClass::Irregular,
            VConflict | VTestnm | MaskLogicOp | MaskToScalar | ScatterAdd => InstClass::Extension,
        }
    }

    /// Mnemonic for traces and the Table III printout.
    pub fn mnemonic(self) -> &'static str {
        use Instruction::*;
        match self {
            SetAll => "vset",
            ClearAll => "vclear",
            Iota => "viota",
            VMax => "vmax",
            VAdd => "vadd",
            VSub => "vsub",
            VMul => "vmul",
            VAnd => "vand",
            VShl => "vshl",
            VShr => "vshr",
            VCmpNe => "vcmp.ne",
            VCmpNez => "vcmp.nez",
            MaskPopcount => "mpopcnt",
            Compress => "vcompress",
            Expand => "vexpand",
            RedMax => "vredmax",
            RedMin => "vredmin",
            RedSum => "vredsum",
            GetElement => "vgetelem",
            SetElement => "vsetelem",
            GetVlen => "getvl",
            SetVlen => "setvl",
            Vpi => "vpi",
            Vlu => "vlu",
            VgaSum => "vgasum",
            VgaMin => "vgamin",
            VgaMax => "vgamax",
            VConflict => "vconflict",
            VTestnm => "vtestnm",
            MaskLogicOp => "mlogic",
            MaskToScalar => "kmov",
            ScatterAdd => "vscatadd",
        }
    }

    /// The timing category (see [`VecOpTiming`]).
    pub fn timing(self) -> VecOpTiming {
        use Instruction::*;
        match self {
            MaskPopcount | MaskLogicOp | MaskToScalar => VecOpTiming::MaskOp,
            GetElement | SetElement | GetVlen | SetVlen => VecOpTiming::Scalar,
            RedMax | RedMin | RedSum => VecOpTiming::Reduction,
            Vpi | Vlu | VgaSum | VgaMin | VgaMax => VecOpTiming::Cam,
            // VConflict is charged as an ordinary element-wise instruction
            // — generous to the CDI baseline (see `crate::conflict`).
            // ScatterAdd's memory phase is timed by the machine; the
            // element-wise charge here covers its address generation.
            _ => VecOpTiming::Elementwise,
        }
    }
}

/// Occupancy categories for non-memory vector instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VecOpTiming {
    /// One-cycle mask operation.
    MaskOp,
    /// One-cycle scalar/control access.
    Scalar,
    /// `ceil(VL / lanes)` cycles.
    Elementwise,
    /// `max(ceil(VL / lanes) − 1, 1)` + `log2(lanes)` cycles.
    Reduction,
    /// CAM-determined; caller supplies the cycle count from the CAM model.
    Cam,
}

impl VecOpTiming {
    /// Occupancy in cycles. For [`VecOpTiming::Cam`], pass the CAM model's
    /// cycle count in `cam_cycles` (ignored otherwise).
    pub fn occupancy(self, vl: usize, lanes: usize, cam_cycles: u64) -> u64 {
        assert!(lanes > 0 && lanes.is_power_of_two(), "lanes must be 2^k");
        let per_lane = vl.div_ceil(lanes) as u64;
        match self {
            VecOpTiming::MaskOp | VecOpTiming::Scalar => 1,
            VecOpTiming::Elementwise => per_lane.max(1),
            VecOpTiming::Reduction => per_lane.saturating_sub(1).max(1) + lanes.ilog2() as u64,
            VecOpTiming::Cam => cam_cycles.max(1),
        }
    }
}

/// Memory-access direction for vector memory instructions (each of the
/// three pattern classes supports all three — paper §II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemDir {
    /// Load from memory.
    Load,
    /// Store to memory.
    Store,
    /// Non-binding prefetch.
    Prefetch,
}

/// The three vector memory access patterns (paper §II-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemPattern {
    /// Contiguous: `base .. base + vl * elem_bytes`.
    UnitStride {
        /// Start byte address.
        base: u64,
        /// Bytes per element.
        elem_bytes: u64,
    },
    /// Constant increment between consecutive elements.
    Strided {
        /// Start byte address.
        base: u64,
        /// Byte stride between elements.
        stride: i64,
        /// Bytes per element.
        elem_bytes: u64,
    },
    /// Gather/scatter via an offset vector (element indices, scaled).
    Indexed {
        /// Base byte address.
        base: u64,
        /// Per-element byte offsets.
        offsets: Vec<u64>,
        /// Bytes per element.
        elem_bytes: u64,
    },
}

impl MemPattern {
    /// The byte address of element `i`.
    pub fn address(&self, i: usize) -> u64 {
        match self {
            MemPattern::UnitStride { base, elem_bytes } => base + i as u64 * elem_bytes,
            MemPattern::Strided { base, stride, .. } => (*base as i64 + *stride * i as i64) as u64,
            MemPattern::Indexed { base, offsets, .. } => base + offsets[i],
        }
    }

    /// Bytes accessed per element.
    pub fn elem_bytes(&self) -> u64 {
        match self {
            MemPattern::UnitStride { elem_bytes, .. }
            | MemPattern::Strided { elem_bytes, .. }
            | MemPattern::Indexed { elem_bytes, .. } => *elem_bytes,
        }
    }

    /// Address-generation occupancy (paper §II-A): formulaic patterns charge
    /// one cycle per distinct cache line; indexed patterns charge
    /// `ceil(VL / lanes)` cycles.
    pub fn agen_cycles(&self, vl: usize, lanes: usize, line: u64) -> u64 {
        match self {
            MemPattern::Indexed { .. } => (vl.div_ceil(lanes) as u64).max(1),
            _ => self.lines_touched(vl, line).len().max(1) as u64,
        }
    }

    /// The distinct cache lines touched by the first `vl` elements, in first
    /// touch order.
    pub fn lines_touched(&self, vl: usize, line: u64) -> Vec<u64> {
        let mut lines = Vec::new();
        for i in 0..vl {
            let a = self.address(i);
            let eb = self.elem_bytes().max(1);
            // An element may straddle a line boundary.
            let first = a / line;
            let last = (a + eb - 1) / line;
            for l in first..=last {
                if !lines.contains(&l) {
                    lines.push(l);
                }
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_exhaustive_and_distinct() {
        let mut names: Vec<_> = Instruction::ALL.iter().map(|i| i.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Instruction::ALL.len());
    }

    #[test]
    fn table3_classes_have_expected_members() {
        let count = |c: InstClass| Instruction::ALL.iter().filter(|i| i.class() == c).count();
        assert_eq!(count(InstClass::Initialisation), 3);
        assert_eq!(count(InstClass::Arithmetic), 4);
        assert_eq!(count(InstClass::Bitwise), 3);
        assert_eq!(count(InstClass::Comparison), 2);
        assert_eq!(count(InstClass::Mask), 1);
        assert_eq!(count(InstClass::Permutative), 2);
        assert_eq!(count(InstClass::Reduction), 3);
        assert_eq!(count(InstClass::Other), 4);
        assert_eq!(count(InstClass::Irregular), 5);
        assert_eq!(count(InstClass::Extension), 5);
    }

    #[test]
    fn paper_catalogue_excludes_extensions() {
        let paper: Vec<_> = Instruction::ALL.iter().filter(|i| i.is_paper()).collect();
        assert_eq!(paper.len(), 27);
        assert!(!Instruction::VConflict.is_paper());
        assert!(!Instruction::ScatterAdd.is_paper());
        assert!(Instruction::VgaSum.is_paper());
    }

    #[test]
    fn extension_timing_categories() {
        assert_eq!(Instruction::VConflict.timing(), VecOpTiming::Elementwise);
        assert_eq!(Instruction::VTestnm.timing(), VecOpTiming::Elementwise);
        assert_eq!(Instruction::MaskLogicOp.timing(), VecOpTiming::MaskOp);
        assert_eq!(Instruction::MaskToScalar.timing(), VecOpTiming::MaskOp);
        assert_eq!(Instruction::ScatterAdd.timing(), VecOpTiming::Elementwise);
    }

    #[test]
    fn elementwise_occupancy_is_vl_over_lanes() {
        let t = VecOpTiming::Elementwise;
        assert_eq!(t.occupancy(64, 4, 0), 16);
        assert_eq!(t.occupancy(63, 4, 0), 16);
        assert_eq!(t.occupancy(1, 4, 0), 1);
        assert_eq!(t.occupancy(0, 4, 0), 1);
    }

    #[test]
    fn reduction_occupancy_matches_paper_formula() {
        // Figure 5: VL = 8, lanes = 2 → 3 cycles per-lane + 1 interlane = 4.
        assert_eq!(VecOpTiming::Reduction.occupancy(8, 2, 0), 4);
        // Paper config: VL = 64, lanes = 4 → 15 + 2 = 17.
        assert_eq!(VecOpTiming::Reduction.occupancy(64, 4, 0), 17);
    }

    #[test]
    fn mask_ops_are_single_cycle() {
        assert_eq!(VecOpTiming::MaskOp.occupancy(64, 4, 0), 1);
        assert_eq!(Instruction::MaskPopcount.timing(), VecOpTiming::MaskOp);
    }

    #[test]
    fn cam_timing_passes_through() {
        assert_eq!(VecOpTiming::Cam.occupancy(64, 4, 10), 10);
        assert_eq!(VecOpTiming::Cam.occupancy(64, 4, 0), 1);
    }

    #[test]
    fn unit_stride_addresses_and_lines() {
        let p = MemPattern::UnitStride {
            base: 0,
            elem_bytes: 4,
        };
        assert_eq!(p.address(0), 0);
        assert_eq!(p.address(15), 60);
        // 64 elements * 4B = 256B = 4 lines of 64B.
        assert_eq!(p.lines_touched(64, 64).len(), 4);
        assert_eq!(p.agen_cycles(64, 4, 64), 4);
    }

    #[test]
    fn strided_addresses_and_lines() {
        let p = MemPattern::Strided {
            base: 0,
            stride: 64,
            elem_bytes: 4,
        };
        // Each element on its own line.
        assert_eq!(p.lines_touched(16, 64).len(), 16);
        assert_eq!(p.agen_cycles(16, 4, 64), 16);
    }

    #[test]
    fn negative_stride_works() {
        let p = MemPattern::Strided {
            base: 1024,
            stride: -4,
            elem_bytes: 4,
        };
        assert_eq!(p.address(0), 1024);
        assert_eq!(p.address(1), 1020);
    }

    #[test]
    fn indexed_agen_is_vl_over_lanes() {
        let p = MemPattern::Indexed {
            base: 0,
            offsets: vec![0; 64],
            elem_bytes: 4,
        };
        assert_eq!(p.agen_cycles(64, 4, 64), 16);
        // Even if all offsets hit one line, agen still costs VL/lanes.
        assert_eq!(p.lines_touched(64, 64).len(), 1);
    }

    #[test]
    fn element_straddling_line_boundary_counts_both_lines() {
        let p = MemPattern::UnitStride {
            base: 62,
            elem_bytes: 4,
        };
        assert_eq!(p.lines_touched(1, 64), vec![0, 1]);
    }
}
