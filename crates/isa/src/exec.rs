//! Functional semantics of the regular (non-memory) vector instructions of
//! Table III: initialisation, arithmetic, bitwise, comparison, mask,
//! permutative and reduction classes.
//!
//! These are pure slice-level operations; `vagg-sim`'s `Machine` combines
//! them with register-file plumbing and cycle accounting. Elements are
//! unsigned 64-bit with wrapping arithmetic (the paper's workloads use
//! 32-bit unsigned keys/values, which embed losslessly).
//!
//! Masking follows classic vector-ISA merge semantics: masked-off element
//! positions of the destination are left unchanged.

/// Binary arithmetic/bitwise operations (Table III, `arithmetic` +
/// `bitwise` classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Element-wise maximum.
    Max,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Logical shift left (`a << (b & 63)`).
    Shl,
    /// Logical shift right (`a >> (b & 63)`).
    Shr,
}

impl BinOp {
    /// Applies the operation to one element pair.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::Max => a.max(b),
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::And => a & b,
            BinOp::Shl => a << (b & 63),
            BinOp::Shr => a >> (b & 63),
        }
    }

    /// Assembly-style mnemonic (used by the instruction trace).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Max => "vmax",
            BinOp::Add => "vadd",
            BinOp::Sub => "vsub",
            BinOp::Mul => "vmul",
            BinOp::And => "vand",
            BinOp::Shl => "vshl",
            BinOp::Shr => "vshr",
        }
    }
}

/// Comparison predicates (Table III, `comparison` class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `a != b` (vector-vector).
    Ne,
    /// `a != 0` (vector-zero).
    Nez,
}

impl CmpOp {
    /// Assembly-style mnemonic (used by the instruction trace).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Ne => "vcmpne",
            CmpOp::Nez => "vcmpnez",
        }
    }
}

/// Reduction operations (Table III, `reduction` class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedOp {
    /// Maximum of all active elements.
    Max,
    /// Minimum of all active elements.
    Min,
    /// Wrapping sum of all active elements.
    Sum,
}

impl RedOp {
    /// Identity element for the reduction.
    pub fn identity(self) -> u64 {
        match self {
            RedOp::Max => u64::MIN,
            RedOp::Min => u64::MAX,
            RedOp::Sum => 0,
        }
    }

    /// Combines an accumulator with one element.
    pub fn fold(self, acc: u64, x: u64) -> u64 {
        match self {
            RedOp::Max => acc.max(x),
            RedOp::Min => acc.min(x),
            RedOp::Sum => acc.wrapping_add(x),
        }
    }

    /// Assembly-style mnemonic of the reduction (used by the trace).
    pub fn mnemonic(self) -> &'static str {
        match self {
            RedOp::Max => "vredmax",
            RedOp::Min => "vredmin",
            RedOp::Sum => "vredsum",
        }
    }

    /// Mnemonic of the VGAx instruction using this operation.
    pub fn vga_mnemonic(self) -> &'static str {
        match self {
            RedOp::Max => "vgamax",
            RedOp::Min => "vgamin",
            RedOp::Sum => "vgasum",
        }
    }
}

fn active(mask: Option<&[bool]>, i: usize) -> bool {
    mask.is_none_or(|m| m[i])
}

/// `set all`: broadcasts `value` to the first `vl` active elements of `dst`.
pub fn set_all(dst: &mut [u64], value: u64, vl: usize, mask: Option<&[bool]>) {
    for (i, d) in dst.iter_mut().enumerate().take(vl) {
        if active(mask, i) {
            *d = value;
        }
    }
}

/// `clear all`: zeroes the first `vl` active elements of `dst`.
pub fn clear_all(dst: &mut [u64], vl: usize, mask: Option<&[bool]>) {
    set_all(dst, 0, vl, mask);
}

/// `iota` (CRAY-1): writes `0, 1, 2, ...` into the active positions.
///
/// The classic semantics index by element position, which is what VSR sort
/// and the aggregation kernels rely on.
pub fn iota(dst: &mut [u64], vl: usize, mask: Option<&[bool]>) {
    for (i, d) in dst.iter_mut().enumerate().take(vl) {
        if active(mask, i) {
            *d = i as u64;
        }
    }
}

/// Element-wise vector-vector operation with merge masking.
pub fn binop_vv(
    op: BinOp,
    dst: &mut [u64],
    a: &[u64],
    b: &[u64],
    vl: usize,
    mask: Option<&[bool]>,
) {
    for i in 0..vl {
        if active(mask, i) {
            dst[i] = op.apply(a[i], b[i]);
        }
    }
}

/// Element-wise vector-scalar operation with merge masking.
pub fn binop_vs(op: BinOp, dst: &mut [u64], a: &[u64], s: u64, vl: usize, mask: Option<&[bool]>) {
    for i in 0..vl {
        if active(mask, i) {
            dst[i] = op.apply(a[i], s);
        }
    }
}

/// Vector-vector comparison producing a mask. Inactive positions are
/// cleared.
pub fn compare_vv(
    op: CmpOp,
    dst: &mut [bool],
    a: &[u64],
    b: &[u64],
    vl: usize,
    mask: Option<&[bool]>,
) {
    for (i, d) in dst.iter_mut().enumerate() {
        *d = i < vl
            && active(mask, i)
            && match op {
                CmpOp::Ne => a[i] != b[i],
                CmpOp::Nez => a[i] != 0,
            };
    }
}

/// Vector-scalar comparison producing a mask.
pub fn compare_vs(
    op: CmpOp,
    dst: &mut [bool],
    a: &[u64],
    s: u64,
    vl: usize,
    mask: Option<&[bool]>,
) {
    for (i, d) in dst.iter_mut().enumerate() {
        *d = i < vl
            && active(mask, i)
            && match op {
                CmpOp::Ne => a[i] != s,
                CmpOp::Nez => a[i] != 0,
            };
    }
}

/// `compress`: packs the mask-selected elements of `src` into the low end of
/// `dst`, preserving order. Returns the number of elements written (the new
/// natural vector length).
pub fn compress(dst: &mut [u64], src: &[u64], mask: &[bool], vl: usize) -> usize {
    let mut j = 0;
    for i in 0..vl {
        if mask[i] {
            dst[j] = src[i];
            j += 1;
        }
    }
    j
}

/// `expand`: the inverse of [`compress`] — distributes the low elements of
/// `src` into the mask-selected positions of `dst`. Returns the number of
/// elements consumed from `src`.
pub fn expand(dst: &mut [u64], src: &[u64], mask: &[bool], vl: usize) -> usize {
    let mut j = 0;
    for i in 0..vl {
        if mask[i] {
            dst[i] = src[j];
            j += 1;
        }
    }
    j
}

/// Reduction of the first `vl` active elements to a scalar.
pub fn reduce(op: RedOp, a: &[u64], vl: usize, mask: Option<&[bool]>) -> u64 {
    let mut acc = op.identity();
    for (i, &x) in a.iter().enumerate().take(vl) {
        if active(mask, i) {
            acc = op.fold(acc, x);
        }
    }
    acc
}

/// Mask popcount (Table III, `mask` class).
pub fn mask_popcount(mask: &[bool], vl: usize) -> usize {
    mask.iter().take(vl).filter(|&&b| b).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_sum_reduction() {
        // Figure 5 of the paper: sum of 1..=8 is 36.
        let v: Vec<u64> = (1..=8).collect();
        assert_eq!(reduce(RedOp::Sum, &v, 8, None), 36);
    }

    #[test]
    fn iota_matches_cray_semantics() {
        let mut d = vec![99u64; 8];
        iota(&mut d, 5, None);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 99, 99, 99]);
    }

    #[test]
    fn iota_masked_keeps_old_values() {
        let mut d = vec![7u64; 4];
        let m = [true, false, true, false];
        iota(&mut d, 4, Some(&m));
        assert_eq!(d, vec![0, 7, 2, 7]);
    }

    #[test]
    fn set_and_clear() {
        let mut d = vec![1u64; 4];
        set_all(&mut d, 9, 3, None);
        assert_eq!(d, vec![9, 9, 9, 1]);
        clear_all(&mut d, 2, None);
        assert_eq!(d, vec![0, 0, 9, 1]);
    }

    #[test]
    fn binop_vv_masked_merge() {
        let a = [10u64, 20, 30, 40];
        let b = [1u64, 2, 3, 4];
        let mut d = vec![0u64; 4];
        let m = [true, false, true, false];
        binop_vv(BinOp::Add, &mut d, &a, &b, 4, Some(&m));
        assert_eq!(d, vec![11, 0, 33, 0]);
    }

    #[test]
    fn binop_vs_applies_scalar() {
        let a = [1u64, 2, 3, 4];
        let mut d = vec![0u64; 4];
        binop_vs(BinOp::Mul, &mut d, &a, 10, 4, None);
        assert_eq!(d, vec![10, 20, 30, 40]);
    }

    #[test]
    fn all_binops() {
        assert_eq!(BinOp::Max.apply(3, 5), 5);
        assert_eq!(BinOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(BinOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(BinOp::Mul.apply(3, 5), 15);
        assert_eq!(BinOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(BinOp::Shl.apply(1, 4), 16);
        assert_eq!(BinOp::Shr.apply(16, 4), 1);
    }

    #[test]
    fn shift_amount_wraps_at_64() {
        // Matches x86 semantics: shift count is taken modulo 64.
        assert_eq!(BinOp::Shl.apply(1, 64), 1);
        assert_eq!(BinOp::Shr.apply(2, 65), 1);
    }

    #[test]
    fn compare_ne_and_nez() {
        let a = [1u64, 2, 0, 4];
        let b = [1u64, 0, 0, 4];
        let mut m = vec![false; 4];
        compare_vv(CmpOp::Ne, &mut m, &a, &b, 4, None);
        assert_eq!(m, vec![false, true, false, false]);
        compare_vv(CmpOp::Nez, &mut m, &a, &b, 4, None);
        assert_eq!(m, vec![true, true, false, true]);
    }

    #[test]
    fn compare_clears_beyond_vl() {
        let a = [1u64, 2, 3, 4];
        let b = [0u64; 4];
        let mut m = vec![true; 4];
        compare_vv(CmpOp::Ne, &mut m, &a, &b, 2, None);
        assert_eq!(m, vec![true, true, false, false]);
    }

    #[test]
    fn compare_vs_against_scalar() {
        let a = [5u64, 6, 5, 7];
        let mut m = vec![false; 4];
        compare_vs(CmpOp::Ne, &mut m, &a, 5, 4, None);
        assert_eq!(m, vec![false, true, false, true]);
    }

    #[test]
    fn compress_then_expand_roundtrip() {
        let src = [10u64, 11, 12, 13, 14, 15];
        let mask = [true, false, true, true, false, true];
        let mut packed = vec![0u64; 6];
        let k = compress(&mut packed, &src, &mask, 6);
        assert_eq!(k, 4);
        assert_eq!(&packed[..4], &[10, 12, 13, 15]);

        let mut restored = vec![0u64; 6];
        let consumed = expand(&mut restored, &packed, &mask, 6);
        assert_eq!(consumed, 4);
        assert_eq!(restored, vec![10, 0, 12, 13, 0, 15]);
    }

    #[test]
    fn reductions_with_identity() {
        let v = [3u64, 1, 4, 1, 5];
        assert_eq!(reduce(RedOp::Max, &v, 5, None), 5);
        assert_eq!(reduce(RedOp::Min, &v, 5, None), 1);
        assert_eq!(reduce(RedOp::Sum, &v, 5, None), 14);
        // vl = 0 returns the identity.
        assert_eq!(reduce(RedOp::Sum, &v, 0, None), 0);
        assert_eq!(reduce(RedOp::Max, &v, 0, None), u64::MIN);
        assert_eq!(reduce(RedOp::Min, &v, 0, None), u64::MAX);
    }

    #[test]
    fn masked_reduction_skips_inactive() {
        let v = [10u64, 20, 30, 40];
        let m = [false, true, false, true];
        assert_eq!(reduce(RedOp::Sum, &v, 4, Some(&m)), 60);
    }

    #[test]
    fn popcount_counts_prefix() {
        let m = [true, true, false, true];
        assert_eq!(mask_popcount(&m, 4), 3);
        assert_eq!(mask_popcount(&m, 2), 2);
    }
}
