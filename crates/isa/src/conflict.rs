//! Best-effort conflict detection in the style of Intel AVX-512-CDI —
//! the related-work alternative the paper critiques in §VI-B.
//!
//! The paper argues (without measuring) that atomic vector operations
//! [Kumar et al., ISCA'08] and AVX512-CDI operate *best-effort*: the
//! processor executes whichever elements of a gather-modify-scatter do not
//! conflict, and the programmer loops until the coupled mask register is
//! empty. For low-cardinality or skewed inputs the retry count approaches
//! `VL` and every retry re-issues the memory traffic. This module provides
//! the instruction semantics needed to *quantify* that argument inside the
//! same simulation framework:
//!
//! * [`vconflict`] — `VPCONFLICTD`-style: each output element carries a
//!   bitmask of earlier elements holding the same key;
//! * [`vtestnm_vs`] — `VPTESTNM`-style: mask bit `i` set iff
//!   `a[i] & s == 0`;
//! * [`MaskLogic`] — the mask-register AND / ANDNOT / OR / XOR used to
//!   peel retired elements off the pending mask.
//!
//! Unlike VPI/VLU/VGAx these are **not** CAM-backed: `vconflict` is
//! modelled as an ordinary element-wise vector instruction
//! (`VL / lanes` occupancy). That is *generous* to the CDI baseline —
//! a real all-to-all comparator network would not be cheaper than the
//! paper's CAM — so any measured deficit of the retry loop is a lower
//! bound.
//!
//! The conflict bitmask limits the vector length to 64 elements (one bit
//! per prior element in a 64-bit lane), exactly like AVX-512-CDI limits it
//! to the 16 dword lanes of a ZMM register. The paper's configuration
//! (`MVL = 64`) sits precisely on this boundary.

/// Mask-register logical operations (two-operand, one-cycle mask class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaskLogic {
    /// `d = a & b`.
    And,
    /// `d = a & !b` (peel retired elements off a pending mask).
    AndNot,
    /// `d = a | b`.
    Or,
    /// `d = a ^ b`.
    Xor,
}

impl MaskLogic {
    /// Assembly-style mnemonic (used by the instruction trace).
    pub fn mnemonic(self) -> &'static str {
        match self {
            MaskLogic::And => "kand",
            MaskLogic::AndNot => "kandn",
            MaskLogic::Or => "kor",
            MaskLogic::Xor => "kxor",
        }
    }

    /// Applies the operation to one bit pair.
    pub fn apply(self, a: bool, b: bool) -> bool {
        match self {
            MaskLogic::And => a && b,
            MaskLogic::AndNot => a && !b,
            MaskLogic::Or => a || b,
            MaskLogic::Xor => a ^ b,
        }
    }
}

/// `vconflict` — for each element `i`, a bitmask with bit `j` set iff
/// `j < i` and `keys[j] == keys[i]` (AVX-512 `VPCONFLICTD` semantics).
///
/// Elements at and beyond `vl` produce `0`.
///
/// # Panics
///
/// Panics if `vl > 64`: the result bitmask has one bit per prior element
/// and must fit the 64-bit element width, mirroring the real instruction's
/// per-register lane-count limit.
pub fn vconflict(keys: &[u64], vl: usize) -> Vec<u64> {
    assert!(vl <= 64, "vconflict limited to 64 elements (bitmask width)");
    let mut out = vec![0u64; keys.len()];
    for i in 0..vl.min(keys.len()) {
        let mut bits = 0u64;
        for j in 0..i {
            if keys[j] == keys[i] {
                bits |= 1 << j;
            }
        }
        out[i] = bits;
    }
    out
}

/// `vtestnm` (vector-scalar form) — output mask bit `i` is set iff
/// `a[i] & s == 0`, for the first `vl` elements (`false` beyond).
///
/// Combined with [`vconflict`] and a pending mask moved to a scalar via
/// `kmov`, this computes the retry loop's "ready" set: an element is ready
/// when none of its earlier duplicates are still pending.
pub fn vtestnm_vs(a: &[u64], s: u64, vl: usize) -> Vec<bool> {
    let mut out = vec![false; a.len()];
    for i in 0..vl.min(a.len()) {
        out[i] = a[i] & s == 0;
    }
    out
}

/// Packs the first `vl` mask bits into a scalar (`kmov` to a GPR).
///
/// # Panics
///
/// Panics if `vl > 64`.
pub fn mask_to_bits(mask: &[bool], vl: usize) -> u64 {
    assert!(vl <= 64, "mask_to_bits limited to 64 elements");
    let mut bits = 0u64;
    for (i, &b) in mask.iter().enumerate().take(vl) {
        if b {
            bits |= 1 << i;
        }
    }
    bits
}

/// Element-wise mask logic over the first `vl` bits (`false` beyond).
pub fn mask_logic(op: MaskLogic, a: &[bool], b: &[bool], vl: usize) -> Vec<bool> {
    let mut out = vec![false; a.len()];
    for i in 0..vl.min(a.len()).min(b.len()) {
        out[i] = op.apply(a[i], b[i]);
    }
    out
}

/// The number of retry iterations Intel's histogram loop needs for one
/// register: the maximum duplicate multiplicity of any key in
/// `keys[..vl]`.
///
/// Useful for tests and for reasoning about the worst case (`vl`
/// iterations when all keys are equal, 1 iteration when all distinct).
pub fn retry_iterations(keys: &[u64], vl: usize) -> usize {
    let mut iters = 0;
    for i in 0..vl.min(keys.len()) {
        let dup = keys[..i].iter().filter(|&&k| k == keys[i]).count();
        iters = iters.max(dup + 1);
    }
    iters
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEYS: [u64; 8] = [7, 5, 5, 5, 11, 9, 9, 11];

    #[test]
    fn vconflict_flags_prior_duplicates() {
        let c = vconflict(&KEYS, 8);
        assert_eq!(c[0], 0); // 7: nothing earlier
        assert_eq!(c[1], 0); // 5: first instance
        assert_eq!(c[2], 0b10); // 5: duplicates element 1
        assert_eq!(c[3], 0b110); // 5: duplicates elements 1, 2
        assert_eq!(c[4], 0); // 11: first instance
        assert_eq!(c[5], 0); // 9: first instance
        assert_eq!(c[6], 0b10_0000); // 9: duplicates element 5
        assert_eq!(c[7], 0b1_0000); // 11: duplicates element 4
    }

    #[test]
    fn vconflict_respects_vl() {
        let c = vconflict(&KEYS, 3);
        assert_eq!(&c[3..], &[0, 0, 0, 0, 0]);
        assert_eq!(c[2], 0b10);
    }

    #[test]
    fn all_distinct_keys_have_zero_conflicts() {
        let keys: Vec<u64> = (0..64).collect();
        assert!(vconflict(&keys, 64).iter().all(|&b| b == 0));
        assert_eq!(retry_iterations(&keys, 64), 1);
    }

    #[test]
    fn single_group_needs_vl_retries() {
        let keys = [3u64; 64];
        assert_eq!(retry_iterations(&keys, 64), 64);
        // Element 63 conflicts with all 63 predecessors.
        let c = vconflict(&keys, 64);
        assert_eq!(c[63], u64::MAX >> 1);
    }

    #[test]
    #[should_panic(expected = "limited to 64")]
    fn vconflict_rejects_oversized_vl() {
        vconflict(&[0; 128], 65);
    }

    #[test]
    fn retry_loop_converges_exactly_like_intels_example() {
        // Simulate the documented kmov/vptestnm/kandn loop and check that
        // each key's instances retire once each, earliest-first.
        let conflicts = vconflict(&KEYS, 8);
        let mut pending = vec![true; 8];
        let mut retired = Vec::new();
        let mut rounds = 0;
        while pending.iter().any(|&b| b) {
            rounds += 1;
            let bits = mask_to_bits(&pending, 8);
            let test = vtestnm_vs(&conflicts, bits, 8);
            let ready = mask_logic(MaskLogic::And, &pending, &test, 8);
            assert!(ready.iter().any(|&b| b), "forward progress");
            for (i, &r) in ready.iter().enumerate() {
                if r {
                    retired.push(i);
                }
            }
            pending = mask_logic(MaskLogic::AndNot, &pending, &ready, 8);
        }
        assert_eq!(rounds, retry_iterations(&KEYS, 8));
        assert_eq!(rounds, 3); // key 5 appears three times
        retired.sort_unstable();
        assert_eq!(retired, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn mask_helpers_roundtrip() {
        let m = [true, false, true, true, false, false, false, true];
        assert_eq!(mask_to_bits(&m, 8), 0b1000_1101);
        assert_eq!(mask_to_bits(&m, 3), 0b101);
        let a = [true, true, false, false];
        let b = [true, false, true, false];
        assert_eq!(
            mask_logic(MaskLogic::And, &a, &b, 4),
            [true, false, false, false]
        );
        assert_eq!(
            mask_logic(MaskLogic::AndNot, &a, &b, 4),
            [false, true, false, false]
        );
        assert_eq!(
            mask_logic(MaskLogic::Or, &a, &b, 4),
            [true, true, true, false]
        );
        assert_eq!(
            mask_logic(MaskLogic::Xor, &a, &b, 4),
            [false, true, true, false]
        );
    }

    #[test]
    fn vtestnm_matches_bitwise_semantics() {
        let a = [0b01u64, 0b10, 0b11, 0b00];
        assert_eq!(vtestnm_vs(&a, 0b01, 4), [false, true, false, true]);
        assert_eq!(vtestnm_vs(&a, 0, 4), [true, true, true, true]);
        // Beyond VL: false.
        assert_eq!(vtestnm_vs(&a, 0, 2), [true, true, false, false]);
    }
}
