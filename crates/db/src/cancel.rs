//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is a cheap, clonable handle (one shared
//! `AtomicBool` plus an optional wall-clock deadline and morsel budget)
//! that long-running queries check at **morsel boundaries** — the
//! natural cancellation points of the engine: the [`crate::Executor`]
//! checks it at every morsel pop, and the single-session
//! [`crate::Database::run_sql_cancellable`] path checks it before each
//! morsel-sized row range it runs. Nothing is interrupted mid-kernel;
//! a tripped token makes the query surface a typed
//! [`SqlError::Cancelled`](crate::SqlError::Cancelled) carrying the
//! [`CancelCause`] — an explicit [`CancelToken::cancel`], a missed
//! deadline, or an exhausted morsel budget — instead of rows.
//!
//! The serving layer is the primary consumer (every wire query gets a
//! token; `Cancel(query_id)` trips it from any connection), but the
//! token is just as useful for library callers: hand a clone to
//! another thread and a runaway analytical query becomes interruptible.
//!
//! ```
//! use vagg_db::{CancelToken, Database, SqlError, Table};
//!
//! let mut db = Database::new();
//! db.register(Table::new("r").with_column("g", (0..4096u32).collect()));
//! let token = CancelToken::new();
//! token.cancel(); // e.g. from another thread holding a clone
//! let err = db
//!     .run_sql_cancellable("SELECT g, COUNT(*) FROM r GROUP BY g", &token)
//!     .unwrap_err();
//! assert!(matches!(err, SqlError::Cancelled(_)));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a query was cancelled — carried by
/// [`SqlError::Cancelled`](crate::SqlError::Cancelled) so callers (and
/// the wire protocol) can tell an explicit kill from a policy kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called.
    Requested,
    /// The token's wall-clock deadline passed
    /// ([`CancelToken::with_timeout`]).
    TimedOut,
    /// The query popped more morsels than its budget allows
    /// ([`CancelToken::with_morsel_budget`]).
    OverBudget,
}

impl fmt::Display for CancelCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelCause::Requested => write!(f, "cancelled by request"),
            CancelCause::TimedOut => write!(f, "query timed out"),
            CancelCause::OverBudget => write!(f, "morsel budget exhausted"),
        }
    }
}

const LIVE: u8 = 0;
const REQUESTED: u8 = 1;
const TIMED_OUT: u8 = 2;
const OVER_BUDGET: u8 = 3;

#[derive(Debug)]
struct Inner {
    /// `LIVE` until the first cause trips; the first writer wins, so a
    /// query cancelled *and* timed out reports whichever landed first.
    cause: AtomicU8,
    /// Wall-clock point after which the token trips `TimedOut`.
    deadline: Option<Instant>,
    /// Morsels the query may pop before tripping `OverBudget`.
    budget: Option<u64>,
    /// Morsels popped so far (across every worker running this query).
    morsels: AtomicU64,
}

/// A shared cancellation flag for one query (see the [module
/// docs](self)). Clones observe the same flag; all methods are safe to
/// call from any thread.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A live token with no deadline and no budget: it only trips when
    /// [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::build(None, None)
    }

    /// A token that additionally trips [`CancelCause::TimedOut`] once
    /// `timeout` has elapsed (measured from this call).
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::build(Some(Instant::now() + timeout), None)
    }

    /// A token that additionally trips [`CancelCause::OverBudget`]
    /// after `morsels` morsel pops.
    pub fn with_morsel_budget(morsels: u64) -> Self {
        Self::build(None, Some(morsels))
    }

    /// A token with both a wall-clock deadline and a morsel budget —
    /// the serving layer's per-query governor. `None` disables the
    /// respective limit.
    pub fn with_limits(timeout: Option<Duration>, morsels: Option<u64>) -> Self {
        Self::build(timeout.map(|t| Instant::now() + t), morsels)
    }

    fn build(deadline: Option<Instant>, budget: Option<u64>) -> Self {
        Self {
            inner: Arc::new(Inner {
                cause: AtomicU8::new(LIVE),
                deadline,
                budget,
                morsels: AtomicU64::new(0),
            }),
        }
    }

    /// Trips the token: every in-flight check from here on reports
    /// [`CancelCause::Requested`]. Idempotent; a later cause never
    /// overwrites an earlier one.
    pub fn cancel(&self) {
        self.trip(REQUESTED);
    }

    /// Whether the token has tripped (any cause). Checks the deadline
    /// lazily, so a timed-out token reports `true` even if no morsel
    /// boundary has run since the deadline passed.
    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }

    /// The cause the token tripped for, or `None` while it is live.
    pub fn cause(&self) -> Option<CancelCause> {
        self.check_deadline();
        match self.inner.cause.load(Ordering::Acquire) {
            LIVE => None,
            REQUESTED => Some(CancelCause::Requested),
            TIMED_OUT => Some(CancelCause::TimedOut),
            _ => Some(CancelCause::OverBudget),
        }
    }

    /// Morsels popped against this token so far.
    pub fn morsels(&self) -> u64 {
        self.inner.morsels.load(Ordering::Relaxed)
    }

    /// The morsel-boundary check: counts one pop against the budget,
    /// trips the deadline if it passed, and returns the cause if the
    /// token is no longer live. Called by the [`crate::Executor`] at
    /// every morsel pop and by the single-session morsel loop.
    pub(crate) fn admit_morsel(&self) -> Result<(), CancelCause> {
        let popped = self.inner.morsels.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(budget) = self.inner.budget {
            if popped > budget {
                self.trip(OVER_BUDGET);
            }
        }
        match self.cause() {
            None => Ok(()),
            Some(cause) => Err(cause),
        }
    }

    fn check_deadline(&self) {
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.trip(TIMED_OUT);
            }
        }
    }

    fn trip(&self, cause: u8) {
        // The first cause wins; later trips are no-ops.
        let _ = self
            .inner
            .cause
            .compare_exchange(LIVE, cause, Ordering::AcqRel, Ordering::Acquire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.cause(), None);
        assert!(t.admit_morsel().is_ok());
    }

    #[test]
    fn cancel_trips_every_clone() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Requested));
        assert_eq!(t.admit_morsel(), Err(CancelCause::Requested));
    }

    #[test]
    fn an_elapsed_deadline_reports_timed_out() {
        let t = CancelToken::with_timeout(Duration::from_nanos(1));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(t.cause(), Some(CancelCause::TimedOut));
    }

    #[test]
    fn the_budget_counts_morsel_pops() {
        let t = CancelToken::with_morsel_budget(3);
        assert!(t.admit_morsel().is_ok());
        assert!(t.admit_morsel().is_ok());
        assert!(t.admit_morsel().is_ok());
        assert_eq!(t.admit_morsel(), Err(CancelCause::OverBudget));
        assert_eq!(t.morsels(), 4);
    }

    #[test]
    fn the_first_cause_wins() {
        let t = CancelToken::with_morsel_budget(0);
        assert_eq!(t.admit_morsel(), Err(CancelCause::OverBudget));
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::OverBudget));
    }
}
