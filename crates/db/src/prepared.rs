//! Prepared statements: parse and plan once, bind and execute many.
//!
//! [`crate::Database::prepare`] parses a `SELECT` whose comparison
//! constants and LIMIT may be `?` placeholders, plans it immediately
//! (so unknown tables/columns fail at prepare time), and returns a
//! [`PreparedStatement`]. Each [`PreparedStatement::execute`] binds
//! concrete parameters into the cached plan — pure constant patching,
//! no statistics pass — and runs it on the database's session.
//!
//! Binding cannot flip the §V-D adaptive algorithm choice, because the
//! planner takes its cardinality statistics over the *unfiltered*
//! table (see [`crate::Engine::plan`]); the statement still re-verifies
//! the choice on every execution and re-plans if a future policy
//! disagrees, and it always re-plans when the table was re-registered
//! (its statistics changed).
//!
//! The write path makes the re-check live: ingest bumps the table's
//! *data* version, and the next execution re-runs the §V-D choice
//! against the drifted statistics. If the choice stands, the statement
//! picks up a cheaply *rebased* plan (new column snapshots, no
//! statistics pass — counted by [`PreparedStatement::rebases`]); if the
//! drift crossed a policy threshold, it re-plans from scratch (counted
//! by [`PreparedStatement::replans`]).

use crate::catalogue::{CatalogueId, SharedCatalogue};
use crate::database::{Database, SqlError};
use crate::engine::QueryOutput;
use crate::plan::{PlanError, QueryPlan};
use crate::query::AggregateQuery;
use crate::snapshot::Snapshot;
use crate::sql::{parse_template, ParamSlot, SqlTemplate};
use std::sync::Arc;

/// A statement planned once and executed many times with bound
/// parameters. Produced by [`crate::Database::prepare`].
#[derive(Debug)]
pub struct PreparedStatement {
    /// Shared (`Arc`) with every sibling statement of a sharded
    /// prepare, so preparing N shards parses and stores the template
    /// once.
    template: Arc<SqlTemplate>,
    cached: Option<CachedPlan>,
    executions: u64,
    replans: u64,
    rebases: u64,
}

/// The plan last used, tagged with the (weak, non-owning) identity of
/// the catalogue it was planned against and that catalogue's table
/// versions: executing against a different catalogue, or after a
/// re-registration bumped the schema version, forces a re-plan (the
/// cached plan snapshots the *old* columns); an ingest-bumped data
/// version re-runs the §V-D choice against the drifted statistics and
/// rebases or re-plans accordingly.
#[derive(Debug)]
struct CachedPlan {
    catalogue: CatalogueId,
    schema_version: u64,
    data_version: u64,
    plan: QueryPlan,
}

impl PreparedStatement {
    /// Parses and eagerly plans `sql` against `catalogue` (what
    /// [`crate::Database::prepare`] calls).
    pub(crate) fn prepare(catalogue: &SharedCatalogue, sql: &str) -> Result<Self, SqlError> {
        let template = Arc::new(parse_template(sql)?);
        if template.join.is_some() {
            return Err(SqlError::JoinStatement);
        }
        let mut stmt = Self {
            template,
            cached: None,
            executions: 0,
            replans: 0,
            rebases: 0,
        };
        // Plan the sentinel query now: prepare-time errors beat
        // first-execution surprises. The plan doubles as the template
        // every later execution rebinds.
        let query = stmt.template.query.clone();
        stmt.plan_bound(catalogue, None, &query)?;
        Ok(stmt)
    }

    /// Builds a statement from an already-parsed, shared template
    /// without planning — the sharded path, which parses the SQL once
    /// and hands the same `Arc` to every shard's slot (prepare cost
    /// O(1) in the shard count). No eager plan happens here because a
    /// shard's partition may be empty (unplannable) until a re-register
    /// populates it; validation runs against a populated shard in
    /// [`crate::ShardedDatabase::prepare`].
    pub(crate) fn from_template(template: Arc<SqlTemplate>) -> Self {
        Self {
            template,
            cached: None,
            executions: 0,
            replans: 0,
            rebases: 0,
        }
    }

    /// `?` placeholders this statement declares (and
    /// [`PreparedStatement::execute`] expects parameters for).
    pub fn parameter_count(&self) -> usize {
        self.template.slots.len()
    }

    /// The `FROM` table this statement targets.
    pub fn table(&self) -> &str {
        &self.template.table
    }

    /// Successful executions so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Times execution had to re-plan instead of rebinding the cached
    /// plan: the table was re-registered (schema version bumped), the
    /// statement moved to a different catalogue, or — the write path's
    /// contribution — an ingest drifted the statistics far enough to
    /// flip the §V-D algorithm choice. Zero under steady traffic — the
    /// prepared-statement fast path.
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// Times an ingest bumped the table's data version *without*
    /// flipping the §V-D choice, so execution refreshed its plan for
    /// the new data instead of counting a [`PreparedStatement::replans`]
    /// event. Under the default exact-scan engine this is the cheap
    /// cache rebase (fresh column snapshots, no statistics pass); for
    /// plans the cache cannot rebase — sampled estimation, composite
    /// GROUP BY — a real statistics pass still ran underneath (visible
    /// in [`crate::CacheStats::invalidations`]), and this counter only
    /// records that the algorithm choice held.
    pub fn rebases(&self) -> u64 {
        self.rebases
    }

    /// The plan the statement last executed (or eagerly built at
    /// prepare time); `None` only for the sharded path's lazily planned
    /// per-shard statements before their first execution.
    pub fn plan(&self) -> Option<&QueryPlan> {
        self.cached.as_ref().map(|c| &c.plan)
    }

    /// Renders the current plan in `EXPLAIN` form (see
    /// [`QueryPlan::explain`]) — after an ingest past a §V-D threshold,
    /// the next execution's re-plan shows up here as a changed
    /// `Aggregate[...]` step.
    pub fn explain(&self) -> Option<String> {
        self.plan().map(QueryPlan::explain)
    }

    /// Binds `params` into the statement's `?` slots, yielding the
    /// concrete query this execution runs.
    ///
    /// # Errors
    ///
    /// [`PlanError::BindArity`] when `params.len()` disagrees with
    /// [`PreparedStatement::parameter_count`], and
    /// [`PlanError::BindType`] when a comparison constant does not fit
    /// `u32` (column values are 32-bit).
    pub fn bind(&self, params: &[u64]) -> Result<AggregateQuery, PlanError> {
        bind_slots(&self.template, params)
    }

    /// Binds `params` and executes on `db`'s session, reusing the plan
    /// cached at prepare time (constants are patched in; planning
    /// statistics are not recomputed). Re-plans only when the table
    /// was re-registered or the adaptive algorithm choice would flip.
    ///
    /// # Errors
    ///
    /// Bind errors ([`PlanError::BindArity`] / [`PlanError::BindType`],
    /// wrapped in [`SqlError::Plan`]), plus the usual planning errors
    /// when a re-plan is needed.
    pub fn execute(&mut self, db: &mut Database, params: &[u64]) -> Result<QueryOutput, SqlError> {
        // A session inside BEGIN READ ONLY pins every read — prepared
        // or ad hoc — to the transaction's snapshot.
        let plan = self.bound_plan_at(db.catalogue(), db.txn_snapshot(), params)?;
        self.executions += 1;
        Ok(db.run_plan(&plan))
    }

    /// Binds `params` and executes on `db`'s session **at a pinned
    /// snapshot**: the plan's column snapshots, cardinality statistics
    /// and §V-D algorithm choice come from the snapshot's cut — later
    /// ingest may have flipped the live choice and compacted the table,
    /// the execution still reproduces the pinned rows exactly. The
    /// statement's cached plan follows whatever version it last
    /// executed at, so alternating live/snapshot executions refresh it
    /// each time (counted by [`PreparedStatement::rebases`] /
    /// [`PreparedStatement::replans`] like any other version move).
    ///
    /// # Errors
    ///
    /// As [`PreparedStatement::execute`], plus
    /// [`SqlError::ForeignSnapshot`] if the snapshot was cut from a
    /// catalogue other than `db`'s.
    pub fn execute_at(
        &mut self,
        db: &mut Database,
        snap: &Snapshot,
        params: &[u64],
    ) -> Result<QueryOutput, SqlError> {
        let plan = self.bound_plan_at(db.catalogue(), Some(snap), params)?;
        self.executions += 1;
        Ok(db.run_plan(&plan))
    }

    /// Binds `params` and executes with tracing on — the prepared
    /// twin of `EXPLAIN ANALYZE`: the returned
    /// [`crate::AnalyzedQuery`] carries rows bit-identical to
    /// [`PreparedStatement::execute`] plus the per-step
    /// estimated-vs-actual trace. Counts as an execution for
    /// [`PreparedStatement::executions`].
    ///
    /// # Errors
    ///
    /// As [`PreparedStatement::execute`].
    pub fn analyze(
        &mut self,
        db: &mut Database,
        params: &[u64],
    ) -> Result<crate::AnalyzedQuery, SqlError> {
        let plan = self.bound_plan_at(db.catalogue(), db.txn_snapshot(), params)?;
        self.executions += 1;
        Ok(db.run_plan_traced(&plan))
    }

    /// Binds `params` and returns the executable plan without running
    /// it — the shared half of [`PreparedStatement::execute`] and the
    /// sharded execution path.
    pub(crate) fn bound_plan(
        &mut self,
        catalogue: &SharedCatalogue,
        params: &[u64],
    ) -> Result<QueryPlan, SqlError> {
        self.bound_plan_at(catalogue, None, params)
    }

    /// As [`PreparedStatement::bound_plan`], at an explicit snapshot
    /// when one is given (else live — itself a snapshot-of-now inside
    /// the catalogue).
    pub(crate) fn bound_plan_at(
        &mut self,
        catalogue: &SharedCatalogue,
        snap: Option<&Snapshot>,
        params: &[u64],
    ) -> Result<QueryPlan, SqlError> {
        let bound = self.bind(params).map_err(SqlError::Plan)?;
        self.plan_bound(catalogue, snap, &bound)
    }

    fn plan_bound(
        &mut self,
        catalogue: &SharedCatalogue,
        snap: Option<&Snapshot>,
        bound: &AggregateQuery,
    ) -> Result<QueryPlan, SqlError> {
        let table = &self.template.table;
        if let Some(snap) = snap {
            if !snap.catalogue().is_same(catalogue) {
                return Err(SqlError::ForeignSnapshot);
            }
        }
        let versions = match snap {
            Some(snap) => snap.schema_version(table).zip(snap.data_version(table)),
            None => catalogue.versions(table),
        };
        let (schema_version, data_version) =
            versions.ok_or_else(|| SqlError::UnknownTable(table.clone()))?;
        let mut drifted_from = None;
        if let Some(cached) = &self.cached {
            let same_table =
                cached.catalogue.matches(catalogue) && cached.schema_version == schema_version;
            if same_table && cached.data_version == data_version {
                let rebound = cached.plan.rebind(bound);
                if catalogue.algorithm_holds(&rebound) {
                    return Ok(rebound);
                }
                // A flipped policy at unchanged statistics: re-plan.
                self.replans += 1;
            } else if same_table {
                // Ingest drifted the statistics (data version moved):
                // re-plan through the catalogue — usually a cheap cache
                // rebase — and count below by whether the §V-D choice
                // moved.
                drifted_from = Some(cached.plan.algorithm());
            } else {
                // A different catalogue or a stale schema version:
                // re-plan against *this* catalogue.
                self.replans += 1;
            }
        }
        let plan = match snap {
            Some(snap) => catalogue.plan_query_at(snap, table, bound)?,
            None => catalogue.plan_query(table, bound)?,
        };
        if let Some(old_algorithm) = drifted_from {
            if plan.algorithm() == old_algorithm {
                self.rebases += 1;
            } else {
                self.replans += 1;
            }
        }
        self.cached = Some(CachedPlan {
            catalogue: catalogue.id(),
            schema_version,
            data_version,
            plan: plan.clone(),
        });
        Ok(plan)
    }
}

/// Binds `params` into a template's `?` slots, yielding the concrete
/// query one execution runs — the shared bind half of
/// [`PreparedStatement`] and [`crate::join::PreparedJoin`].
pub(crate) fn bind_slots(
    template: &SqlTemplate,
    params: &[u64],
) -> Result<AggregateQuery, PlanError> {
    if params.len() != template.slots.len() {
        return Err(PlanError::BindArity {
            expected: template.slots.len(),
            got: params.len(),
        });
    }
    let mut query = template.query.clone();
    for (index, (&slot, &value)) in template.slots.iter().zip(params).enumerate() {
        let constant =
            |value: u64| u32::try_from(value).map_err(|_| PlanError::BindType { index, value });
        match slot {
            ParamSlot::FilterConstant => {
                let k = constant(value)?;
                let (_, pred) = query.filter.as_mut().expect("template has a WHERE slot");
                *pred = pred.with_constant(k);
            }
            ParamSlot::HavingConstant => {
                let k = constant(value)?;
                let having = query.having.as_mut().expect("template has a HAVING slot");
                having.pred = having.pred.with_constant(k);
            }
            ParamSlot::Limit => {
                let k = usize::try_from(value).map_err(|_| PlanError::BindType { index, value })?;
                query
                    .order_by
                    .as_mut()
                    .expect("template has a LIMIT slot")
                    .limit = Some(k);
            }
        }
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;

    fn db() -> Database {
        let mut db = Database::new();
        db.register(
            Table::new("r")
                .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
                .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0]),
        );
        db
    }

    #[test]
    fn execute_binds_parameters_into_the_cached_plan() {
        let mut db = db();
        let mut stmt = db
            .prepare("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > ? GROUP BY g")
            .unwrap();
        assert_eq!(stmt.parameter_count(), 1);
        assert_eq!(stmt.table(), "r");

        let out3 = stmt.execute(&mut db, &[3]).unwrap();
        let fresh3 = db
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > 3 GROUP BY g")
            .unwrap();
        assert_eq!(out3.rows, fresh3.rows);

        let out0 = stmt.execute(&mut db, &[0]).unwrap();
        let fresh0 = db
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > 0 GROUP BY g")
            .unwrap();
        assert_eq!(out0.rows, fresh0.rows);

        assert_eq!(stmt.executions(), 2);
        assert_eq!(stmt.replans(), 0, "binding never re-planned");
    }

    #[test]
    fn binding_zero_takes_the_dedicated_nonzero_compare() {
        let mut db = db();
        let mut stmt = db
            .prepare("SELECT g, SUM(v) FROM r WHERE v <> ? GROUP BY g")
            .unwrap();
        let out = stmt.execute(&mut db, &[0]).unwrap();
        let fresh = db
            .execute_sql("SELECT g, SUM(v) FROM r WHERE v <> 0 GROUP BY g")
            .unwrap();
        assert_eq!(out.rows, fresh.rows);
        assert!(out.report.describe().contains("VectorFilter(v <> 0)"));
    }

    #[test]
    fn having_and_limit_placeholders_bind_in_sql_order() {
        let mut db = db();
        let mut stmt = db
            .prepare(
                "SELECT g, COUNT(*), SUM(v) FROM r WHERE v > ? GROUP BY g \
                 HAVING SUM(v) > ? ORDER BY SUM(v) DESC LIMIT ?",
            )
            .unwrap();
        assert_eq!(stmt.parameter_count(), 3);
        let out = stmt.execute(&mut db, &[0, 2, 2]).unwrap();
        let fresh = db
            .execute_sql(
                "SELECT g, COUNT(*), SUM(v) FROM r WHERE v > 0 GROUP BY g \
                 HAVING SUM(v) > 2 ORDER BY SUM(v) DESC LIMIT 2",
            )
            .unwrap();
        assert_eq!(out.rows, fresh.rows);
    }

    #[test]
    fn wrong_arity_is_a_typed_bind_error() {
        let mut db = db();
        let mut stmt = db
            .prepare("SELECT g, SUM(v) FROM r WHERE v > ? GROUP BY g")
            .unwrap();
        for params in [&[][..], &[1, 2][..]] {
            let e = stmt.execute(&mut db, params).unwrap_err();
            assert_eq!(
                e,
                SqlError::Plan(PlanError::BindArity {
                    expected: 1,
                    got: params.len()
                })
            );
        }
        assert_eq!(stmt.executions(), 0, "failed binds do not execute");
    }

    #[test]
    fn oversized_constant_is_a_typed_bind_error() {
        let mut db = db();
        let mut stmt = db
            .prepare("SELECT g, SUM(v) FROM r WHERE v > ? GROUP BY g")
            .unwrap();
        let e = stmt
            .execute(&mut db, &[u64::from(u32::MAX) + 1])
            .unwrap_err();
        assert_eq!(
            e,
            SqlError::Plan(PlanError::BindType {
                index: 0,
                value: u64::from(u32::MAX) + 1
            })
        );
        // LIMIT slots take the full usize range.
        let mut stmt = db
            .prepare("SELECT g, SUM(v) FROM r GROUP BY g LIMIT ?")
            .unwrap();
        let out = stmt.execute(&mut db, &[u64::from(u32::MAX) + 1]).unwrap();
        assert_eq!(out.rows.len(), 6);
    }

    #[test]
    fn prepare_reports_errors_eagerly() {
        let db = db();
        assert_eq!(
            db.prepare("SELECT g, SUM(v) FROM nope WHERE v > ? GROUP BY g")
                .unwrap_err(),
            SqlError::UnknownTable("nope".into())
        );
        assert_eq!(
            db.prepare("SELECT g, SUM(missing) FROM r WHERE v > ? GROUP BY g")
                .unwrap_err(),
            SqlError::Plan(PlanError::UnknownColumn("missing".into()))
        );
    }

    #[test]
    fn re_registration_forces_a_replan() {
        let mut db = db();
        let mut stmt = db
            .prepare("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > ? GROUP BY g")
            .unwrap();
        stmt.execute(&mut db, &[0]).unwrap();
        assert_eq!(stmt.replans(), 0);
        db.register(
            Table::new("r")
                .with_column("g", vec![8, 8, 8, 8])
                .with_column("v", vec![1, 2, 3, 4]),
        );
        let out = stmt.execute(&mut db, &[1]).unwrap();
        assert_eq!(stmt.replans(), 1, "stale statistics re-planned");
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].group, 8);
        // v > 1 over v = [1, 2, 3, 4]: three rows, SUM 9.
        assert_eq!(out.rows[0].values, vec![3.0, 9.0]);
        // Steady state again afterwards.
        stmt.execute(&mut db, &[2]).unwrap();
        assert_eq!(stmt.replans(), 1);
    }

    #[test]
    fn zero_parameter_statements_prepare_fine() {
        let mut db = db();
        let mut stmt = db
            .prepare("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        assert_eq!(stmt.parameter_count(), 0);
        let out = stmt.execute(&mut db, &[]).unwrap();
        assert_eq!(out.rows.len(), 6);
    }

    #[test]
    fn executing_on_another_catalogue_replans_against_its_table() {
        // Same table name, same version number, different catalogue:
        // the cached plan must not leak db1's column snapshots into
        // db2's answer.
        let mut db1 = db();
        let mut stmt = db1
            .prepare("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        let from_db1 = stmt.execute(&mut db1, &[]).unwrap();
        assert_eq!(from_db1.rows.len(), 6);

        let mut db2 = Database::new();
        db2.register(
            Table::new("r")
                .with_column("g", vec![5, 5, 5])
                .with_column("v", vec![1, 1, 1]),
        );
        let from_db2 = stmt.execute(&mut db2, &[]).unwrap();
        assert_eq!(from_db2.rows.len(), 1, "db2's table answered");
        assert_eq!(from_db2.rows[0].group, 5);
        assert_eq!(from_db2.rows[0].values, vec![3.0, 3.0]);
        assert_eq!(stmt.replans(), 1, "catalogue switch re-planned");

        // Switching back re-plans again and serves db1's data.
        let back = stmt.execute(&mut db1, &[]).unwrap();
        assert_eq!(back.rows, from_db1.rows);
        assert_eq!(stmt.replans(), 2);
    }

    #[test]
    fn ingest_without_drift_rebases_instead_of_replanning() {
        use crate::ingest::RowBatch;
        let mut db = db();
        let mut stmt = db
            .prepare("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > ? GROUP BY g")
            .unwrap();
        stmt.execute(&mut db, &[0]).unwrap();
        assert_eq!((stmt.replans(), stmt.rebases()), (0, 0));

        // A small append leaves the §V-D choice standing...
        db.append_rows(
            "r",
            RowBatch::new()
                .with_column("g", vec![3, 3])
                .with_column("v", vec![8, 9]),
        )
        .unwrap();
        let out = stmt.execute(&mut db, &[0]).unwrap();
        assert_eq!((stmt.replans(), stmt.rebases()), (0, 1), "cheap refresh");
        // ...and the statement serves the appended rows.
        let r3 = out.rows.iter().find(|r| r.group == 3).unwrap();
        assert_eq!(r3.values, vec![4.0, 24.0], "two base rows + two appended");

        // Steady state again afterwards.
        stmt.execute(&mut db, &[0]).unwrap();
        assert_eq!((stmt.replans(), stmt.rebases()), (0, 1));
    }

    #[test]
    fn stats_drift_past_the_policy_threshold_replans_and_flips() {
        use crate::ingest::RowBatch;
        use vagg_core::Algorithm;
        let mut db = db();
        let mut stmt = db
            .prepare("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        stmt.execute(&mut db, &[]).unwrap();
        assert_eq!(stmt.plan().unwrap().algorithm(), Algorithm::Monotable);
        assert!(stmt.explain().unwrap().contains("Aggregate[mono]"));

        // Drift the cardinality estimate across the §V-D division
        // boundary: the re-run choice flips to PSM and the statement
        // re-plans (not a rebase).
        db.append_rows(
            "r",
            RowBatch::new()
                .with_column("g", vec![20_000])
                .with_column("v", vec![1]),
        )
        .unwrap();
        let out = stmt.execute(&mut db, &[]).unwrap();
        assert_eq!((stmt.replans(), stmt.rebases()), (1, 0));
        assert_eq!(
            stmt.plan().unwrap().algorithm(),
            Algorithm::PartiallySortedMonotable
        );
        assert!(stmt.explain().unwrap().contains("Aggregate[psm]"));
        assert_eq!(
            out.report.algorithm,
            Some(Algorithm::PartiallySortedMonotable)
        );
        assert_eq!(out.rows.len(), 7, "six base groups plus group 20000");
    }

    #[test]
    fn execute_at_reads_the_pinned_cut() {
        use crate::ingest::RowBatch;
        let mut db = db();
        let mut stmt = db
            .prepare("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > ? GROUP BY g")
            .unwrap();
        let snap = db.snapshot();
        let before = stmt.execute(&mut db, &[0]).unwrap();
        db.append_rows(
            "r",
            RowBatch::new()
                .with_column("g", vec![1, 1])
                .with_column("v", vec![8, 9]),
        )
        .unwrap();
        let at = stmt.execute_at(&mut db, &snap, &[0]).unwrap();
        assert_eq!(at.rows, before.rows, "pinned cut, not the live rows");
        let live = stmt.execute(&mut db, &[0]).unwrap();
        assert_ne!(live.rows, at.rows);
        assert_eq!(stmt.executions(), 3);
    }

    #[test]
    fn execute_inside_a_transaction_joins_its_snapshot() {
        use crate::database::SqlOutcome;
        let mut db = db();
        let mut writer = db.catalogue().connect();
        let mut stmt = db
            .prepare("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        assert!(matches!(
            db.run_sql("BEGIN READ ONLY").unwrap(),
            SqlOutcome::TransactionBegun
        ));
        let first = stmt.execute(&mut db, &[]).unwrap();
        writer
            .run_sql("INSERT INTO r (g, v) VALUES (9, 1)")
            .unwrap();
        let second = stmt.execute(&mut db, &[]).unwrap();
        assert_eq!(first.rows, second.rows, "prepared reads join the txn");
        db.run_sql("COMMIT").unwrap();
        let after = stmt.execute(&mut db, &[]).unwrap();
        assert_eq!(after.rows.len(), 7, "live again after COMMIT");
    }

    #[test]
    fn execute_at_rejects_foreign_snapshots() {
        let mut db1 = db();
        let db2 = Database::new();
        let mut stmt = db1.prepare("SELECT g, SUM(v) FROM r GROUP BY g").unwrap();
        let snap = db2.snapshot();
        let e = stmt.execute_at(&mut db1, &snap, &[]).unwrap_err();
        assert_eq!(e, SqlError::ForeignSnapshot);
        assert_eq!(stmt.executions(), 0);
    }

    #[test]
    fn dropping_the_table_surfaces_at_execute() {
        // Re-registration keeps the name alive; there is no DROP, but a
        // statement prepared against one catalogue can be executed
        // against a session of another catalogue missing the table.
        let db1 = db();
        let mut stmt = db1.prepare("SELECT g, SUM(v) FROM r GROUP BY g").unwrap();
        let mut db2 = Database::new();
        let e = stmt.execute(&mut db2, &[]).unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("r".into()));
    }
}
