//! A shared dictionary interning composite `GROUP BY` key tuples.
//!
//! Composite grouping fuses the key columns into one `u32` per row with
//! a mixed-radix encoding whose radices are the columns' *measured* key
//! domains (see `fuse_group_columns` in [`crate::session`]). Domains are
//! measured from the input a session stages, so two shards — or two
//! morsels of one shard — fuse the *same* tuple to *different* keys:
//! their partials are not mergeable as-is. That is exactly why the
//! sharded path used to reject composite `GROUP BY` outright.
//!
//! The [`KeyDictionary`] closes the gap: an append-only, shared
//! interning of key *tuples* to dense `u64` ids, built cooperatively by
//! every worker during the partial phase. Each worker decomposes its
//! locally fused keys back into tuples (exact — decomposition inverts
//! fusion for the domains the worker measured), interns the tuples, and
//! re-keys its partial by dense id. Dense ids are globally consistent
//! by construction, so per-shard/per-morsel partials merge with the
//! ordinary [`PartialAggregate`] merge-join, and the coordinator
//! resolves ids back to tuples once, on the (small) merged output.
//!
//! ```
//! use vagg_db::KeyDictionary;
//!
//! let dict = KeyDictionary::new();
//! let a = dict.intern(&[1, 7]);
//! let b = dict.intern(&[2, 0]);
//! assert_eq!(dict.intern(&[1, 7]), a, "same tuple, same id");
//! assert_ne!(a, b);
//! assert_eq!(dict.resolve(a), Some(vec![1, 7]));
//! assert_eq!(dict.len(), 2);
//! ```

use std::collections::HashMap;
use std::sync::Mutex;
use vagg_core::{AggResult, PartialAggregate};

/// Append-only interning of composite `GROUP BY` key tuples to dense
/// ids, shared across the workers of one query (see the
/// [module docs](self)).
#[derive(Debug, Default)]
pub struct KeyDictionary {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    ids: HashMap<Vec<u32>, u64>,
    tuples: Vec<Vec<u32>>,
    hits: u64,
}

impl KeyDictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a key tuple, returning its dense id: a fresh id for a
    /// first sighting, the existing id ever after. Ids are dense —
    /// `0..len()` in first-sighting order.
    pub fn intern(&self, tuple: &[u32]) -> u64 {
        let mut inner = self.inner.lock().expect("key dictionary lock");
        if let Some(&id) = inner.ids.get(tuple) {
            inner.hits += 1;
            return id;
        }
        let id = inner.tuples.len() as u64;
        inner.tuples.push(tuple.to_vec());
        inner.ids.insert(tuple.to_vec(), id);
        id
    }

    /// The dense id of an already-interned tuple, without interning:
    /// `None` means the tuple was never seen. This is the probe-side
    /// primitive of the hash join — probe rows look keys up against the
    /// build side's interned tuples and drop on a miss.
    pub fn lookup(&self, tuple: &[u32]) -> Option<u64> {
        let inner = self.inner.lock().expect("key dictionary lock");
        inner.ids.get(tuple).copied()
    }

    /// The tuple behind a dense id, or `None` for ids never handed out.
    pub fn resolve(&self, id: u64) -> Option<Vec<u32>> {
        let inner = self.inner.lock().expect("key dictionary lock");
        inner.tuples.get(usize::try_from(id).ok()?).cloned()
    }

    /// Distinct tuples interned so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("key dictionary lock").tuples.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern calls served by an already-present entry — the measure of
    /// how much key overlap the partials had.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("key dictionary lock").hits
    }

    /// Re-keys one worker's partial from its locally fused composite
    /// keys onto shared dense ids: every group key is decomposed with
    /// the worker's measured `rest_domains` (exact inversion of its own
    /// fusion), the tuple interned, and the partial's columns re-sorted
    /// by dense id so the ordinary merge-join applies. One lock
    /// acquisition covers the whole batch.
    pub(crate) fn remap(
        &self,
        partial: PartialAggregate,
        rest_domains: &[u32],
    ) -> PartialAggregate {
        let n = partial.len();
        if n == 0 {
            return partial;
        }
        let mut order: Vec<(u32, usize)> = {
            let mut inner = self.inner.lock().expect("key dictionary lock");
            partial
                .base
                .groups
                .iter()
                .enumerate()
                .map(|(i, &key)| {
                    let tuple = crate::session::decompose_key(key, rest_domains);
                    let id = match inner.ids.get(&tuple) {
                        Some(&id) => {
                            inner.hits += 1;
                            id
                        }
                        None => {
                            let id = inner.tuples.len() as u64;
                            inner.tuples.push(tuple.clone());
                            inner.ids.insert(tuple, id);
                            id
                        }
                    };
                    let id = u32::try_from(id).expect("dense ids fit the 32-bit key space");
                    (id, i)
                })
                .collect()
        };
        order.sort_unstable_by_key(|&(id, _)| id);
        permute(partial, &order)
    }
}

/// Rebuilds a partial with `order`'s keys, its columns permuted by
/// `order`'s source indices — shared by the worker-side dense-id remap
/// and the coordinator-side resolution back to fused keys.
pub(crate) fn permute(partial: PartialAggregate, order: &[(u32, usize)]) -> PartialAggregate {
    let pick = |col: &[u32]| order.iter().map(|&(_, i)| col[i]).collect::<Vec<u32>>();
    PartialAggregate {
        base: AggResult {
            groups: order.iter().map(|&(id, _)| id).collect(),
            counts: pick(&partial.base.counts),
            sums: pick(&partial.base.sums),
        },
        minmax: partial
            .minmax
            .as_ref()
            .map(|(mins, maxs)| (pick(mins), pick(maxs))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vagg_core::reference;

    #[test]
    fn interning_is_append_only_and_dense() {
        let dict = KeyDictionary::new();
        assert!(dict.is_empty());
        let ids: Vec<u64> = [[1u32, 2], [3, 4], [1, 2], [0, 0]]
            .iter()
            .map(|t| dict.intern(t))
            .collect();
        assert_eq!(ids, vec![0, 1, 0, 2]);
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.hits(), 1);
        assert_eq!(dict.resolve(1), Some(vec![3, 4]));
        assert_eq!(dict.resolve(9), None);
    }

    #[test]
    fn remap_makes_differently_fused_partials_mergeable() {
        // Two "shards" over tuples (a, b): the same logical groups,
        // fused with different local domains.
        //   shard 0 sees b in 0..3 (domain 3): key = a*3 + b
        //   shard 1 sees b in 0..5 (domain 5): key = a*5 + b
        let dict = KeyDictionary::new();
        // Keys 5 = 1·3+2 → (1,2) and 1 = 0·3+1 → (0,1) under domain 3.
        let left = PartialAggregate::new(reference(&[5, 1], &[10, 20]), None);
        // Keys 7 = 1·5+2 → (1,2) and 4 = 0·5+4 → (0,4) under domain 5.
        let right = PartialAggregate::new(reference(&[7, 4], &[5, 7]), None);
        let left = dict.remap(left, &[3]);
        let right = dict.remap(right, &[5]);
        let merged = left.merge(right);
        // Three distinct tuples: (1,2) appears on both sides and merged.
        assert_eq!(dict.len(), 3);
        assert_eq!(merged.len(), 3);
        let tuples: Vec<Vec<u32>> = merged
            .base
            .groups
            .iter()
            .map(|&id| dict.resolve(id as u64).unwrap())
            .collect();
        let i = tuples.iter().position(|t| t == &vec![1, 2]).unwrap();
        assert_eq!(merged.base.sums[i], 15, "both shards' (1,2) rows merged");
        assert!(tuples.contains(&vec![0, 1]) && tuples.contains(&vec![0, 4]));
    }

    #[test]
    fn remap_keeps_minmax_columns_aligned() {
        let partial = PartialAggregate::new(
            AggResult {
                groups: vec![2, 5],
                counts: vec![1, 2],
                sums: vec![10, 20],
            },
            Some((vec![10, 8], vec![10, 12])),
        );
        let dict = KeyDictionary::new();
        // Pre-intern in reverse so the remap must reorder by dense id.
        dict.intern(&[5]);
        dict.intern(&[2]);
        let out = dict.remap(partial, &[]);
        assert_eq!(out.base.groups, vec![0, 1]);
        assert_eq!(out.base.sums, vec![20, 10]);
        assert_eq!(out.minmax, Some((vec![8, 10], vec![12, 10])));
    }
}
