//! A shared dictionary interning key tuples to dense ids.
//!
//! The [`KeyDictionary`] is an append-only, shared interning of key
//! *tuples* to dense `u64` ids, built cooperatively by every worker of
//! one query. Today it is the hash side of the equi-join: build
//! morsels intern their key tuples ([`KeyDictionary::intern`]), probe
//! morsels look theirs up without interning
//! ([`KeyDictionary::lookup`]), and matched ids resolve back to tuples
//! on the coordinator ([`KeyDictionary::resolve`]).
//!
//! It used to serve a second master: sharded composite `GROUP BY`,
//! where every morsel fused its key columns with *locally measured*
//! radices and re-keyed its partial through the dictionary so partials
//! became mergeable. That path is gone — the coordinator now forces
//! the plan-time global key domains into every morsel's fusion (see
//! `fuse_group_columns` in [`crate::session`]), so composite partials
//! land in one shared fused key space and merge directly, with no
//! interning at all.
//!
//! ```
//! use vagg_db::KeyDictionary;
//!
//! let dict = KeyDictionary::new();
//! let a = dict.intern(&[1, 7]);
//! let b = dict.intern(&[2, 0]);
//! assert_eq!(dict.intern(&[1, 7]), a, "same tuple, same id");
//! assert_ne!(a, b);
//! assert_eq!(dict.resolve(a), Some(vec![1, 7]));
//! assert_eq!(dict.len(), 2);
//! ```

use std::collections::HashMap;
use std::sync::Mutex;

/// Append-only interning of composite `GROUP BY` key tuples to dense
/// ids, shared across the workers of one query (see the
/// [module docs](self)).
#[derive(Debug, Default)]
pub struct KeyDictionary {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    ids: HashMap<Vec<u32>, u64>,
    tuples: Vec<Vec<u32>>,
    hits: u64,
}

impl KeyDictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a key tuple, returning its dense id: a fresh id for a
    /// first sighting, the existing id ever after. Ids are dense —
    /// `0..len()` in first-sighting order.
    pub fn intern(&self, tuple: &[u32]) -> u64 {
        let mut inner = self.inner.lock().expect("key dictionary lock");
        if let Some(&id) = inner.ids.get(tuple) {
            inner.hits += 1;
            return id;
        }
        let id = inner.tuples.len() as u64;
        inner.tuples.push(tuple.to_vec());
        inner.ids.insert(tuple.to_vec(), id);
        id
    }

    /// The dense id of an already-interned tuple, without interning:
    /// `None` means the tuple was never seen. This is the probe-side
    /// primitive of the hash join — probe rows look keys up against the
    /// build side's interned tuples and drop on a miss.
    pub fn lookup(&self, tuple: &[u32]) -> Option<u64> {
        let inner = self.inner.lock().expect("key dictionary lock");
        inner.ids.get(tuple).copied()
    }

    /// The tuple behind a dense id, or `None` for ids never handed out.
    pub fn resolve(&self, id: u64) -> Option<Vec<u32>> {
        let inner = self.inner.lock().expect("key dictionary lock");
        inner.tuples.get(usize::try_from(id).ok()?).cloned()
    }

    /// Distinct tuples interned so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("key dictionary lock").tuples.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Intern calls served by an already-present entry — the measure of
    /// how much key overlap the workers' tuples had.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("key dictionary lock").hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_append_only_and_dense() {
        let dict = KeyDictionary::new();
        assert!(dict.is_empty());
        let ids: Vec<u64> = [[1u32, 2], [3, 4], [1, 2], [0, 0]]
            .iter()
            .map(|t| dict.intern(t))
            .collect();
        assert_eq!(ids, vec![0, 1, 0, 2]);
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.hits(), 1);
        assert_eq!(dict.resolve(1), Some(vec![3, 4]));
        assert_eq!(dict.resolve(9), None);
    }

    #[test]
    fn lookup_never_interns() {
        let dict = KeyDictionary::new();
        let a = dict.intern(&[1, 7]);
        assert_eq!(dict.lookup(&[1, 7]), Some(a));
        assert_eq!(dict.lookup(&[9, 9]), None);
        assert_eq!(dict.len(), 1, "the miss was not interned");
    }
}
