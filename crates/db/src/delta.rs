//! Delta stores and live statistics — the storage side of the write
//! path.
//!
//! A registered table pairs an immutable base [`Table`] (`Arc`-shared
//! columns, the read-optimised store every plan snapshots) with a
//! mutable [`DeltaStore`]: append-only columnar batches layered on top,
//! the way real column-stores pair a compressed read store with a
//! write-optimised delta. Appends go to the delta in O(batch); readers
//! see base ++ delta through the catalogue's merged view, materialised
//! lazily once per data version; a threshold-triggered compaction
//! (see [`crate::ingest::CompactionPolicy`]) merges the delta into a
//! new base and re-seeds statistics.
//!
//! [`TableStats`] is the live-statistics half: per-column row count,
//! min/max, sortedness and a sampled (KMV sketch) distinct estimate,
//! maintained *incrementally* on every append. Because the §V-D policy
//! plans from `max + 1` cardinality — exactly what the exact scan
//! measures — the maintained maximum lets the catalogue re-run the
//! algorithm choice against drifted statistics without re-scanning a
//! single column (see [`crate::SharedCatalogue`]).

use crate::ingest::RowBatch;
use crate::table::Table;
use std::collections::{BTreeMap, BTreeSet};

/// The write-optimised layer of one registered table: append-only
/// columnar batches over the same column set as the base table.
#[derive(Debug, Clone, Default)]
pub struct DeltaStore {
    columns: BTreeMap<String, Vec<u32>>,
    batches: usize,
    rows: usize,
}

impl DeltaStore {
    /// An empty delta with `table`'s column set.
    pub(crate) fn for_table(table: &Table) -> Self {
        Self {
            columns: table
                .column_names()
                .into_iter()
                .map(|n| (n.to_string(), Vec::new()))
                .collect(),
            batches: 0,
            rows: 0,
        }
    }

    /// Rows currently parked in the delta (not yet compacted).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Batches appended since the last compaction.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// One delta column's data (empty slice until rows arrive).
    pub(crate) fn column(&self, name: &str) -> &[u32] {
        self.columns.get(name).map_or(&[], |c| &c[..])
    }

    /// Appends one validated batch (the catalogue checks the batch
    /// against the schema first).
    pub(crate) fn append(&mut self, batch: &RowBatch) {
        for (name, values) in batch.columns() {
            self.columns
                .get_mut(name)
                .expect("batch validated against the schema")
                .extend_from_slice(values);
        }
        self.batches += 1;
        self.rows += batch.rows();
    }

    /// Empties the delta (after compaction merged it into the base).
    pub(crate) fn clear(&mut self) {
        for col in self.columns.values_mut() {
            col.clear();
        }
        self.batches = 0;
        self.rows = 0;
    }
}

/// Incrementally maintained statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Smallest value seen (`None` while the column is empty).
    pub min: Option<u32>,
    /// Largest value seen (`None` while the column is empty). The
    /// planner's cardinality estimate is `max + 1` — the same quantity
    /// the exact §III-A scan measures.
    pub max: Option<u32>,
    /// Whether the column (base ++ delta, in append order) is still
    /// sorted ascending — the DBMS metadata the §V-D policy consults.
    pub sorted: bool,
    /// Last value in append order (drives incremental `sorted`).
    last: Option<u32>,
    /// Sampled distinct-count sketch.
    sketch: DistinctSketch,
}

impl ColumnStats {
    fn empty() -> Self {
        Self {
            min: None,
            max: None,
            sorted: true,
            last: None,
            sketch: DistinctSketch::new(),
        }
    }

    fn observe(&mut self, values: &[u32]) {
        for &x in values {
            self.min = Some(self.min.map_or(x, |m| m.min(x)));
            self.max = Some(self.max.map_or(x, |m| m.max(x)));
            if self.last.is_some_and(|l| l > x) {
                self.sorted = false;
            }
            self.last = Some(x);
            self.sketch.insert(x);
        }
    }

    /// The §V-D cardinality this column would plan with: `max + 1`.
    pub fn cardinality(&self) -> u64 {
        self.max.map_or(0, |m| m as u64 + 1)
    }

    /// The sampled distinct-count estimate (a KMV sketch: exact below
    /// the sketch capacity, within a few percent above it).
    pub fn distinct_estimate(&self) -> u64 {
        self.sketch.estimate()
    }
}

/// Live, incrementally maintained statistics for one registered table:
/// the row count and one [`ColumnStats`] per column. Seeded from the
/// base table at registration, updated per appended batch, re-seeded
/// from the merged table on compaction.
#[derive(Debug, Clone)]
pub struct TableStats {
    rows: usize,
    columns: BTreeMap<String, ColumnStats>,
}

impl TableStats {
    /// Statistics scanned from a full table (registration / compaction
    /// re-seed).
    pub(crate) fn seed(table: &Table) -> Self {
        let mut stats = Self {
            rows: 0,
            columns: table
                .column_names()
                .into_iter()
                .map(|n| (n.to_string(), ColumnStats::empty()))
                .collect(),
        };
        for (name, col) in stats.columns.iter_mut() {
            col.observe(table.column(name).expect("listed column exists"));
        }
        stats.rows = table.rows();
        stats
    }

    /// Folds one validated batch into the statistics.
    pub(crate) fn observe(&mut self, batch: &RowBatch) {
        for (name, values) in batch.columns() {
            self.columns
                .get_mut(name)
                .expect("batch validated against the schema")
                .observe(values);
        }
        self.rows += batch.rows();
    }

    /// Total rows (base + delta).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// One column's statistics.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Column names, sorted.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.keys().map(String::as_str).collect()
    }
}

/// A K-minimum-values distinct-count sketch: keep the `K` smallest
/// hashes seen; with fewer than `K` distinct hashes the count is exact,
/// beyond that `distinct ≈ (K-1) · 2⁶⁴ / kth_smallest`. Deterministic
/// (SplitMix64 hash, no RNG state), O(log K) per insert — the "sampled
/// distinct estimate" a real optimiser maintains without re-scanning.
#[derive(Debug, Clone)]
struct DistinctSketch {
    hashes: BTreeSet<u64>,
}

/// Sketch capacity: 256 minima keep the estimate within ~6% (1/√K)
/// while costing 2 KiB per column.
const SKETCH_K: usize = 256;

impl DistinctSketch {
    fn new() -> Self {
        Self {
            hashes: BTreeSet::new(),
        }
    }

    fn insert(&mut self, value: u32) {
        let h = splitmix64(value as u64 ^ 0x5851_F42D_4C95_7F2D);
        if self.hashes.len() < SKETCH_K {
            self.hashes.insert(h);
        } else if h < *self.hashes.last().expect("sketch at capacity") && self.hashes.insert(h) {
            self.hashes.pop_last();
        }
    }

    fn estimate(&self) -> u64 {
        if self.hashes.len() < SKETCH_K {
            return self.hashes.len() as u64;
        }
        let kth = *self.hashes.last().expect("sketch at capacity");
        ((SKETCH_K as u128 - 1) * (u64::MAX as u128) / (kth as u128).max(1)) as u64
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(g: Vec<u32>, v: Vec<u32>) -> RowBatch {
        RowBatch::new().with_column("g", g).with_column("v", v)
    }

    #[test]
    fn delta_accumulates_batches() {
        let base = Table::new("r")
            .with_column("g", vec![1, 2])
            .with_column("v", vec![3, 4]);
        let mut d = DeltaStore::for_table(&base);
        assert_eq!((d.rows(), d.batches()), (0, 0));
        d.append(&batch(vec![5], vec![6]));
        d.append(&batch(vec![7, 8], vec![9, 10]));
        assert_eq!((d.rows(), d.batches()), (3, 2));
        assert_eq!(d.column("g"), &[5, 7, 8]);
        assert_eq!(d.column("v"), &[6, 9, 10]);
        d.clear();
        assert_eq!((d.rows(), d.batches()), (0, 0));
        assert!(d.column("g").is_empty());
    }

    #[test]
    fn incremental_stats_match_a_full_rescan() {
        // seed(base) + observe(batch) must equal seed(base ++ batch)
        // for every statistic the planner consults.
        let base = Table::new("r")
            .with_column("g", vec![1, 2, 3])
            .with_column("v", vec![9, 9, 0]);
        let mut stats = TableStats::seed(&base);
        stats.observe(&batch(vec![3, 7, 2], vec![5, 5, 5]));

        let merged = Table::new("r")
            .with_column("g", vec![1, 2, 3, 3, 7, 2])
            .with_column("v", vec![9, 9, 0, 5, 5, 5]);
        let fresh = TableStats::seed(&merged);

        assert_eq!(stats.rows(), fresh.rows());
        for name in ["g", "v"] {
            let (a, b) = (stats.column(name).unwrap(), fresh.column(name).unwrap());
            assert_eq!(a.min, b.min, "{name} min");
            assert_eq!(a.max, b.max, "{name} max");
            assert_eq!(a.sorted, b.sorted, "{name} sorted");
            assert_eq!(
                a.distinct_estimate(),
                b.distinct_estimate(),
                "{name} distinct"
            );
            // Sortedness agrees with the Table's own detection.
            assert_eq!(b.sorted, merged.meta(name).unwrap().sorted, "{name}");
        }
    }

    #[test]
    fn sorted_tracking_survives_in_order_appends_and_catches_breaks() {
        let base = Table::new("r").with_column("g", vec![1, 2, 3]);
        let mut stats = TableStats::seed(&base);
        assert!(stats.column("g").unwrap().sorted);
        stats.observe(&RowBatch::new().with_column("g", vec![3, 4, 9]));
        assert!(stats.column("g").unwrap().sorted, "in-order append");
        stats.observe(&RowBatch::new().with_column("g", vec![0]));
        assert!(!stats.column("g").unwrap().sorted, "break detected");
        // Sortedness never comes back without a re-seed.
        stats.observe(&RowBatch::new().with_column("g", vec![100]));
        assert!(!stats.column("g").unwrap().sorted);
    }

    #[test]
    fn cardinality_is_max_plus_one() {
        let t = Table::new("r").with_column("g", vec![4, 17, 3]);
        let stats = TableStats::seed(&t);
        assert_eq!(stats.column("g").unwrap().cardinality(), 18);
        let empty = Table::new("r").with_column("g", vec![]);
        assert_eq!(
            TableStats::seed(&empty).column("g").unwrap().cardinality(),
            0
        );
    }

    #[test]
    fn distinct_sketch_is_exact_below_capacity() {
        let mut s = DistinctSketch::new();
        for x in 0..100u32 {
            s.insert(x);
            s.insert(x); // duplicates never inflate
        }
        assert_eq!(s.estimate(), 100);
    }

    #[test]
    fn distinct_sketch_estimates_within_tolerance_above_capacity() {
        let mut s = DistinctSketch::new();
        let n = 50_000u32;
        for x in 0..n {
            s.insert(x);
        }
        let est = s.estimate();
        let err = (est as f64 - n as f64).abs() / n as f64;
        assert!(err < 0.15, "estimate {est} for {n} distinct (err {err:.3})");
    }

    #[test]
    fn empty_column_stats_are_well_defined() {
        let t = Table::new("r").with_column("g", vec![]);
        let stats = TableStats::seed(&t);
        let c = stats.column("g").unwrap();
        assert_eq!((c.min, c.max), (None, None));
        assert!(c.sorted);
        assert_eq!(c.distinct_estimate(), 0);
    }
}
