//! Delta stores and live statistics — the storage side of the write
//! path.
//!
//! A registered table pairs an immutable base [`Table`] (`Arc`-shared
//! columns, the read-optimised store every plan snapshots) with a
//! mutable [`DeltaStore`]: append-only columnar batches layered on top,
//! the way real column-stores pair a compressed read store with a
//! write-optimised delta. Appends go to the delta in O(batch); readers
//! see base ++ delta through the catalogue's merged view, materialised
//! lazily once per data version; a threshold-triggered compaction
//! (see [`crate::ingest::CompactionPolicy`]) merges the delta into a
//! new base and re-seeds statistics. Because the delta is append-only
//! between compactions, a [`crate::Snapshot`] pins a point-in-time
//! view as `(epoch, prefix row count)` — no delta data is copied at
//! capture time, and compaction *retires* a still-pinned delta to a
//! frozen side store instead of freeing it (deferred GC, reclaimed
//! when the last pin drops).
//!
//! [`TableStats`] is the live-statistics half: per-column row count,
//! min/max, sortedness and a sampled (KMV sketch) distinct estimate,
//! maintained *incrementally* on every append. Because the §V-D policy
//! plans from `max + 1` cardinality — exactly what the exact scan
//! measures — the maintained maximum lets the catalogue re-run the
//! algorithm choice against drifted statistics without re-scanning a
//! single column (see [`crate::SharedCatalogue`]).

use crate::ingest::RowBatch;
use crate::table::Table;
use std::collections::{BTreeMap, BTreeSet};

/// A stable point-in-time cut of one [`DeltaStore`]: how many appended
/// rows, tombstones and overwrites were visible at a mutation boundary.
///
/// All three logs are append-only between compactions, so a captured
/// triple stays a valid **prefix view** however many later mutations
/// land — the generalisation of the single "prefix row count" pins
/// used before DELETE/UPDATE existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct DeltaCut {
    /// Appended delta rows visible at the cut.
    pub rows: usize,
    /// Tombstoned (deleted) physical rows visible at the cut.
    pub tombstones: usize,
    /// Overwrite (UPDATE) entries visible at the cut.
    pub overwrites: usize,
}

impl DeltaCut {
    /// True when the cut pins nothing from the delta — the base table
    /// alone reproduces the view.
    pub(crate) fn is_empty(&self) -> bool {
        self.rows == 0 && self.tombstones == 0 && self.overwrites == 0
    }
}

/// One UPDATE cell parked in the delta: `column[row] = value`, where
/// `row` is a *physical* row id into the base ++ delta concatenation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Overwrite {
    /// The updated column.
    pub column: String,
    /// Physical row id (position in base ++ delta, before tombstone
    /// filtering).
    pub row: u32,
    /// The new cell value.
    pub value: u32,
}

/// The write-optimised layer of one registered table: append-only
/// columnar batches over the same column set as the base table, plus
/// two more append-only logs — **tombstones** (physical row ids DELETEd
/// out of the view) and **overwrites** (UPDATEd cells). Readers apply
/// overwrites then filter tombstones at view materialisation; a
/// compaction folds all three into a new base and drops them
/// physically.
///
/// Because every log only ever *grows* between compactions, any
/// `DeltaCut` observed at a mutation boundary is a stable **prefix
/// view**: a [`crate::Snapshot`] pins `(epoch, cut)` and later reads
/// exactly that state back, however many mutations have landed since.
/// The `epoch` bumps whenever the logs are discarded (compaction,
/// re-registration), so a pinned prefix can always tell the store it
/// captured from its successor.
#[derive(Debug, Clone, Default)]
pub struct DeltaStore {
    columns: BTreeMap<String, Vec<u32>>,
    batches: usize,
    rows: usize,
    epoch: u64,
    tombstones: Vec<u32>,
    overwrites: Vec<Overwrite>,
}

impl DeltaStore {
    /// An empty delta with `table`'s column set.
    pub(crate) fn for_table(table: &Table) -> Self {
        Self {
            columns: table
                .column_names()
                .into_iter()
                .map(|n| (n.to_string(), Vec::new()))
                .collect(),
            batches: 0,
            rows: 0,
            epoch: 0,
            tombstones: Vec::new(),
            overwrites: Vec::new(),
        }
    }

    /// Rows currently parked in the delta (not yet compacted).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Tombstoned (DELETEd) physical rows awaiting compaction.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Overwrite (UPDATEd) cells awaiting compaction.
    pub fn overwrite_count(&self) -> usize {
        self.overwrites.len()
    }

    /// Everything parked in the delta — appended rows, tombstones and
    /// overwrites — the pressure the compaction policy weighs.
    pub(crate) fn load(&self) -> usize {
        self.rows + self.tombstones.len() + self.overwrites.len()
    }

    /// The current stable cut (see [`DeltaCut`]).
    pub(crate) fn cut(&self) -> DeltaCut {
        DeltaCut {
            rows: self.rows,
            tombstones: self.tombstones.len(),
            overwrites: self.overwrites.len(),
        }
    }

    /// Batches appended since the last compaction.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// The delta's epoch: bumped every time the parked rows are
    /// discarded (compaction folding them into the base, or the table
    /// being replaced), so a prefix view pinned at one epoch is never
    /// confused with the rows of a later delta generation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// One delta column's data (empty slice until rows arrive).
    pub(crate) fn column(&self, name: &str) -> &[u32] {
        self.columns.get(name).map_or(&[], |c| &c[..])
    }

    /// The first `rows` values of one column — a pinned snapshot's
    /// prefix view (batch boundaries make any captured row count a
    /// stable prefix of the append-only delta).
    ///
    /// # Panics
    ///
    /// Panics if `rows` exceeds the column's length — a pin/epoch
    /// bookkeeping bug, never reachable through the public API.
    pub(crate) fn prefix_column(&self, name: &str, rows: usize) -> &[u32] {
        &self.column(name)[..rows]
    }

    /// The first `n` tombstoned physical row ids — a pinned cut's view
    /// of the append-only tombstone log.
    pub(crate) fn tombstone_prefix(&self, n: usize) -> &[u32] {
        &self.tombstones[..n]
    }

    /// The first `n` overwrite entries — a pinned cut's view of the
    /// append-only overwrite log.
    pub(crate) fn overwrite_prefix(&self, n: usize) -> &[Overwrite] {
        &self.overwrites[..n]
    }

    /// A frozen copy of the delta state visible at `cut` (same epoch) —
    /// the bounded extract a pinned reader takes under the registry
    /// lock, so the O(base) view merge can run outside every lock.
    pub(crate) fn clone_prefix(&self, cut: DeltaCut) -> DeltaStore {
        DeltaStore {
            columns: self
                .columns
                .keys()
                .map(|n| (n.clone(), self.prefix_column(n, cut.rows).to_vec()))
                .collect(),
            batches: self.batches,
            rows: cut.rows,
            epoch: self.epoch,
            tombstones: self.tombstone_prefix(cut.tombstones).to_vec(),
            overwrites: self.overwrite_prefix(cut.overwrites).to_vec(),
        }
    }

    /// Appends one validated batch (the catalogue checks the batch
    /// against the schema first).
    pub(crate) fn append(&mut self, batch: &RowBatch) {
        for (name, values) in batch.columns() {
            self.columns
                .get_mut(name)
                .expect("batch validated against the schema")
                .extend_from_slice(values);
        }
        self.batches += 1;
        self.rows += batch.rows();
    }

    /// Parks DELETEd physical rows in the tombstone log. The caller
    /// resolves visible rows to physical ids first (and never tombstones
    /// a row twice — resolution only sees live rows).
    pub(crate) fn tombstone_rows(&mut self, rows: &[u32]) {
        self.tombstones.extend_from_slice(rows);
    }

    /// Parks one UPDATEd cell in the overwrite log.
    pub(crate) fn overwrite(&mut self, column: &str, row: u32, value: u32) {
        self.overwrites.push(Overwrite {
            column: column.to_string(),
            row,
            value,
        });
    }

    /// Empties the delta (after compaction merged it into the base),
    /// opening the next epoch.
    pub(crate) fn clear(&mut self) {
        for col in self.columns.values_mut() {
            col.clear();
        }
        self.batches = 0;
        self.rows = 0;
        self.epoch += 1;
        self.tombstones.clear();
        self.overwrites.clear();
    }

    /// Moves the parked state out into a frozen store (same contents,
    /// same epoch) and opens the next epoch in place — the deferred-GC
    /// half of compaction: live snapshots still pinning this epoch's
    /// cut keep reading the frozen store until the last pin drops.
    pub(crate) fn retire(&mut self) -> DeltaStore {
        let retired = DeltaStore {
            columns: std::mem::take(&mut self.columns),
            batches: self.batches,
            rows: self.rows,
            epoch: self.epoch,
            tombstones: std::mem::take(&mut self.tombstones),
            overwrites: std::mem::take(&mut self.overwrites),
        };
        self.columns = retired
            .columns
            .keys()
            .map(|n| (n.clone(), Vec::new()))
            .collect();
        self.batches = 0;
        self.rows = 0;
        self.epoch += 1;
        retired
    }
}

/// Materialises the view a [`DeltaCut`] pins: base rows ++ the delta's
/// first `cut.rows` appended rows, with the first `cut.overwrites`
/// UPDATE cells applied and the first `cut.tombstones` DELETEd rows
/// filtered out. This is the one merge routine every reader shares —
/// the live merged view (`cut == delta.cut()`), pinned snapshot views,
/// and compaction (which installs the result as the new base, dropping
/// tombstones and overwrites physically).
///
/// Column sortedness is re-detected by [`Table::with_column`], so a
/// delete or overwrite that restores (or breaks) sorted order is
/// reflected in the merged table's metadata.
pub(crate) fn materialise(base: &Table, delta: &DeltaStore, cut: DeltaCut) -> Table {
    let total = base.rows() + cut.rows;
    // Overwrites first (they address physical rows), tombstones second.
    let mut keep = vec![true; total];
    for &row in delta.tombstone_prefix(cut.tombstones) {
        keep[row as usize] = false;
    }
    let deletes = keep.iter().filter(|&&k| !k).count();
    let mut out = Table::new(base.name());
    for name in base.column_names() {
        let mut data = Vec::with_capacity(total - deletes);
        data.extend_from_slice(base.column(name).expect("listed column exists"));
        data.extend_from_slice(delta.prefix_column(name, cut.rows));
        for ow in delta.overwrite_prefix(cut.overwrites) {
            if ow.column == name {
                data[ow.row as usize] = ow.value;
            }
        }
        if deletes > 0 {
            let mut live = Vec::with_capacity(total - deletes);
            live.extend(data.iter().zip(&keep).filter_map(|(&x, &k)| k.then_some(x)));
            data = live;
        }
        out = out.with_column(name, data);
    }
    out
}

/// Incrementally maintained statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Smallest value seen (`None` while the column is empty).
    pub min: Option<u32>,
    /// Largest value seen (`None` while the column is empty). The
    /// planner's cardinality estimate is `max + 1` — the same quantity
    /// the exact §III-A scan measures.
    pub max: Option<u32>,
    /// Whether the column (base ++ delta, in append order) is still
    /// sorted ascending — the DBMS metadata the §V-D policy consults.
    pub sorted: bool,
    /// Last value in append order (drives incremental `sorted`).
    last: Option<u32>,
    /// Sampled distinct-count sketch.
    sketch: DistinctSketch,
}

impl ColumnStats {
    fn empty() -> Self {
        Self {
            min: None,
            max: None,
            sorted: true,
            last: None,
            sketch: DistinctSketch::new(),
        }
    }

    fn observe(&mut self, values: &[u32]) {
        for &x in values {
            self.min = Some(self.min.map_or(x, |m| m.min(x)));
            self.max = Some(self.max.map_or(x, |m| m.max(x)));
            if self.last.is_some_and(|l| l > x) {
                self.sorted = false;
            }
            self.last = Some(x);
            self.sketch.insert(x);
        }
    }

    /// Folds another partition's statistics of the same column into
    /// this one (see [`TableStats::merged`]).
    fn absorb(&mut self, other: &ColumnStats) {
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.sorted = self.sorted && other.sorted;
        // The merged view is not an ingest accumulator: partitions
        // append independently, so there is no meaningful "last value".
        self.last = None;
        self.sketch.merge(&other.sketch);
    }

    /// The §V-D cardinality this column would plan with: `max + 1`.
    pub fn cardinality(&self) -> u64 {
        self.max.map_or(0, |m| m as u64 + 1)
    }

    /// The sampled distinct-count estimate (a KMV sketch: exact below
    /// the sketch capacity, within a few percent above it).
    pub fn distinct_estimate(&self) -> u64 {
        self.sketch.estimate()
    }
}

/// Row range a zone-map chunk is seeded over: the default morsel size,
/// so one seeded zone answers for roughly one morsel.
const ZONE_ROWS: usize = 2048;

/// When incremental batches push the zone count past this, adjacent
/// zones merge pairwise (coarser bounds, half the entries) — pruning
/// stays conservative, memory stays bounded.
const MAX_ZONES: usize = 4096;

/// Per-range min/max column summaries ("zone maps"): the table's rows
/// split into ordered ranges — one per seeded chunk of the base, one
/// per appended batch — with each column's `(min, max)` kept per range.
///
/// The bounds are conservative for **any subrange**: a morsel that
/// overlaps a zone can only contain values inside that zone's
/// `[min, max]`, so a WHERE predicate no value in the covering zones'
/// bounds can satisfy provably matches nothing in the morsel. Ranges
/// are positions in the table's *merged read view*; the catalogue
/// re-seeds statistics (zones included) whenever a DELETE/UPDATE or
/// compaction shifts view positions, so the alignment invariant is
/// `ranges` partitioning `[0, rows)` of whatever view the stats
/// describe.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZoneMaps {
    /// Row ranges `[lo, hi)`, in order, partitioning `[0, rows)`.
    ranges: Vec<(usize, usize)>,
    /// Per column, one `(min, max)` per range (parallel to `ranges`).
    columns: BTreeMap<String, Vec<(u32, u32)>>,
}

impl ZoneMaps {
    /// Zones scanned from a full table in [`ZONE_ROWS`]-sized chunks.
    fn seed(table: &Table) -> Self {
        let mut zones = Self {
            ranges: Vec::new(),
            columns: table
                .column_names()
                .into_iter()
                .map(|n| (n.to_string(), Vec::new()))
                .collect(),
        };
        let n = table.rows();
        let mut lo = 0;
        while lo < n {
            let hi = (lo + ZONE_ROWS).min(n);
            zones.ranges.push((lo, hi));
            for (name, bounds) in zones.columns.iter_mut() {
                let col = table.column(name).expect("listed column exists");
                bounds.push(minmax(&col[lo..hi]));
            }
            lo = hi;
        }
        zones
    }

    /// Appends one zone covering a validated batch.
    fn observe(&mut self, batch: &RowBatch, lo: usize) {
        if batch.rows() == 0 {
            return;
        }
        self.ranges.push((lo, lo + batch.rows()));
        for (name, values) in batch.columns() {
            self.columns
                .get_mut(name)
                .expect("batch validated against the schema")
                .push(minmax(values));
        }
        if self.ranges.len() > MAX_ZONES {
            self.coarsen();
        }
    }

    /// Merges adjacent zones pairwise: half the entries, bounds still
    /// conservative.
    fn coarsen(&mut self) {
        let merged_ranges: Vec<(usize, usize)> = self
            .ranges
            .chunks(2)
            .map(|c| (c[0].0, c.last().expect("non-empty chunk").1))
            .collect();
        for bounds in self.columns.values_mut() {
            *bounds = bounds
                .chunks(2)
                .map(|c| {
                    c.iter()
                        .fold((u32::MAX, 0u32), |(lo, hi), &(mn, mx)| (lo.min(mn), hi.max(mx)))
                })
                .collect();
        }
        self.ranges = merged_ranges;
    }

    /// How many zones the table currently keeps (0 = no zone maps).
    pub fn zones(&self) -> usize {
        self.ranges.len()
    }

    /// One column's zones as `(lo, hi, min, max)` row-range bounds —
    /// what the planner pins onto a plan for its WHERE column.
    pub(crate) fn column_zones(&self, name: &str) -> Option<Vec<(usize, usize, u32, u32)>> {
        let bounds = self.columns.get(name)?;
        Some(
            self.ranges
                .iter()
                .zip(bounds.iter())
                .map(|(&(lo, hi), &(mn, mx))| (lo, hi, mn, mx))
                .collect(),
        )
    }
}

/// `(min, max)` of a non-empty slice.
fn minmax(values: &[u32]) -> (u32, u32) {
    values.iter().fold((u32::MAX, 0u32), |(lo, hi), &x| {
        (lo.min(x), hi.max(x))
    })
}

/// Live, incrementally maintained statistics for one registered table:
/// the row count, one [`ColumnStats`] per column, and per-range
/// [`ZoneMaps`]. Seeded from the base table at registration, updated
/// per appended batch, re-seeded from the merged table on compaction
/// and on DELETE/UPDATE (which shift view positions).
#[derive(Debug, Clone)]
pub struct TableStats {
    rows: usize,
    columns: BTreeMap<String, ColumnStats>,
    zones: ZoneMaps,
}

impl TableStats {
    /// Statistics scanned from a full table (registration / compaction
    /// re-seed).
    pub(crate) fn seed(table: &Table) -> Self {
        let mut stats = Self {
            rows: 0,
            columns: table
                .column_names()
                .into_iter()
                .map(|n| (n.to_string(), ColumnStats::empty()))
                .collect(),
            zones: ZoneMaps::seed(table),
        };
        for (name, col) in stats.columns.iter_mut() {
            col.observe(table.column(name).expect("listed column exists"));
        }
        stats.rows = table.rows();
        stats
    }

    /// Folds one validated batch into the statistics.
    pub(crate) fn observe(&mut self, batch: &RowBatch) {
        self.zones.observe(batch, self.rows);
        for (name, values) in batch.columns() {
            self.columns
                .get_mut(name)
                .expect("batch validated against the schema")
                .observe(values);
        }
        self.rows += batch.rows();
    }

    /// The table's per-range zone maps (see [`ZoneMaps`]).
    pub fn zone_maps(&self) -> &ZoneMaps {
        &self.zones
    }

    /// Total rows (base + delta).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// One column's statistics.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Column names, sorted.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.keys().map(String::as_str).collect()
    }

    /// Merges per-partition statistics into one observability view —
    /// what [`crate::ShardedDatabase::table_stats`] reports for a
    /// row-partitioned table. Row counts add, min/max combine, the KMV
    /// sketches union (keeping the K smallest hashes, so the merged
    /// distinct estimate is as good as a single-store sketch of the
    /// same rows), and `sorted` means *sorted within every partition*
    /// (the partitions are separate stores; no global order exists).
    ///
    /// `None` when `parts` is empty or the column sets disagree.
    pub fn merged(parts: &[TableStats]) -> Option<TableStats> {
        let (first, rest) = parts.split_first()?;
        let mut out = first.clone();
        // Zone ranges are positions in *one* partition's view; a
        // cross-partition merge has no meaningful row order, so the
        // observability view carries none.
        out.zones = ZoneMaps::default();
        for part in rest {
            if part.column_names() != out.column_names() {
                return None;
            }
            out.rows += part.rows;
            for (name, col) in out.columns.iter_mut() {
                col.absorb(part.column(name).expect("column sets checked equal"));
            }
        }
        Some(out)
    }
}

/// A K-minimum-values distinct-count sketch: keep the `K` smallest
/// hashes seen; with fewer than `K` distinct hashes the count is exact,
/// beyond that `distinct ≈ (K-1) · 2⁶⁴ / kth_smallest`. Deterministic
/// (SplitMix64 hash, no RNG state), O(log K) per insert — the "sampled
/// distinct estimate" a real optimiser maintains without re-scanning.
#[derive(Debug, Clone)]
struct DistinctSketch {
    hashes: BTreeSet<u64>,
}

/// Sketch capacity: 256 minima keep the estimate within ~6% (1/√K)
/// while costing 2 KiB per column.
const SKETCH_K: usize = 256;

impl DistinctSketch {
    fn new() -> Self {
        Self {
            hashes: BTreeSet::new(),
        }
    }

    fn insert(&mut self, value: u32) {
        self.insert_hash(splitmix64(value as u64 ^ 0x5851_F42D_4C95_7F2D));
    }

    fn insert_hash(&mut self, h: u64) {
        if self.hashes.len() < SKETCH_K {
            self.hashes.insert(h);
        } else if h < *self.hashes.last().expect("sketch at capacity") && self.hashes.insert(h) {
            self.hashes.pop_last();
        }
    }

    /// Unions another sketch into this one, keeping the K smallest
    /// hashes of either — KMV sketches merge losslessly, so the union
    /// estimates the combined distinct count exactly as a single
    /// sketch over all the rows would.
    fn merge(&mut self, other: &DistinctSketch) {
        for &h in &other.hashes {
            self.insert_hash(h);
        }
    }

    fn estimate(&self) -> u64 {
        if self.hashes.len() < SKETCH_K {
            return self.hashes.len() as u64;
        }
        let kth = *self.hashes.last().expect("sketch at capacity");
        ((SKETCH_K as u128 - 1) * (u64::MAX as u128) / (kth as u128).max(1)) as u64
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(g: Vec<u32>, v: Vec<u32>) -> RowBatch {
        RowBatch::new().with_column("g", g).with_column("v", v)
    }

    #[test]
    fn delta_accumulates_batches() {
        let base = Table::new("r")
            .with_column("g", vec![1, 2])
            .with_column("v", vec![3, 4]);
        let mut d = DeltaStore::for_table(&base);
        assert_eq!((d.rows(), d.batches()), (0, 0));
        d.append(&batch(vec![5], vec![6]));
        d.append(&batch(vec![7, 8], vec![9, 10]));
        assert_eq!((d.rows(), d.batches()), (3, 2));
        assert_eq!(d.column("g"), &[5, 7, 8]);
        assert_eq!(d.column("v"), &[6, 9, 10]);
        d.clear();
        assert_eq!((d.rows(), d.batches()), (0, 0));
        assert!(d.column("g").is_empty());
    }

    #[test]
    fn clear_and_retire_advance_the_epoch() {
        let base = Table::new("r")
            .with_column("g", vec![1])
            .with_column("v", vec![2]);
        let mut d = DeltaStore::for_table(&base);
        assert_eq!(d.epoch(), 0);
        d.append(&batch(vec![5, 6], vec![7, 8]));
        d.clear();
        assert_eq!(d.epoch(), 1, "clear opens a new epoch");

        d.append(&batch(vec![1, 2, 3], vec![4, 5, 6]));
        let frozen = d.retire();
        assert_eq!(frozen.epoch(), 1, "the frozen store keeps its epoch");
        assert_eq!(frozen.rows(), 3);
        assert_eq!(frozen.prefix_column("g", 2), &[1, 2]);
        assert_eq!((d.epoch(), d.rows(), d.batches()), (2, 0, 0));
        // The live store keeps accepting appends after retirement.
        d.append(&batch(vec![9], vec![9]));
        assert_eq!(d.column("g"), &[9]);
    }

    #[test]
    fn prefix_views_survive_later_appends() {
        let base = Table::new("r").with_column("g", vec![0]);
        let mut d = DeltaStore::for_table(&base);
        d.append(&RowBatch::new().with_column("g", vec![1, 2]));
        let prefix = d.rows();
        d.append(&RowBatch::new().with_column("g", vec![3, 4, 5]));
        assert_eq!(d.prefix_column("g", prefix), &[1, 2], "stable prefix");
    }

    #[test]
    fn materialise_applies_overwrites_then_filters_tombstones() {
        let base = Table::new("r")
            .with_column("g", vec![1, 2, 3])
            .with_column("v", vec![10, 20, 30]);
        let mut d = DeltaStore::for_table(&base);
        d.append(&batch(vec![4, 5], vec![40, 50]));
        // Overwrite a base cell and a delta cell, then delete row 1.
        d.overwrite("v", 0, 11);
        d.overwrite("v", 4, 55);
        d.tombstone_rows(&[1]);
        let t = materialise(&base, &d, d.cut());
        assert_eq!(t.rows(), 4);
        assert_eq!(t.column("g"), Some(&[1u32, 3, 4, 5][..]));
        assert_eq!(t.column("v"), Some(&[11u32, 30, 40, 55][..]));
        // An overwritten-then-deleted row leaves no trace.
        d.overwrite("g", 2, 99);
        d.tombstone_rows(&[2]);
        let t = materialise(&base, &d, d.cut());
        assert_eq!(t.column("g"), Some(&[1u32, 4, 5][..]));
    }

    #[test]
    fn delta_cuts_pin_tombstone_and_overwrite_prefixes() {
        let base = Table::new("r")
            .with_column("g", vec![7, 8])
            .with_column("v", vec![1, 2]);
        let mut d = DeltaStore::for_table(&base);
        d.append(&batch(vec![9], vec![3]));
        d.tombstone_rows(&[0]);
        let cut = d.cut();
        assert_eq!(
            cut,
            DeltaCut {
                rows: 1,
                tombstones: 1,
                overwrites: 0
            }
        );
        assert!(!cut.is_empty());
        // Later mutations leave the pinned view untouched.
        d.overwrite("v", 1, 99);
        d.tombstone_rows(&[2]);
        let at_cut = materialise(&base, &d, cut);
        assert_eq!(at_cut.column("g"), Some(&[8u32, 9][..]));
        assert_eq!(at_cut.column("v"), Some(&[2u32, 3][..]));
        // The frozen clone reproduces the cut bit for bit.
        let frozen = d.clone_prefix(cut);
        let from_frozen = materialise(&base, &frozen, cut);
        assert_eq!(from_frozen.column("g"), at_cut.column("g"));
        assert_eq!(from_frozen.column("v"), at_cut.column("v"));
        // The live head sees everything.
        let live = materialise(&base, &d, d.cut());
        assert_eq!(live.column("g"), Some(&[8u32][..]));
        assert_eq!(live.column("v"), Some(&[99u32][..]));
        assert_eq!(d.load(), 1 + 2 + 1);
    }

    #[test]
    fn merged_stats_match_a_single_store_over_all_rows() {
        // Partition the same rows two ways: per-part seed + merged must
        // agree with one seed over everything, for every statistic.
        let all: Vec<u32> = (0..500u32).map(|i| i * 37 % 311).collect();
        let whole = TableStats::seed(&Table::new("r").with_column("g", all.clone()));
        let parts: Vec<TableStats> = all
            .chunks(167)
            .map(|c| TableStats::seed(&Table::new("r").with_column("g", c.to_vec())))
            .collect();
        let merged = TableStats::merged(&parts).unwrap();
        assert_eq!(merged.rows(), whole.rows());
        let (m, w) = (merged.column("g").unwrap(), whole.column("g").unwrap());
        assert_eq!(m.min, w.min);
        assert_eq!(m.max, w.max);
        assert_eq!(
            m.distinct_estimate(),
            w.distinct_estimate(),
            "KMV sketches union losslessly"
        );
    }

    #[test]
    fn merged_stats_sorted_means_sorted_within_every_part() {
        let sorted = TableStats::seed(&Table::new("r").with_column("g", vec![1, 2, 3]));
        let also_sorted = TableStats::seed(&Table::new("r").with_column("g", vec![0, 1]));
        let unsorted = TableStats::seed(&Table::new("r").with_column("g", vec![5, 1]));
        let m = TableStats::merged(&[sorted.clone(), also_sorted]).unwrap();
        assert!(m.column("g").unwrap().sorted, "both parts sorted");
        let m = TableStats::merged(&[sorted.clone(), unsorted]).unwrap();
        assert!(!m.column("g").unwrap().sorted, "one part unsorted");
        // Degenerate and mismatched inputs.
        assert!(TableStats::merged(&[]).is_none());
        let other = TableStats::seed(&Table::new("r").with_column("h", vec![1]));
        assert!(TableStats::merged(&[sorted, other]).is_none());
    }

    #[test]
    fn incremental_stats_match_a_full_rescan() {
        // seed(base) + observe(batch) must equal seed(base ++ batch)
        // for every statistic the planner consults.
        let base = Table::new("r")
            .with_column("g", vec![1, 2, 3])
            .with_column("v", vec![9, 9, 0]);
        let mut stats = TableStats::seed(&base);
        stats.observe(&batch(vec![3, 7, 2], vec![5, 5, 5]));

        let merged = Table::new("r")
            .with_column("g", vec![1, 2, 3, 3, 7, 2])
            .with_column("v", vec![9, 9, 0, 5, 5, 5]);
        let fresh = TableStats::seed(&merged);

        assert_eq!(stats.rows(), fresh.rows());
        for name in ["g", "v"] {
            let (a, b) = (stats.column(name).unwrap(), fresh.column(name).unwrap());
            assert_eq!(a.min, b.min, "{name} min");
            assert_eq!(a.max, b.max, "{name} max");
            assert_eq!(a.sorted, b.sorted, "{name} sorted");
            assert_eq!(
                a.distinct_estimate(),
                b.distinct_estimate(),
                "{name} distinct"
            );
            // Sortedness agrees with the Table's own detection.
            assert_eq!(b.sorted, merged.meta(name).unwrap().sorted, "{name}");
        }
    }

    #[test]
    fn sorted_tracking_survives_in_order_appends_and_catches_breaks() {
        let base = Table::new("r").with_column("g", vec![1, 2, 3]);
        let mut stats = TableStats::seed(&base);
        assert!(stats.column("g").unwrap().sorted);
        stats.observe(&RowBatch::new().with_column("g", vec![3, 4, 9]));
        assert!(stats.column("g").unwrap().sorted, "in-order append");
        stats.observe(&RowBatch::new().with_column("g", vec![0]));
        assert!(!stats.column("g").unwrap().sorted, "break detected");
        // Sortedness never comes back without a re-seed.
        stats.observe(&RowBatch::new().with_column("g", vec![100]));
        assert!(!stats.column("g").unwrap().sorted);
    }

    #[test]
    fn cardinality_is_max_plus_one() {
        let t = Table::new("r").with_column("g", vec![4, 17, 3]);
        let stats = TableStats::seed(&t);
        assert_eq!(stats.column("g").unwrap().cardinality(), 18);
        let empty = Table::new("r").with_column("g", vec![]);
        assert_eq!(
            TableStats::seed(&empty).column("g").unwrap().cardinality(),
            0
        );
    }

    #[test]
    fn distinct_sketch_is_exact_below_capacity() {
        let mut s = DistinctSketch::new();
        for x in 0..100u32 {
            s.insert(x);
            s.insert(x); // duplicates never inflate
        }
        assert_eq!(s.estimate(), 100);
    }

    #[test]
    fn distinct_sketch_estimates_within_tolerance_above_capacity() {
        let mut s = DistinctSketch::new();
        let n = 50_000u32;
        for x in 0..n {
            s.insert(x);
        }
        let est = s.estimate();
        let err = (est as f64 - n as f64).abs() / n as f64;
        assert!(err < 0.15, "estimate {est} for {n} distinct (err {err:.3})");
    }

    #[test]
    fn empty_column_stats_are_well_defined() {
        let t = Table::new("r").with_column("g", vec![]);
        let stats = TableStats::seed(&t);
        let c = stats.column("g").unwrap();
        assert_eq!((c.min, c.max), (None, None));
        assert!(c.sorted);
        assert_eq!(c.distinct_estimate(), 0);
    }
}
