//! Reusable execution sessions — the execute half of the plan/execute
//! split.
//!
//! A [`Session`] owns one long-lived [`Machine`] and executes
//! [`QueryPlan`]s on it. Back-to-back queries amortise machine
//! construction and keep the simulated cache hierarchy warm, the way a
//! real column-store keeps one execution context per connection; each
//! [`Session::run`] reports the *cycle delta* it cost, so per-query
//! accounting stays exact across reuse.

use crate::engine::{ExecutionReport, QueryOutput, Row};
use crate::filter::vector_filter;
use crate::plan::{PlanStep, QueryPlan, ScanMode};
use crate::query::{AggFn, AggregateQuery, OrderKey};
use crate::trace::StepTrace;
use vagg_core::input::vector_max_scan;
use vagg_core::{minmax_aggregate, PartialAggregate, StagedInput};
use vagg_sim::{Machine, SimConfig};

/// What [`Session::run_partial`] / [`Session::run_partial_range`]
/// produced: the mergeable partial aggregate of the plan's
/// *distributive* slice (WHERE + aggregation, no HAVING/ORDER BY/
/// LIMIT), plus the usual per-query report.
///
/// A sharded front end runs the same plan on every shard — whole
/// ([`Session::run_partial`]) or morsel by morsel
/// ([`Session::run_partial_range`] on the [`crate::Executor`]'s
/// workers) — folds the partials with [`PartialAggregate::merge`], and
/// finalises the non-distributive tail once on the merged result (see
/// [`crate::ShardedDatabase`]).
#[derive(Debug, Clone)]
pub struct PartialRun {
    /// The mergeable COUNT/SUM (+ optional MIN/MAX) columns.
    pub partial: PartialAggregate,
    /// Measured key domains of every grouping column (primary first)
    /// for composite GROUP BY; empty for single-column grouping. The
    /// trailing entries (`key_domains[1..]`) decompose this partial's
    /// fused keys on readback. Note the domains are measured from
    /// *this* run's input rows, so fused keys are only comparable
    /// across partials that measured identical domains — the sharded
    /// path re-keys them through a shared [`crate::KeyDictionary`]
    /// instead of comparing them raw.
    pub key_domains: Vec<u32>,
    /// The executed distributive steps and their cycle cost.
    pub report: ExecutionReport,
}

/// What the distributive slice of one plan produced on the machine.
struct Distributive {
    base: vagg_core::AggResult,
    mm: Option<(Vec<u32>, Vec<u32>)>,
    rows_aggregated: usize,
    key_domains: Vec<u32>,
    /// The WHERE clause removed every row; no algorithm ran.
    skipped: bool,
}

/// A long-lived query-execution context: one simulated machine serving
/// many plans.
///
/// ```
/// use vagg_db::{AggregateQuery, Engine, Session, Table};
///
/// let t = Table::new("r")
///     .with_column("g", vec![1, 2, 1])
///     .with_column("v", vec![10, 20, 30]);
/// let plan = Engine::new().plan(&t, &AggregateQuery::paper("g", "v"))?;
///
/// let mut session = Session::new();
/// let first = session.run(&plan);
/// let second = session.run(&plan); // same machine, warm caches
/// assert_eq!(first.rows, second.rows);
/// assert_eq!(session.queries_run(), 2);
/// # Ok::<(), vagg_db::PlanError>(())
/// ```
pub struct Session {
    machine: Machine,
    queries: usize,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("queries", &self.queries)
            .field("total_cycles", &self.machine.cycles())
            .finish_non_exhaustive()
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A session on the paper's machine configuration.
    pub fn new() -> Self {
        Self::with_config(SimConfig::paper())
    }

    /// A session on a custom machine configuration.
    pub fn with_config(cfg: SimConfig) -> Self {
        Self {
            machine: Machine::new(cfg),
            queries: 0,
        }
    }

    /// The underlying machine (cumulative across queries).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Plans executed on this session so far.
    pub fn queries_run(&self) -> usize {
        self.queries
    }

    /// Total simulated cycles across every plan this session ran.
    pub fn total_cycles(&self) -> u64 {
        self.machine.cycles()
    }

    /// Executes a plan, returning the rows and a report whose `cycles`
    /// are this query's delta (reuse does not double-charge).
    ///
    /// Execution is infallible: every error condition is typed and
    /// rejected at plan time by [`crate::Engine::plan`].
    pub fn run(&mut self, plan: &QueryPlan) -> QueryOutput {
        self.run_with(plan, None)
    }

    /// Executes a plan exactly like [`Session::run`] while recording a
    /// [`StepTrace`] per executed step (rows in/out and the simulated
    /// cycle delta of each phase).
    ///
    /// Tracing only *reads* the cycle counter and host-side lengths, so
    /// the returned output is bit-identical to the untraced run — the
    /// property `EXPLAIN ANALYZE` relies on.
    pub fn run_traced(&mut self, plan: &QueryPlan) -> (QueryOutput, Vec<StepTrace>) {
        let mut steps = Vec::new();
        let out = self.run_with(plan, Some(&mut steps));
        (out, steps)
    }

    fn run_with(
        &mut self,
        plan: &QueryPlan,
        mut trace: Option<&mut Vec<StepTrace>>,
    ) -> QueryOutput {
        let start_cycles = self.machine.cycles();
        let d = self.run_distributive(plan, 0, plan.rows, trace.as_deref_mut(), None);
        let n = plan.rows;
        if d.skipped {
            let cycles = self.machine.cycles() - start_cycles;
            return QueryOutput {
                rows: Vec::new(),
                report: ExecutionReport {
                    algorithm: None,
                    rows_aggregated: 0,
                    cycles,
                    cpt: cycles as f64 / n as f64,
                    steps: skipped_steps(plan),
                },
            };
        }
        let (mut base, mut mm) = (d.base, d.mm);
        let m = &mut self.machine;

        // HAVING: vectorised selection over the output table, compacting
        // every output column behind the aggregate's mask.
        if let Some(h) = &plan.query.having {
            let (before, c0) = (base.len(), m.cycles());
            (base, mm) = apply_having(m, h, base, mm);
            if let Some(t) = trace.as_deref_mut() {
                if let Some(step) = find_step(plan, |s| matches!(s, PlanStep::VectorHaving { .. }))
                {
                    t.push(StepTrace {
                        step,
                        rows_in: before as u64,
                        rows_out: base.len() as u64,
                        cycles: m.cycles() - c0,
                    });
                }
            }
        }

        // ORDER BY: stable vectorised radix sort of the output rows by
        // the requested key (complement key for DESC), then LIMIT.
        if let Some(ob) = &plan.query.order_by {
            let (before, c0) = (base.len(), m.cycles());
            (base, mm) = apply_order_by(m, ob, base, mm);
            if let Some(t) = trace {
                let cycles = m.cycles() - c0;
                if let Some(step) = find_step(plan, |s| matches!(s, PlanStep::VectorOrderBy { .. }))
                {
                    // The sort permutes without dropping rows; LIMIT
                    // truncates afterwards (and costs no cycles).
                    t.push(StepTrace {
                        step,
                        rows_in: before as u64,
                        rows_out: before as u64,
                        cycles,
                    });
                }
                if let Some(step) = find_step(plan, |s| matches!(s, PlanStep::Limit(_))) {
                    t.push(StepTrace {
                        step,
                        rows_in: before as u64,
                        rows_out: base.len() as u64,
                        cycles: 0,
                    });
                }
            }
        }

        let rows = assemble_rows(
            &plan.query,
            &base,
            mm.as_ref().map(|(a, b)| (&a[..], &b[..])),
            rest_of(&d.key_domains),
        );

        let cycles = m.cycles() - start_cycles;
        QueryOutput {
            rows,
            report: ExecutionReport {
                algorithm: Some(plan.algorithm),
                rows_aggregated: d.rows_aggregated,
                cycles,
                cpt: cycles as f64 / n as f64,
                // Every planned step ran, in plan order.
                steps: plan.steps.clone(),
            },
        }
    }

    /// Executes only the *distributive* slice of a plan — WHERE
    /// selection plus aggregation, skipping any HAVING/ORDER BY/LIMIT
    /// tail — and returns the mergeable [`PartialAggregate`] instead
    /// of assembled rows.
    ///
    /// This is the per-shard entry point: COUNT/SUM/MIN/MAX partials
    /// computed over disjoint row partitions fold into the whole-table
    /// answer with [`PartialAggregate::merge`], and the coordinator
    /// finalises the tail once on the merged result (see
    /// [`crate::ShardedDatabase`]).
    pub fn run_partial(&mut self, plan: &QueryPlan) -> PartialRun {
        self.run_partial_range(plan, 0, plan.rows)
    }

    /// Executes the distributive slice of a plan over the row range
    /// `lo..hi` of its staged columns — one *morsel* of the plan. A
    /// range partial merges with the other ranges' partials exactly
    /// like per-shard partials do, so a shard's work can be split into
    /// stealable units (see [`crate::Executor`]) without changing any
    /// result: `merge(run_partial_range(0..k), run_partial_range(k..n))
    /// == run_partial(plan).partial` for every split point.
    ///
    /// The report's `cycles` cover this range only and `cpt` divides by
    /// the range's rows, so morsel costs add up to the whole-plan cost.
    ///
    /// # Panics
    ///
    /// If `lo..hi` is not a sub-range of `0..plan.rows()`.
    pub fn run_partial_range(&mut self, plan: &QueryPlan, lo: usize, hi: usize) -> PartialRun {
        self.run_partial_range_with(plan, lo, hi, None, None)
    }

    /// [`Session::run_partial_range`] with the composite key domains
    /// *forced* instead of measured — the sharded coordinator's fast
    /// path. The caller supplies the global per-column domains (the
    /// elementwise maximum of every shard plan's statistics, primary
    /// first); fusion multiplies by these fixed radices and skips the
    /// per-column max scans, so every morsel of every shard keys its
    /// partial in one shared fused space and partials merge directly —
    /// no dictionary remap. Forcing the exact whole-input domains
    /// reproduces the keys a single session would measure over the same
    /// rows, so results stay bit-identical (fusion is positional:
    /// `key = ((g₀·d₁ + g₁)·d₂ + g₂)…` for any consistent dᵢ that
    /// bound every value).
    ///
    /// # Panics
    ///
    /// If `lo..hi` escapes the plan, or `domains` does not match the
    /// plan's grouping column count.
    pub fn run_partial_range_forced(
        &mut self,
        plan: &QueryPlan,
        lo: usize,
        hi: usize,
        domains: &[u64],
    ) -> PartialRun {
        self.run_partial_range_with(plan, lo, hi, None, Some(domains))
    }

    /// [`Session::run_partial_range_forced`] with per-step tracing.
    pub fn run_partial_range_forced_traced(
        &mut self,
        plan: &QueryPlan,
        lo: usize,
        hi: usize,
        domains: &[u64],
    ) -> (PartialRun, Vec<StepTrace>) {
        let mut steps = Vec::new();
        let run = self.run_partial_range_with(plan, lo, hi, Some(&mut steps), Some(domains));
        (run, steps)
    }

    /// [`Session::run_partial_range`] with per-step tracing — the morsel
    /// entry point of `EXPLAIN ANALYZE`. Same bit-identity guarantee as
    /// [`Session::run_traced`].
    ///
    /// # Panics
    ///
    /// If `lo..hi` is not a sub-range of `0..plan.rows()`.
    pub fn run_partial_range_traced(
        &mut self,
        plan: &QueryPlan,
        lo: usize,
        hi: usize,
    ) -> (PartialRun, Vec<StepTrace>) {
        let mut steps = Vec::new();
        let run = self.run_partial_range_with(plan, lo, hi, Some(&mut steps), None);
        (run, steps)
    }

    fn run_partial_range_with(
        &mut self,
        plan: &QueryPlan,
        lo: usize,
        hi: usize,
        trace: Option<&mut Vec<StepTrace>>,
        forced: Option<&[u64]>,
    ) -> PartialRun {
        assert!(
            lo <= hi && hi <= plan.rows,
            "morsel {lo}..{hi} escapes the plan's {} rows",
            plan.rows
        );
        let start_cycles = self.machine.cycles();
        let d = self.run_distributive(plan, lo, hi, trace, forced);
        let cycles = self.machine.cycles() - start_cycles;
        let steps = if d.skipped {
            skipped_steps(plan)
        } else {
            distributive_steps(plan)
        };
        PartialRun {
            partial: PartialAggregate::new(d.base, d.mm),
            key_domains: d.key_domains,
            report: ExecutionReport {
                algorithm: (!d.skipped).then_some(plan.algorithm),
                rows_aggregated: d.rows_aggregated,
                cycles,
                cpt: cycles as f64 / (hi - lo).max(1) as f64,
                steps,
            },
        }
    }

    // stage → fuse → filter → metadata scan → aggregate: the slice of
    // execution whose outputs merge across disjoint row partitions
    // (and, within a partition, across disjoint `lo..hi` morsels).
    //
    // With `trace` set, each phase's observed rows and cycle delta are
    // recorded. Recording only reads the cycle counter and host lengths
    // — it issues no machine work — so traced and untraced runs are
    // bit-identical; the per-step cycles sum to the phase-exact total
    // (staging is billed to the filter when one runs, to the
    // cardinality scan otherwise).
    fn run_distributive(
        &mut self,
        plan: &QueryPlan,
        lo: usize,
        hi: usize,
        mut trace: Option<&mut Vec<StepTrace>>,
        forced: Option<&[u64]>,
    ) -> Distributive {
        self.queries += 1;
        // Queries own no machine-resident state between runs (results are
        // read back to the host), so reclaim the simulated address space
        // up front: the bump allocator never frees, and without this a
        // long-lived session would grow host memory by the staged table
        // size on every query. Cycle and cache-model state persist.
        self.machine.space_mut().reset();
        let m = &mut self.machine;
        let n = hi - lo;
        if n == 0 {
            if let Some(t) = trace.as_deref_mut() {
                t.push(StepTrace {
                    step: PlanStep::AggregateSkipped,
                    rows_in: 0,
                    rows_out: 0,
                    cycles: 0,
                });
            }
            return Distributive {
                base: vagg_core::AggResult {
                    groups: Vec::new(),
                    counts: Vec::new(),
                    sums: Vec::new(),
                },
                mm: plan.query.needs_minmax().then(|| (Vec::new(), Vec::new())),
                rows_aggregated: 0,
                key_domains: Vec::new(),
                skipped: true,
            };
        }

        // Composite GROUP BY: fuse the grouping columns into one key per
        // row on the machine; the fused column then flows through the
        // unchanged single-key pipeline. `key_domains[1..]` drives
        // readback decomposition.
        let (g_fused, key_domains): (Option<Vec<u32>>, Vec<u32>) = if plan.rest.is_empty() {
            (None, Vec::new())
        } else {
            let c0 = m.cycles();
            let mut cols: Vec<&[u32]> = vec![&plan.group[lo..hi]];
            for col in &plan.rest {
                cols.push(&col[lo..hi]);
            }
            let (fused, domains) = fuse_group_columns(m, &cols, forced);
            if let Some(t) = trace.as_deref_mut() {
                if let Some(step) = find_step(plan, |s| matches!(s, PlanStep::FuseKeys { .. })) {
                    t.push(StepTrace {
                        step,
                        rows_in: n as u64,
                        rows_out: n as u64,
                        cycles: m.cycles() - c0,
                    });
                }
            }
            (Some(fused), domains)
        };
        let g: &[u32] = g_fused.as_deref().unwrap_or(&plan.group[lo..hi]);
        let v: &[u32] = &plan.value[lo..hi];

        // WHERE: vectorised selection into fresh compacted columns.
        let stage0 = m.cycles();
        let (input, rows_aggregated) = if let Some((_, pred)) = &plan.query.filter {
            let w: &[u32] = &plan
                .filter_col
                .as_deref()
                .expect("plan carries the WHERE column")[lo..hi];
            let ws = m.space_mut().alloc_slice_u32(w);
            let gs = m.space_mut().alloc_slice_u32(g);
            let vs = m.space_mut().alloc_slice_u32(v);
            let gd = m.space_mut().alloc(4 * n as u64, 64);
            let vd = m.space_mut().alloc(4 * n as u64, 64);
            let kept = vector_filter(m, ws, n, *pred, &[(gs, gd), (vs, vd)]);
            if kept == 0 {
                if let Some(t) = trace.as_deref_mut() {
                    if let Some(step) =
                        find_step(plan, |s| matches!(s, PlanStep::VectorFilter { .. }))
                    {
                        t.push(StepTrace {
                            step,
                            rows_in: n as u64,
                            rows_out: 0,
                            cycles: m.cycles() - stage0,
                        });
                    }
                    t.push(StepTrace {
                        step: PlanStep::AggregateSkipped,
                        rows_in: 0,
                        rows_out: 0,
                        cycles: 0,
                    });
                }
                // Nothing survived: no aggregation algorithm runs at
                // all, and the partial is empty (of the right family).
                return Distributive {
                    base: vagg_core::AggResult {
                        groups: Vec::new(),
                        counts: Vec::new(),
                        sums: Vec::new(),
                    },
                    mm: plan.query.needs_minmax().then(|| (Vec::new(), Vec::new())),
                    rows_aggregated: 0,
                    key_domains,
                    skipped: true,
                };
            }
            // Compaction preserves relative order, so a sorted column
            // stays sorted through the filter.
            let staged = StagedInput {
                g: gd,
                v: vd,
                aux_g: m.space_mut().alloc(4 * kept as u64, 64),
                aux_v: m.space_mut().alloc(4 * kept as u64, 64),
                n: kept,
                presorted: plan.presorted,
            };
            if let Some(t) = trace.as_deref_mut() {
                if let Some(step) = find_step(plan, |s| matches!(s, PlanStep::VectorFilter { .. }))
                {
                    t.push(StepTrace {
                        step,
                        rows_in: n as u64,
                        rows_out: kept as u64,
                        cycles: m.cycles() - stage0,
                    });
                }
            }
            (staged, kept)
        } else {
            (StagedInput::stage_raw(m, g, v, plan.presorted), n)
        };
        // Staging is billed to the filter when one ran (nothing on the
        // machine separates them), to the cardinality scan otherwise.
        let scan0 = if plan.query.filter.is_some() {
            m.cycles()
        } else {
            stage0
        };

        // The charged planning scan (§III-A): the session replays the
        // metadata step the paper bills to the query. The algorithm
        // choice itself was fixed at plan time.
        match plan.scan_mode {
            ScanMode::Presorted => {
                let _ = vagg_core::input::presorted_max(m, &input);
            }
            ScanMode::Exact => {
                let _ = vector_max_scan(m, &input);
            }
            ScanMode::Sampled { stride } => {
                let _ = vagg_core::sampling::sampled_max_scan(m, &input, stride);
            }
        }
        let agg0 = m.cycles();
        if let Some(t) = trace.as_deref_mut() {
            if let Some(step) = find_step(plan, |s| matches!(s, PlanStep::CardinalityScan { .. })) {
                t.push(StepTrace {
                    step,
                    rows_in: rows_aggregated as u64,
                    rows_out: rows_aggregated as u64,
                    cycles: agg0 - scan0,
                });
            }
        }

        // Aggregate.
        let (base, mm) = if plan.query.needs_minmax() {
            let r = minmax_aggregate(m, &input);
            (r.base, Some((r.mins, r.maxs)))
        } else {
            let (result, _) = plan.algorithm.execute(m, &input);
            (result, None)
        };
        if let Some(t) = trace {
            if let Some(step) = find_step(plan, |s| {
                matches!(s, PlanStep::Aggregate(_) | PlanStep::MinMaxKernel)
            }) {
                t.push(StepTrace {
                    step,
                    rows_in: rows_aggregated as u64,
                    rows_out: base.len() as u64,
                    cycles: m.cycles() - agg0,
                });
            }
        }

        Distributive {
            base,
            mm,
            rows_aggregated,
            key_domains,
            skipped: false,
        }
    }
}

/// The decomposition domains (`key_domains[1..]`) of a measured domain
/// list; empty for single-column grouping.
pub(crate) fn rest_of(key_domains: &[u32]) -> &[u32] {
    if key_domains.is_empty() {
        &[]
    } else {
        &key_domains[1..]
    }
}

// The planned steps reported when the WHERE clause removed every row:
// the pre-filter steps, then the skip marker.
fn skipped_steps(plan: &QueryPlan) -> Vec<PlanStep> {
    let mut steps: Vec<PlanStep> = plan
        .steps
        .iter()
        .take_while(|s| !matches!(s, PlanStep::CardinalityScan { .. }))
        .cloned()
        .collect();
    steps.push(PlanStep::AggregateSkipped);
    steps
}

// The cloned plan step matching `pred`, for trace records. Planned
// steps are unique per kind, so the first match is the step.
fn find_step(plan: &QueryPlan, pred: impl Fn(&PlanStep) -> bool) -> Option<PlanStep> {
    plan.steps.iter().find(|s| pred(s)).cloned()
}

// The distributive prefix of the planned steps: everything up to and
// including the aggregation kernel.
fn distributive_steps(plan: &QueryPlan) -> Vec<PlanStep> {
    let end = plan
        .steps
        .iter()
        .position(|s| matches!(s, PlanStep::Aggregate(_) | PlanStep::MinMaxKernel))
        .map_or(plan.steps.len(), |i| i + 1);
    plan.steps[..end].to_vec()
}

type Columns = (vagg_core::AggResult, Option<(Vec<u32>, Vec<u32>)>);

// The integral column a HAVING / ORDER BY key refers to. AVG is rejected
// at plan time (`PlanError::UnsupportedAvgPredicate`), so it cannot
// reach execution.
pub(crate) fn agg_column<'a>(
    agg: AggFn,
    base: &'a vagg_core::AggResult,
    mm: &'a Option<(Vec<u32>, Vec<u32>)>,
) -> &'a [u32] {
    match agg {
        AggFn::Count => &base.counts,
        AggFn::Sum => &base.sums,
        AggFn::Min => &mm.as_ref().expect("minmax kernel ran").0,
        AggFn::Max => &mm.as_ref().expect("minmax kernel ran").1,
        AggFn::Avg => unreachable!("AVG predicates are rejected at plan time"),
    }
}

// HAVING: stage the output columns back onto the machine and run the
// same vectorised select/compress kernel the WHERE clause uses, with the
// aggregate column as the predicate source.
fn apply_having(
    m: &mut Machine,
    h: &crate::query::Having,
    base: vagg_core::AggResult,
    mm: Option<(Vec<u32>, Vec<u32>)>,
) -> Columns {
    let n = base.len();
    if n == 0 {
        return (base, mm);
    }
    let pred_col = agg_column(h.agg, &base, &mm).to_vec();

    let stage = |m: &mut Machine, col: &[u32]| {
        let src = m.space_mut().alloc_slice_u32(col);
        let dst = m.space_mut().alloc(4 * col.len() as u64, 64);
        (src, dst)
    };
    let ps = stage(m, &pred_col);
    let gs = stage(m, &base.groups);
    let cs = stage(m, &base.counts);
    let ss = stage(m, &base.sums);
    let mms = mm
        .as_ref()
        .map(|(mins, maxs)| (stage(m, mins), stage(m, maxs)));

    let mut cols = vec![gs, cs, ss];
    if let Some((mins, maxs)) = mms {
        cols.push(mins);
        cols.push(maxs);
    }
    let kept = vector_filter(m, ps.0, n, h.pred, &cols);

    let read = |m: &Machine, (_, dst): (u64, u64)| m.space().read_slice_u32(dst, kept);
    let base = vagg_core::AggResult {
        groups: read(m, cols[0]),
        counts: read(m, cols[1]),
        sums: read(m, cols[2]),
    };
    let mm = (cols.len() == 5).then(|| (read(m, cols[3]), read(m, cols[4])));
    (base, mm)
}

// ORDER BY: a stable vectorised LSD radix sort over (key, row-index)
// pairs; the returned permutation is applied to every output column and
// LIMIT truncates. DESC sorts the complement key so the same ascending
// kernel serves both directions.
fn apply_order_by(
    m: &mut Machine,
    ob: &crate::query::OrderBy,
    base: vagg_core::AggResult,
    mm: Option<(Vec<u32>, Vec<u32>)>,
) -> Columns {
    let n = base.len();
    let keep = ob.limit.unwrap_or(n).min(n);
    let (mut base, mut mm) = (base, mm);
    if n > 1 {
        let mut keys: Vec<u32> = match ob.key {
            OrderKey::Group => base.groups.clone(),
            OrderKey::Agg(a) => agg_column(a, &base, &mm).to_vec(),
        };
        if ob.desc {
            for k in &mut keys {
                *k = u32::MAX - *k;
            }
        }
        let idx: Vec<u32> = (0..n as u32).collect();
        let arrays = vagg_sort::SortArrays::stage(m, &keys, &idx);
        let max_key = keys.iter().copied().max().unwrap_or(0);
        let passes = vagg_sort::radix_sort(m, &arrays, max_key);
        let (_, perm) = arrays.read_result(m, passes);

        let permute = |col: &[u32]| perm.iter().map(|&i| col[i as usize]).collect::<Vec<u32>>();
        base = vagg_core::AggResult {
            groups: permute(&base.groups),
            counts: permute(&base.counts),
            sums: permute(&base.sums),
        };
        mm = mm.map(|(mins, maxs)| (permute(&mins), permute(&maxs)));
    }
    base.groups.truncate(keep);
    base.counts.truncate(keep);
    base.sums.truncate(keep);
    if let Some((mins, maxs)) = &mut mm {
        mins.truncate(keep);
        maxs.truncate(keep);
    }
    (base, mm)
}

// Fuses the grouping columns into one key per row on the machine:
// key = ((g₀·d₁ + g₁)·d₂ + g₂)… where dᵢ is column i's key domain
// (maxᵢ + 1, measured by the vectorised max scan — a planning step
// charged to the query like the §III-A metadata scan). When `forced`
// is supplied the max scans are skipped entirely and the given
// domains are used verbatim — the sharded coordinator's fast path,
// which reuses the exact whole-table domains the planner already
// computed so every shard fuses into the same global key space.
// Returns the fused host column and every column's domain (primary
// first). Domain overflow was already rejected at plan time from the
// same statistics.
fn fuse_group_columns(
    m: &mut Machine,
    cols: &[&[u32]],
    forced: Option<&[u64]>,
) -> (Vec<u32>, Vec<u32>) {
    use vagg_isa::{BinOp, Vreg};
    const VK: Vreg = Vreg(12); // running fused keys
    const VN: Vreg = Vreg(13); // next column's keys

    let n = cols[0].len();
    debug_assert!(cols.iter().all(|c| c.len() == n), "table columns agree");

    // Stage the columns; measure each domain with the machine's
    // vectorised max scan unless plan-time statistics already supply
    // them.
    let mut staged = Vec::with_capacity(cols.len());
    let mut domains: Vec<u64> = Vec::with_capacity(cols.len());
    for (i, col) in cols.iter().enumerate() {
        let addr = m.space_mut().alloc_slice_u32(col);
        staged.push(addr);
        match forced {
            Some(d) => domains.push(d[i]),
            None => {
                let input = StagedInput {
                    g: addr,
                    v: addr,
                    aux_g: addr,
                    aux_v: addr,
                    n,
                    presorted: false,
                };
                let (maxk, _tok) = vector_max_scan(m, &input);
                domains.push(maxk as u64 + 1);
            }
        }
    }
    debug_assert!(
        domains.iter().map(|&d| d as u128).product::<u128>() <= u32::MAX as u128 + 1,
        "overflow rejected at plan time"
    );

    // Fuse chunk by chunk: k = ((c₀·d₁) + c₁)·d₂ + c₂ …
    let fused = m.space_mut().alloc(4 * n as u64, 64);
    let mvl = m.mvl();
    for start in (0..n).step_by(mvl) {
        let vl = (n - start).min(mvl);
        m.set_vl(vl);
        let t = m.s_op(0);
        m.vload_unit(VK, staged[0] + 4 * start as u64, 4, t);
        for (i, &addr) in staged.iter().enumerate().skip(1) {
            m.vbinop_vs(BinOp::Mul, VK, VK, domains[i], None);
            m.vload_unit(VN, addr + 4 * start as u64, 4, t);
            m.vbinop_vv(BinOp::Add, VK, VK, VN, None);
        }
        m.vstore_unit(VK, fused + 4 * start as u64, 4, t);
    }
    let fused_host = m.space().read_slice_u32(fused, n);
    let all = domains.iter().map(|&d| d as u32).collect();
    (fused_host, all)
}

// Splits a fused composite key back into its per-column parts
// (primary part first). `rest_domains` are d₁… in fusion order.
pub(crate) fn decompose_key(key: u32, rest_domains: &[u32]) -> Vec<u32> {
    let mut parts = vec![0u32; rest_domains.len() + 1];
    let mut k = key;
    for (i, &d) in rest_domains.iter().enumerate().rev() {
        parts[i + 1] = k % d;
        k /= d;
    }
    parts[0] = k;
    parts
}

pub(crate) fn assemble_rows(
    query: &AggregateQuery,
    base: &vagg_core::AggResult,
    minmax: Option<(&[u32], &[u32])>,
    rest_domains: &[u32],
) -> Vec<Row> {
    (0..base.len())
        .map(|i| {
            let values = query
                .aggregates
                .iter()
                .map(|agg| match agg {
                    AggFn::Count => base.counts[i] as f64,
                    AggFn::Sum => base.sums[i] as f64,
                    AggFn::Avg => base.sums[i] as f64 / base.counts[i] as f64,
                    AggFn::Min => minmax.expect("minmax kernel ran").0[i] as f64,
                    AggFn::Max => minmax.expect("minmax kernel ran").1[i] as f64,
                })
                .collect();
            Row {
                group: base.groups[i],
                group_parts: decompose_key(base.groups[i], rest_domains),
                values,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::table::Table;

    fn people() -> Table {
        Table::new("r")
            .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
            .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0])
    }

    #[test]
    fn session_reuses_one_machine_across_queries() {
        let t = people();
        let engine = Engine::new();
        let plan = engine.plan(&t, &AggregateQuery::paper("g", "v")).unwrap();

        let mut session = Session::new();
        assert_eq!(session.queries_run(), 0);
        let first = session.run(&plan);
        let after_first = session.total_cycles();
        let second = session.run(&plan);

        assert_eq!(session.queries_run(), 2);
        assert_eq!(first.rows, second.rows);
        // Per-query cycles are deltas on the shared machine: the session
        // total is exactly the sum of the reports.
        assert_eq!(after_first, first.report.cycles);
        assert_eq!(
            session.total_cycles(),
            first.report.cycles + second.report.cycles
        );
        // Both queries were charged real work on the shared machine
        // (cache state carries over, so the deltas need not be equal).
        assert!(second.report.cycles > 0);
    }

    #[test]
    fn session_reuse_does_not_grow_simulated_memory() {
        // The address space is reclaimed per query: a long-lived session
        // must not accumulate host pages run after run.
        let t = people();
        let plan = Engine::new()
            .plan(&t, &AggregateQuery::paper("g", "v"))
            .unwrap();
        let mut session = Session::new();
        session.run(&plan);
        let after_one = session.machine().space().resident_pages();
        for _ in 0..20 {
            session.run(&plan);
        }
        assert_eq!(session.machine().space().resident_pages(), after_one);
    }

    #[test]
    fn session_matches_one_shot_execute() {
        let t = people();
        let q = AggregateQuery::paper("g", "v");
        let engine = Engine::new();
        let via_execute = engine.execute(&t, &q).unwrap();
        let plan = engine.plan(&t, &q).unwrap();
        let via_session = Session::new().run(&plan);
        assert_eq!(via_execute.rows, via_session.rows);
        assert_eq!(via_execute.report.cycles, via_session.report.cycles);
        assert_eq!(via_execute.report.algorithm, via_session.report.algorithm);
    }

    #[test]
    fn one_session_serves_different_plans() {
        let t = people();
        let engine = Engine::new();
        let p1 = engine.plan(&t, &AggregateQuery::paper("g", "v")).unwrap();
        let p2 = engine
            .plan(
                &t,
                &AggregateQuery::paper("g", "v")
                    .with_having(AggFn::Count, crate::filter::Predicate::GreaterThan(1)),
            )
            .unwrap();
        let mut session = Session::new();
        let full = session.run(&p1);
        let having = session.run(&p2);
        assert_eq!(full.rows.len(), 6);
        let groups: Vec<u32> = having.rows.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![0, 3]);
    }

    #[test]
    fn run_partial_stops_before_the_non_distributive_tail() {
        let t = people();
        let q = AggregateQuery::paper("g", "v")
            .with_having(AggFn::Count, crate::filter::Predicate::GreaterThan(1))
            .with_limit(2);
        let plan = Engine::new().plan(&t, &q).unwrap();
        let mut session = Session::new();
        let pr = session.run_partial(&plan);
        // Pre-HAVING: all six groups are present in the partial.
        assert_eq!(pr.partial.len(), 6);
        assert!(pr.key_domains.is_empty());
        assert!(matches!(
            pr.report.steps.last(),
            Some(PlanStep::Aggregate(_))
        ));
        assert!(!pr
            .report
            .steps
            .iter()
            .any(|s| matches!(s, PlanStep::VectorHaving { .. } | PlanStep::Limit(_))));
        assert!(pr.report.cycles > 0);
        assert_eq!(session.queries_run(), 1);
    }

    #[test]
    fn partials_over_a_split_table_merge_to_the_whole_answer() {
        let g = [1u32, 3, 3, 0, 0, 5, 2, 4];
        let v = [0u32, 5, 2, 4, 1, 3, 3, 0];
        let engine = Engine::new();
        let q = AggregateQuery::paper("g", "v");

        let whole = Session::new().run(
            &engine
                .plan(
                    &Table::new("r")
                        .with_column("g", g.to_vec())
                        .with_column("v", v.to_vec()),
                    &q,
                )
                .unwrap(),
        );

        let half = |lo: usize, hi: usize| {
            let t = Table::new("r")
                .with_column("g", g[lo..hi].to_vec())
                .with_column("v", v[lo..hi].to_vec());
            Session::new()
                .run_partial(&engine.plan(&t, &q).unwrap())
                .partial
        };
        let merged = half(0, 4).merge(half(4, 8));
        assert_eq!(merged.len(), whole.rows.len());
        for (i, row) in whole.rows.iter().enumerate() {
            assert_eq!(merged.base.groups[i], row.group);
            assert_eq!(merged.base.counts[i] as f64, row.values[0]);
            assert_eq!(merged.base.sums[i] as f64, row.values[1]);
        }
    }

    #[test]
    fn range_partials_merge_to_the_whole_answer() {
        // Morsels of one plan ≡ the whole partial, at every split.
        let t = people();
        let q = AggregateQuery::paper("g", "v")
            .with_filter("v", crate::filter::Predicate::GreaterThan(0));
        let plan = Engine::new().plan(&t, &q).unwrap();
        let mut session = Session::new();
        let whole = session.run_partial(&plan);
        for split in 0..=plan.rows() {
            let left = session.run_partial_range(&plan, 0, split);
            let right = session.run_partial_range(&plan, split, plan.rows());
            assert_eq!(
                left.partial.merge(right.partial),
                whole.partial,
                "split at {split}"
            );
        }
        // Range reports charge the range, not the whole plan.
        let half = session.run_partial_range(&plan, 0, 4);
        assert!(half.report.cycles > 0);
        assert!((half.report.cpt - half.report.cycles as f64 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn composite_range_partials_measure_local_domains() {
        // A composite plan's morsels each measure their own domains;
        // the fused keys decompose back to the same tuples.
        let t = Table::new("r")
            .with_column("a", vec![1, 0, 1, 0, 2, 2])
            .with_column("b", vec![9, 1, 9, 3, 0, 0])
            .with_column("v", vec![1, 2, 3, 4, 5, 6]);
        let q = AggregateQuery::paper("a", "v").with_group_by_also("b");
        let plan = Engine::new().plan(&t, &q).unwrap();
        let mut session = Session::new();
        let lo_half = session.run_partial_range(&plan, 0, 3);
        let hi_half = session.run_partial_range(&plan, 3, 6);
        // First half sees b ∈ {9, 1} (domain 10), second b ∈ {3, 0}
        // (domain 4): locally consistent, globally incomparable.
        assert_eq!(lo_half.key_domains, vec![2, 10]);
        assert_eq!(hi_half.key_domains, vec![3, 4]);
        let tuples = |pr: &PartialRun| -> Vec<Vec<u32>> {
            pr.partial
                .base
                .groups
                .iter()
                .map(|&k| decompose_key(k, &pr.key_domains[1..]))
                .collect()
        };
        assert_eq!(tuples(&lo_half), vec![vec![0, 1], vec![1, 9]]);
        assert_eq!(tuples(&hi_half), vec![vec![0, 3], vec![2, 0]]);
    }

    #[test]
    #[should_panic(expected = "escapes the plan")]
    fn out_of_range_morsels_are_rejected() {
        let plan = Engine::new()
            .plan(&people(), &AggregateQuery::paper("g", "v"))
            .unwrap();
        let _ = Session::new().run_partial_range(&plan, 4, 9);
    }

    #[test]
    fn decompose_key_roundtrips() {
        let rest = [7u32, 13];
        for g0 in 0..4u32 {
            for g1 in 0..7 {
                for g2 in 0..13 {
                    let key = (g0 * 7 + g1) * 13 + g2;
                    assert_eq!(decompose_key(key, &rest), vec![g0, g1, g2]);
                }
            }
        }
        assert_eq!(decompose_key(42, &[]), vec![42]);
    }
}
