//! The shared catalogue: one table registry + plan cache serving many
//! concurrent sessions.
//!
//! A [`SharedCatalogue`] is an `Arc`-backed handle over a read-mostly
//! table registry (behind an `RwLock`), the planning [`crate::Engine`],
//! and one shared [`PlanCache`]. Cloning the handle is cheap; every
//! clone sees the same tables and the same cache, so a plan computed by
//! one session is a cache hit for every other session — the
//! serving-layer shape of a real column-store, where connections share
//! the catalogue and plan cache but own their execution context.
//!
//! [`SharedCatalogue::connect`] mints a new [`crate::Database`] (a
//! session + this catalogue handle); sessions on different threads run
//! concurrently because execution state lives entirely in the
//! per-session [`crate::Session`] machine.
//!
//! ```
//! use vagg_db::{SharedCatalogue, Table};
//!
//! let catalogue = SharedCatalogue::new();
//! catalogue.register(
//!     Table::new("r")
//!         .with_column("g", vec![1, 2, 1])
//!         .with_column("v", vec![10, 20, 30]),
//! );
//! let mut alice = catalogue.connect();
//! let mut bob = catalogue.connect();
//! let sql = "SELECT g, SUM(v) FROM r GROUP BY g";
//! let a = alice.execute_sql(sql)?;
//! let b = bob.execute_sql(sql)?; // plan served from the shared cache
//! assert_eq!(a.rows, b.rows);
//! assert_eq!(catalogue.cache_stats().hits, 1);
//! # Ok::<(), vagg_db::SqlError>(())
//! ```

use crate::cache::{CacheStats, Lookup, PlanCache, QueryShape};
use crate::database::{Database, SqlError};
use crate::delta::{materialise, DeltaCut, DeltaStore, TableStats};
use crate::engine::Engine;
use crate::filter::Predicate;
use crate::ingest::{CompactionPolicy, IngestReceipt, RowBatch};
use crate::metrics::MetricsRegistry;
use crate::plan::PlanError;
use crate::plan::{QueryPlan, ScanMode};
use crate::query::AggregateQuery;
use crate::snapshot::{PinRegistry, Snapshot, SnapshotStats, TableCut};
use crate::table::Table;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};
use vagg_core::{select_algorithm, AdaptiveMode, PlannerInputs};

/// One registered table: the immutable base, the append-only delta
/// layered on top, live statistics, and two version counters.
///
/// * The **schema version** bumps on (re-)registration and is part of
///   every plan-cache key, so replacing a table makes all of its cached
///   plans unreachable *and* purges them.
/// * The **data version** bumps on every appended batch. Cached plans
///   are tagged with it; a stale-data plan is rebased onto the new
///   columns when the drifted statistics leave its §V-D choice standing
///   and invalidated (re-planned) when they do not.
struct Registered {
    schema_version: u64,
    data_version: u64,
    base: Table,
    delta: DeltaStore,
    stats: TableStats,
    /// The merged base++delta read view at `data_version`, materialised
    /// lazily (`None` = dirty). Appends are O(batch); the first read
    /// after an append pays the merge once.
    view: Option<Table>,
    /// Data version → the delta cut that was live at that version,
    /// for `AS OF data_version N` time travel. Entries only stay
    /// reconstructible while the delta generation stands, so the index
    /// is cleared at compaction and re-registration.
    version_index: BTreeMap<u64, DeltaCut>,
}

impl Registered {
    fn materialise(&mut self) -> &Table {
        if self.view.is_none() {
            self.view = Some(if self.delta.load() == 0 {
                self.base.clone()
            } else {
                materialise(&self.base, &self.delta, self.delta.cut())
            });
        }
        self.view.as_ref().expect("just materialised")
    }

    /// The logical table content (merging any pending delta).
    fn into_table(mut self) -> Table {
        self.materialise();
        self.view.expect("just materialised")
    }
}

/// A borrowed consistent read of one table — the input every plan is
/// made from, whether it comes from a snapshot-of-now cut or a pinned
/// long-lived [`Snapshot`].
struct ViewRef<'a> {
    schema_version: u64,
    data_version: u64,
    table: &'a Table,
    stats: &'a TableStats,
}

/// One resolved write inside a transaction (or an autocommit
/// DELETE/UPDATE): the unit [`SharedCatalogue::apply_ops`] installs
/// atomically and the WAL logs per record. Row ids are *physical*
/// positions into base ++ delta — resolved before logging, so replay
/// is deterministic.
#[derive(Debug, Clone)]
pub(crate) enum CatOp {
    /// Append a validated batch (the transactional INSERT).
    Append {
        /// Target table.
        table: String,
        /// The rows.
        batch: RowBatch,
    },
    /// Tombstone the given physical rows.
    Delete {
        /// Target table.
        table: String,
        /// Physical row ids to tombstone.
        rows: Vec<u32>,
    },
    /// Overwrite `sets` columns of the given physical rows.
    Update {
        /// Target table.
        table: String,
        /// Physical row ids to overwrite.
        rows: Vec<u32>,
        /// `(column, new value)` assignments applied to every row.
        sets: Vec<(String, u32)>,
    },
}

impl CatOp {
    /// The table this op writes.
    pub(crate) fn table(&self) -> &str {
        match self {
            CatOp::Append { table, .. }
            | CatOp::Delete { table, .. }
            | CatOp::Update { table, .. } => table,
        }
    }

    /// Whether the op changes nothing (empty batch / no matched rows).
    fn is_empty(&self) -> bool {
        match self {
            CatOp::Append { batch, .. } => batch.rows() == 0,
            CatOp::Delete { rows, .. } => rows.is_empty(),
            CatOp::Update { rows, sets, .. } => rows.is_empty() || sets.is_empty(),
        }
    }
}

/// One named (`CREATE SNAPSHOT`) version: per table the data version
/// and the fully materialised content at creation time. Frozen tables
/// survive unpin, compaction and re-registration — they share no state
/// with the live registry.
pub(crate) type NamedTables = BTreeMap<String, (u64, Table)>;

struct Inner {
    tables: RwLock<BTreeMap<String, Registered>>,
    cache: Mutex<PlanCache>,
    policy: RwLock<CompactionPolicy>,
    pins: Mutex<PinRegistry>,
    named: RwLock<BTreeMap<String, NamedTables>>,
    engine: Engine,
    /// The unified counter sink every session, ingest and recovery
    /// path of this catalogue reports to (see [`crate::metrics`]).
    metrics: MetricsRegistry,
}

/// An opaque hold on one catalogue's registry read lock (see
/// [`SharedCatalogue::registry_read`]): while any of these is alive,
/// no append, compaction install or re-registration can touch the
/// catalogue's tables — through *any* handle.
pub(crate) struct RegistryReadGuard<'a>(
    std::sync::RwLockReadGuard<'a, BTreeMap<String, Registered>>,
);

/// A cheaply clonable handle to one shared table registry, planner and
/// plan cache. See the [module docs](self).
#[derive(Clone)]
pub struct SharedCatalogue {
    inner: Arc<Inner>,
}

/// A non-owning catalogue identity (see [`SharedCatalogue::id`]): the
/// `Weak` makes the comparison ABA-safe — a dropped catalogue can
/// never be confused with a new one reusing its address — without
/// pinning the catalogue's memory.
#[derive(Debug, Clone)]
pub(crate) struct CatalogueId(std::sync::Weak<Inner>);

impl CatalogueId {
    /// Whether this token identifies `catalogue`.
    pub(crate) fn matches(&self, catalogue: &SharedCatalogue) -> bool {
        self.0
            .upgrade()
            .is_some_and(|inner| Arc::ptr_eq(&inner, &catalogue.inner))
    }
}

impl fmt::Debug for SharedCatalogue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCatalogue")
            .field("tables", &self.table_names())
            .field("cache", &*self.inner.cache.lock().expect("cache lock"))
            .finish_non_exhaustive()
    }
}

impl Default for SharedCatalogue {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedCatalogue {
    /// An empty catalogue planning for the paper's machine
    /// configuration, with the default plan-cache capacity.
    pub fn new() -> Self {
        Self::with_engine(Engine::new())
    }

    /// An empty catalogue with a custom planning engine.
    pub fn with_engine(engine: Engine) -> Self {
        Self::with_engine_and_cache(engine, PlanCache::default())
    }

    /// An empty catalogue with a custom engine and plan cache (e.g. a
    /// different capacity).
    pub fn with_engine_and_cache(engine: Engine, cache: PlanCache) -> Self {
        Self {
            inner: Arc::new(Inner {
                tables: RwLock::new(BTreeMap::new()),
                cache: Mutex::new(cache),
                policy: RwLock::new(CompactionPolicy::default()),
                pins: Mutex::new(PinRegistry::default()),
                named: RwLock::new(BTreeMap::new()),
                engine,
                metrics: MetricsRegistry::new(),
            }),
        }
    }

    /// Sets the write path's delta-compaction policy (shared by every
    /// session of this catalogue).
    pub fn set_compaction_policy(&self, policy: CompactionPolicy) {
        *self.inner.policy.write().expect("policy lock") = policy;
    }

    /// The current delta-compaction policy.
    pub fn compaction_policy(&self) -> CompactionPolicy {
        *self.inner.policy.read().expect("policy lock")
    }

    /// The planning engine every session of this catalogue shares.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The catalogue-owned [`MetricsRegistry`] — the sink the engine's
    /// counters report to. [`crate::Database::metrics`] folds its
    /// snapshot with the point-in-time subsystem stats.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Whether two handles point at the *same* catalogue (same tables,
    /// same plan cache) — distinct catalogues can register tables under
    /// the same names with independent version counters, so name +
    /// version alone does not identify a table snapshot.
    pub fn is_same(&self, other: &SharedCatalogue) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// A weak identity token for this catalogue — lets a
    /// [`crate::PreparedStatement`] detect that it is executing
    /// against a different catalogue without keeping this one (its
    /// tables, its plan cache) alive.
    pub(crate) fn id(&self) -> CatalogueId {
        CatalogueId(Arc::downgrade(&self.inner))
    }

    /// Opens a new session over this catalogue: a [`Database`] handle
    /// owning its own execution machine but sharing tables and the
    /// plan cache with every other session.
    pub fn connect(&self) -> Database {
        Database::over(self.clone())
    }

    /// Registers a table under its own name, replacing any previous
    /// table with that name (the replaced table's logical content —
    /// base plus any un-compacted delta — is returned). The table's
    /// schema version is bumped and every cached plan for it is purged,
    /// so later queries re-plan against the new statistics instead of
    /// serving a stale snapshot. The new table starts with an empty
    /// delta and statistics seeded from its columns.
    pub fn register(&self, table: Table) -> Option<Table> {
        self.register_as(table, None)
    }

    /// [`SharedCatalogue::register`] with the version counters forced —
    /// how WAL replay reinstalls a checkpoint image (the record carries
    /// the exact versions the table had when the image was cut).
    pub(crate) fn register_at(
        &self,
        table: Table,
        schema_version: u64,
        data_version: u64,
    ) -> Option<Table> {
        self.register_as(table, Some((schema_version, data_version)))
    }

    fn register_as(&self, table: Table, versions: Option<(u64, u64)>) -> Option<Table> {
        let name = table.name().to_string();
        let delta = DeltaStore::for_table(&table);
        let stats = TableStats::seed(&table);
        let mut tables = self.inner.tables.write().expect("catalogue lock");
        let (schema_version, data_version) =
            versions.unwrap_or_else(|| (tables.get(&name).map_or(1, |r| r.schema_version + 1), 1));
        let old = tables.insert(
            name.clone(),
            Registered {
                schema_version,
                data_version,
                base: table,
                delta,
                stats,
                view: None,
                version_index: BTreeMap::from([(data_version, DeltaCut::default())]),
            },
        );
        // A live snapshot may still read the replaced table's delta
        // prefix: retire the delta to the pin registry's side store
        // (deferred GC) before the old entry is consumed. The old base
        // needs nothing — the snapshot's own `Arc` handles keep it
        // alive.
        if let Some(old) = &old {
            let key = (name.clone(), old.schema_version, old.delta.epoch());
            let mut pins = self.inner.pins.lock().expect("pin registry lock");
            if pins.needs_delta(&key) {
                pins.retire(key, old.delta.clone());
            }
        }
        drop(tables);
        if old.is_some() {
            self.inner
                .cache
                .lock()
                .expect("cache lock")
                .invalidate_table(&name);
        }
        old.map(Registered::into_table)
    }

    /// Appends a batch of rows to a registered table — the write path.
    ///
    /// The batch is validated against the table's column set, parked in
    /// the table's [`DeltaStore`] (O(batch) — no base column is
    /// touched), folded into the live [`TableStats`], and the table's
    /// *data* version is bumped (the schema version is not). When the
    /// [`CompactionPolicy`] threshold trips, the delta is merged into a
    /// new base and the statistics are re-seeded from the merged
    /// columns; the merge itself runs outside the registry lock, and a
    /// concurrent append that lands mid-merge supersedes it (the
    /// receipt then reports `compacted: false` and the next append
    /// re-evaluates the threshold over the larger delta).
    ///
    /// Cached plans are reconciled lazily at the next lookup: entries
    /// whose §V-D algorithm choice survives the drifted statistics are
    /// rebased onto the new columns, stats-sensitive entries are
    /// invalidated and re-planned (see [`SharedCatalogue::plan_query`]).
    ///
    /// # Errors
    ///
    /// [`SqlError::UnknownTable`] for unregistered tables and
    /// [`SqlError::Ingest`] (typed [`crate::IngestError`]) for batches
    /// that do not fit the schema.
    pub fn append(&self, table: &str, batch: RowBatch) -> Result<IngestReceipt, SqlError> {
        // Phase 1 (write lock, O(batch)): validate, park the rows in
        // the delta, fold the statistics, bump the data version.
        let (mut receipt, compact) = {
            let mut tables = self.inner.tables.write().expect("catalogue lock");
            let r = tables
                .get_mut(table)
                .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
            batch
                .validate(&r.base.column_names())
                .map_err(SqlError::Ingest)?;
            if batch.rows() == 0 {
                return Ok(IngestReceipt {
                    rows: 0,
                    delta_rows: r.delta.rows(),
                    compacted: false,
                    data_version: r.data_version,
                });
            }
            r.delta.append(&batch);
            r.stats.observe(&batch);
            r.data_version += 1;
            r.view = None;
            r.version_index.insert(r.data_version, r.delta.cut());
            let policy = *self.inner.policy.read().expect("policy lock");
            let receipt = IngestReceipt {
                rows: batch.rows(),
                delta_rows: r.delta.rows(),
                compacted: false,
                data_version: r.data_version,
            };
            // The snapshot for an off-lock merge: the base clone is
            // `Arc`-cheap; the delta clone is one memcpy of the delta
            // rows — an order less work than the merge + stats re-seed
            // it keeps out of this critical section, and bounded by
            // the compaction threshold itself.
            let compact = policy
                .should_compact(r.base.rows(), r.delta.load())
                .then(|| (r.schema_version, r.base.clone(), r.delta.clone()));
            (receipt, compact)
        };
        if let Some((schema_version, base, delta)) = compact {
            receipt.compacted =
                self.compact_off_lock(table, schema_version, receipt.data_version, base, delta);
            if receipt.compacted {
                receipt.delta_rows = 0;
            }
        }
        self.inner.metrics.record_ingest(receipt.rows as u64);
        Ok(receipt)
    }

    /// Compacts `table` now if the policy threshold trips over the
    /// delta's total load (rows + tombstones + overwrites) — the
    /// re-check the mutation paths (DELETE/UPDATE, transaction commits)
    /// run after applying, mirroring the append path's inline trigger.
    /// Returns whether a compaction was installed.
    pub(crate) fn maybe_compact(&self, table: &str) -> bool {
        let staged = {
            let tables = self.inner.tables.read().expect("catalogue lock");
            let Some(r) = tables.get(table) else {
                return false;
            };
            let policy = *self.inner.policy.read().expect("policy lock");
            if !policy.should_compact(r.base.rows(), r.delta.load()) {
                return false;
            }
            (
                r.schema_version,
                r.data_version,
                r.base.clone(),
                r.delta.clone(),
            )
        };
        let (schema_version, data_version, base, delta) = staged;
        self.compact_off_lock(table, schema_version, data_version, base, delta)
    }

    /// Phases 2–3 of a compaction. Phase 2 (no lock): the O(rows) merge
    /// — which physically drops tombstoned rows and folds overwrites in
    /// — and the statistics re-seed run without blocking other sessions
    /// or tables. Phase 3 (write lock): install only if the table has
    /// not moved on — a concurrent write bumped the data version and
    /// will trip (a bigger) compaction itself.
    fn compact_off_lock(
        &self,
        table: &str,
        schema_version: u64,
        data_version: u64,
        base: Table,
        delta: DeltaStore,
    ) -> bool {
        let merged = materialise(&base, &delta, delta.cut());
        let stats = TableStats::seed(&merged);
        let mut tables = self.inner.tables.write().expect("catalogue lock");
        let Some(r) = tables.get_mut(table) else {
            return false;
        };
        if r.schema_version != schema_version || r.data_version != data_version {
            return false;
        }
        r.stats = stats;
        r.base = merged.clone(); // `Arc` columns: base and view share
        r.view = Some(merged);
        // Versions older than the compaction lose their delta
        // generation, so their cuts stop being reconstructible: the
        // time-travel index restarts at the surviving version.
        r.version_index = BTreeMap::from([(r.data_version, DeltaCut::default())]);
        // Base retirement defers to live snapshots: if a pinned
        // prefix still reads this delta generation, the logs move to
        // the pin registry's side store (deferred GC, reclaimed when
        // the last pin drops) instead of being freed; either way the
        // live delta opens its next epoch empty. Compaction itself is
        // never delayed by readers.
        let key = (table.to_string(), r.schema_version, r.delta.epoch());
        let mut pins = self.inner.pins.lock().expect("pin registry lock");
        if pins.needs_delta(&key) {
            let old = r.delta.retire();
            pins.retire(key, old);
        } else {
            r.delta.clear();
        }
        self.inner.metrics.record_compaction();
        true
    }

    /// Looks up a registered table's current content: the base merged
    /// with any pending delta (a cheap clone once materialised — column
    /// data is `Arc`-shared). Like every read, this is a
    /// snapshot-of-now under the hood.
    pub fn table(&self, name: &str) -> Option<Table> {
        self.snapshot_of(name).ok()?.table(name)
    }

    /// Captures an immutable, consistent point-in-time cut of **every**
    /// registered table under one registry read-lock: per table the
    /// data version, the `Arc`-shared base, the delta prefix and the
    /// live statistics. Reads and plans at the snapshot
    /// ([`crate::Database::run_sql_at`], [`SharedCatalogue::plan_query_at`],
    /// [`crate::PreparedStatement::execute_at`]) keep answering from
    /// exactly this cut while appends, compactions and
    /// re-registrations proceed — the write path never blocks on
    /// readers, and dropping the snapshot releases its pins (see
    /// [`crate::snapshot`]).
    pub fn snapshot(&self) -> Snapshot {
        self.capture(None)
            .expect("a full-catalogue cut cannot name a missing table")
    }

    /// A single-table cut — what the snapshot-of-now read path behind
    /// [`SharedCatalogue::plan_query`] captures per statement.
    pub(crate) fn snapshot_of(&self, table: &str) -> Result<Snapshot, SqlError> {
        self.capture(Some(table))
    }

    /// Acquires this catalogue's registry read lock as an opaque
    /// guard, so a multi-catalogue caller (the sharded coordinator)
    /// can hold every shard's lock at once and cut them as one atomic
    /// moment — see [`crate::ShardedDatabase::snapshot`].
    pub(crate) fn registry_read(&self) -> RegistryReadGuard<'_> {
        RegistryReadGuard(self.inner.tables.read().expect("catalogue lock"))
    }

    /// [`SharedCatalogue::snapshot`] under an already-held registry
    /// guard — which must be *this* catalogue's own, from
    /// [`SharedCatalogue::registry_read`].
    pub(crate) fn capture_under(&self, guard: &RegistryReadGuard<'_>) -> Snapshot {
        self.capture_held(guard, None)
            .expect("a full-catalogue cut cannot name a missing table")
    }

    fn capture(&self, only: Option<&str>) -> Result<Snapshot, SqlError> {
        let guard = self.registry_read();
        self.capture_held(&guard, only)
    }

    fn capture_held(
        &self,
        guard: &RegistryReadGuard<'_>,
        only: Option<&str>,
    ) -> Result<Snapshot, SqlError> {
        let cut_of = |r: &Registered| TableCut {
            schema_version: r.schema_version,
            data_version: r.data_version,
            epoch: r.delta.epoch(),
            base: r.base.clone(),
            delta_cut: r.delta.cut(),
            stats: r.stats.clone(),
            clean_view: r.view.clone(),
        };
        let tables = &*guard.0;
        let mut cuts = BTreeMap::new();
        match only {
            Some(name) => {
                let r = tables
                    .get(name)
                    .ok_or_else(|| SqlError::UnknownTable(name.to_string()))?;
                cuts.insert(name.to_string(), cut_of(r));
            }
            None => {
                for (name, r) in tables.iter() {
                    cuts.insert(name.clone(), cut_of(r));
                }
            }
        }
        // Pins register while the read lock is still held, so no
        // append, compaction or re-registration can slip between the
        // cut and its pins.
        self.inner
            .pins
            .lock()
            .expect("pin registry lock")
            .register(&cuts);
        Ok(Snapshot::over(self.clone(), cuts))
    }

    /// Releases one dropped snapshot's pins (called by
    /// [`Snapshot`]'s `Drop`), reclaiming retired deltas whose last
    /// pin just went away.
    pub(crate) fn release_snapshot(&self, cuts: &BTreeMap<String, TableCut>) {
        self.inner
            .pins
            .lock()
            .expect("pin registry lock")
            .release(cuts);
    }

    /// The snapshot subsystem's observability counters: live pins, the
    /// oldest pinned data version, deferred and reclaimed GCs.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.inner.pins.lock().expect("pin registry lock").stats()
    }

    /// Rebuilds a pinned cut's merged view: base ++ delta-prefix from
    /// the live delta when the generation still stands, or from the
    /// retired side store after a compaction/re-registration moved the
    /// table on.
    pub(crate) fn materialise_cut(&self, name: &str, cut: &TableCut) -> Table {
        // Under the locks, copy only the pinned delta prefix (bounded
        // by the compaction threshold); the O(base) concatenation runs
        // *outside* any lock — holding the registry lock for it would
        // serialize every writer, and holding the pin mutex would
        // serialize every other read's snapshot capture, on one
        // reader's merge.
        let prefix = {
            let tables = self.inner.tables.read().expect("catalogue lock");
            match tables.get(name) {
                Some(r)
                    if r.schema_version == cut.schema_version && r.delta.epoch() == cut.epoch =>
                {
                    // The live delta still carries the pinned
                    // generation (writers are excluded while we copy,
                    // so the prefix cannot tear).
                    Some(r.delta.clone_prefix(cut.delta_cut))
                }
                _ => None,
            }
        };
        let prefix = prefix.unwrap_or_else(|| {
            // The delta moved on: the pinned generation lives in the
            // retired side store until this snapshot's pin drops.
            let pins = self.inner.pins.lock().expect("pin registry lock");
            let key = (name.to_string(), cut.schema_version, cut.epoch);
            pins.retired(&key)
                .expect("pinned delta generations are retained until released")
                .clone_prefix(cut.delta_cut)
        });
        let view = materialise(&cut.base, &prefix, cut.delta_cut);
        // A snapshot-of-now materialisation doubles as the registry's
        // lazy view cache: install it so the next reader's cut comes
        // back clean — unless the table has already moved on.
        let mut tables = self.inner.tables.write().expect("catalogue lock");
        if let Some(r) = tables.get_mut(name) {
            if r.schema_version == cut.schema_version
                && r.data_version == cut.data_version
                && r.view.is_none()
            {
                r.view = Some(view.clone());
            }
        }
        view
    }

    /// Resolves a DELETE/UPDATE predicate to the **physical** row ids
    /// (positions into base ++ delta) of the *visible* matching rows:
    /// tombstoned rows never match again, overwritten values are what
    /// the predicate sees. `None` matches every visible row. The ids
    /// are what the WAL logs — replay re-applies them verbatim, so the
    /// resolution is done exactly once, before logging.
    pub(crate) fn resolve_physical(
        &self,
        table: &str,
        filter: Option<&(String, Predicate)>,
    ) -> Result<Vec<u32>, SqlError> {
        let tables = self.inner.tables.read().expect("catalogue lock");
        let r = tables
            .get(table)
            .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
        let total = r.base.rows() + r.delta.rows();
        let mut keep = vec![true; total];
        for &row in r.delta.tombstone_prefix(r.delta.tombstone_count()) {
            keep[row as usize] = false;
        }
        let values = match filter {
            Some((column, _)) => {
                let base_col = r
                    .base
                    .column(column)
                    .ok_or_else(|| SqlError::Plan(PlanError::UnknownColumn(column.clone())))?;
                let mut values = Vec::with_capacity(total);
                values.extend_from_slice(base_col);
                values.extend_from_slice(r.delta.column(column));
                for ow in r.delta.overwrite_prefix(r.delta.overwrite_count()) {
                    if ow.column == *column {
                        values[ow.row as usize] = ow.value;
                    }
                }
                Some(values)
            }
            None => None,
        };
        Ok((0..total as u32)
            .filter(|&i| keep[i as usize])
            .filter(|&i| match (&values, filter) {
                (Some(values), Some((_, pred))) => pred.matches(values[i as usize]),
                _ => true,
            })
            .collect())
    }

    /// Applies a batch of resolved write ops under **one** registry
    /// write lock — the all-or-nothing install behind transaction
    /// commits and autocommit DELETE/UPDATE. Everything is validated
    /// before anything is applied; readers see either none of the ops
    /// or all of them (the next snapshot cut lands after the lock
    /// drops). Each non-empty op bumps its table's data version by one,
    /// exactly as the autocommit paths do, so WAL replay through this
    /// same funnel reconstructs identical version counters.
    ///
    /// Returns each touched table's final data version. Compaction is
    /// *not* evaluated here — callers run
    /// [`SharedCatalogue::maybe_compact`] per table afterwards, off
    /// this lock.
    pub(crate) fn apply_ops(&self, ops: &[CatOp]) -> Result<BTreeMap<String, u64>, SqlError> {
        let mut tables = self.inner.tables.write().expect("catalogue lock");
        for op in ops {
            let r = tables
                .get(op.table())
                .ok_or_else(|| SqlError::UnknownTable(op.table().to_string()))?;
            match op {
                CatOp::Append { batch, .. } => batch
                    .validate(&r.base.column_names())
                    .map_err(SqlError::Ingest)?,
                CatOp::Delete { .. } => {}
                CatOp::Update { sets, .. } => {
                    for (column, _) in sets {
                        if r.base.column(column).is_none() {
                            return Err(SqlError::Plan(PlanError::UnknownColumn(column.clone())));
                        }
                    }
                }
            }
        }
        // `true` = the table needs a stats re-seed (deletes/updates
        // change existing rows, which the incremental observe path
        // cannot express).
        let mut touched: BTreeMap<String, bool> = BTreeMap::new();
        for op in ops {
            if op.is_empty() {
                continue;
            }
            let r = tables.get_mut(op.table()).expect("validated above");
            match op {
                CatOp::Append { batch, .. } => {
                    r.delta.append(batch);
                    r.stats.observe(batch);
                }
                CatOp::Delete { rows, .. } => {
                    r.delta.tombstone_rows(rows);
                    touched.insert(op.table().to_string(), true);
                }
                CatOp::Update { rows, sets, .. } => {
                    for &row in rows {
                        for (column, value) in sets {
                            r.delta.overwrite(column, row, *value);
                        }
                    }
                    touched.insert(op.table().to_string(), true);
                }
            }
            r.data_version += 1;
            r.view = None;
            r.version_index.insert(r.data_version, r.delta.cut());
            touched.entry(op.table().to_string()).or_insert(false);
        }
        let mut versions = BTreeMap::new();
        for (name, reseed) in touched {
            let r = tables.get_mut(&name).expect("touched tables exist");
            if reseed {
                r.materialise();
                r.stats = TableStats::seed(r.view.as_ref().expect("just materialised"));
            }
            versions.insert(name, r.data_version);
        }
        Ok(versions)
    }

    /// The table's content as of an earlier data version — `AS OF
    /// data_version N` time travel over the version index. Versions
    /// whose delta generation a compaction (or re-registration) has
    /// since folded away are reported as
    /// [`SqlError::VersionUnavailable`]; `CREATE SNAPSHOT` is the way
    /// to make a version durable across compaction.
    pub(crate) fn table_at_version(&self, name: &str, version: u64) -> Result<Table, SqlError> {
        let (base, prefix, cut) = {
            let tables = self.inner.tables.read().expect("catalogue lock");
            let r = tables
                .get(name)
                .ok_or_else(|| SqlError::UnknownTable(name.to_string()))?;
            let cut = r.version_index.get(&version).copied().ok_or_else(|| {
                SqlError::VersionUnavailable {
                    table: name.to_string(),
                    version,
                }
            })?;
            // The clones own their data, so the O(base) merge runs
            // off-lock; no pin is needed.
            (r.base.clone(), r.delta.clone_prefix(cut), cut)
        };
        Ok(materialise(&base, &prefix, cut))
    }

    /// Creates a named version (`CREATE SNAPSHOT name`): one consistent
    /// cut of every table, fully materialised and frozen under the
    /// name. Unlike a pinned [`Snapshot`], a named version survives
    /// drop, compaction, re-registration — and, WAL-logged, restart.
    pub(crate) fn create_named(&self, name: &str) -> Result<(), SqlError> {
        let snap = self.snapshot();
        let mut frozen = NamedTables::new();
        for table in snap.table_names() {
            let view = snap.table(&table).expect("cut exists for listed table");
            let version = snap.data_version(&table).expect("cut exists");
            frozen.insert(table, (version, view));
        }
        let mut named = self.inner.named.write().expect("named snapshot lock");
        if named.contains_key(name) {
            return Err(SqlError::SnapshotExists(name.to_string()));
        }
        named.insert(name.to_string(), frozen);
        Ok(())
    }

    /// One table of a named version: `(data version at creation,
    /// frozen content)`.
    pub(crate) fn named_table(
        &self,
        snapshot: &str,
        table: &str,
    ) -> Result<(u64, Table), SqlError> {
        let named = self.inner.named.read().expect("named snapshot lock");
        let tables = named
            .get(snapshot)
            .ok_or_else(|| SqlError::UnknownSnapshot(snapshot.to_string()))?;
        let (version, content) = tables
            .get(table)
            .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
        Ok((*version, content.clone()))
    }

    /// Every named version, frozen tables and all — what a WAL
    /// checkpoint persists as snapshot-image records.
    pub(crate) fn named_images(&self) -> BTreeMap<String, NamedTables> {
        self.inner
            .named
            .read()
            .expect("named snapshot lock")
            .clone()
    }

    /// Installs a named version verbatim — WAL replay of a
    /// snapshot-image record (overwrites any same-named entry: the log
    /// is the authority during recovery).
    pub(crate) fn install_named(&self, name: String, tables: NamedTables) {
        self.inner
            .named
            .write()
            .expect("named snapshot lock")
            .insert(name, tables);
    }

    /// Every table's fully materialised content plus version counters —
    /// what a WAL checkpoint persists as register-image records. Each
    /// image folds the table's delta in, so replaying it (an empty
    /// delta at the recorded versions) reproduces the logical state
    /// exactly.
    pub(crate) fn checkpoint_images(&self) -> Vec<(String, u64, u64, Table)> {
        let mut tables = self.inner.tables.write().expect("catalogue lock");
        tables
            .iter_mut()
            .map(|(name, r)| {
                let view = r.materialise().clone();
                (name.clone(), r.schema_version, r.data_version, view)
            })
            .collect()
    }

    /// Plans directly against a frozen (time-travel) table — named
    /// versions and `AS OF data_version` reads bypass the shared plan
    /// cache, which only ever holds live-lineage entries — stamping the
    /// plan with its provenance for `EXPLAIN`.
    pub(crate) fn plan_frozen(
        &self,
        table: &Table,
        query: &AggregateQuery,
        data_version: u64,
        label: String,
    ) -> Result<QueryPlan, SqlError> {
        let mut plan = self.inner.engine.plan(table, query)?;
        plan.data_version = Some(data_version);
        plan.as_of = Some(label);
        Ok(plan)
    }

    /// Registered table names, sorted (a [`BTreeMap`]-backed registry:
    /// the listing order is deterministic regardless of registration
    /// order).
    pub fn table_names(&self) -> Vec<String> {
        self.inner
            .tables
            .read()
            .expect("catalogue lock")
            .keys()
            .cloned()
            .collect()
    }

    /// The schema (registration) version of `name` — bumped on every
    /// re-register, *not* by ingest — or `None` if unregistered.
    pub fn version(&self, name: &str) -> Option<u64> {
        self.inner
            .tables
            .read()
            .expect("catalogue lock")
            .get(name)
            .map(|r| r.schema_version)
    }

    /// The data version of `name` — bumped on every appended batch,
    /// reset to 1 by (re-)registration — or `None` if unregistered.
    pub fn data_version(&self, name: &str) -> Option<u64> {
        self.inner
            .tables
            .read()
            .expect("catalogue lock")
            .get(name)
            .map(|r| r.data_version)
    }

    /// Both versions of `name` at once: `(schema, data)`.
    pub(crate) fn versions(&self, name: &str) -> Option<(u64, u64)> {
        self.inner
            .tables
            .read()
            .expect("catalogue lock")
            .get(name)
            .map(|r| (r.schema_version, r.data_version))
    }

    /// The live, incrementally maintained statistics of `name`: row
    /// count and per-column min/max, sortedness and sampled distinct
    /// estimate.
    pub fn table_stats(&self, name: &str) -> Option<TableStats> {
        self.inner
            .tables
            .read()
            .expect("catalogue lock")
            .get(name)
            .map(|r| r.stats.clone())
    }

    /// The column set of `name`'s schema (sorted), without
    /// materialising the merged view.
    pub(crate) fn schema(&self, name: &str) -> Option<Vec<String>> {
        self.inner
            .tables
            .read()
            .expect("catalogue lock")
            .get(name)
            .map(|r| {
                r.base
                    .column_names()
                    .into_iter()
                    .map(str::to_string)
                    .collect()
            })
    }

    /// Rows currently parked in `name`'s delta store (0 right after
    /// registration or compaction).
    pub fn delta_rows(&self, name: &str) -> Option<usize> {
        self.inner
            .tables
            .read()
            .expect("catalogue lock")
            .get(name)
            .map(|r| r.delta.rows())
    }

    /// The shared plan cache's hit/miss/eviction/invalidation counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().expect("cache lock").stats()
    }

    /// Plans `query` against the registered `table`, serving repeated
    /// query *shapes* from the shared [`PlanCache`].
    ///
    /// On a current-data hit the cached plan is rebound to this query's
    /// literal constants and the §V-D algorithm choice is re-verified
    /// (a policy flip falls back to a fresh plan — impossible while
    /// plan-time statistics are taken pre-filter, but the check keeps
    /// rebinding honest).
    ///
    /// A hit whose entry predates an ingest (stale *data* version) is
    /// reconciled against the live statistics: if the drifted stats
    /// leave the algorithm choice standing, the plan is rebased onto
    /// the new column snapshots — no column is re-scanned, the
    /// incrementally maintained maximum supplies the cardinality — and
    /// the entry is refreshed in place. If the choice flipped (the
    /// entry is *stats-sensitive*), the entry is invalidated and the
    /// query re-planned from scratch.
    ///
    /// # Errors
    ///
    /// [`SqlError::UnknownTable`] for unregistered tables and
    /// [`SqlError::Plan`] for planning problems.
    pub fn plan_query(&self, table: &str, query: &AggregateQuery) -> Result<QueryPlan, SqlError> {
        // The live read path is a snapshot-of-now: capture a
        // single-table cut, plan at it, release the pin on return —
        // the same (one and only) read path an explicit snapshot uses.
        let snap = self.snapshot_of(table)?;
        self.plan_at_snapshot(&snap, table, query)
    }

    /// Plans `query` against `table` **at a pinned snapshot**: the
    /// column snapshots, cardinality statistics and the §V-D algorithm
    /// choice all come from the cut the snapshot captured, not from the
    /// live table — a plan made here is reproducible however far the
    /// live statistics have drifted since.
    ///
    /// Shares the [`PlanCache`] with the live path: an entry tagged
    /// with the snapshot's data version is a plain hit, a stale entry
    /// is rebased onto the snapshot's cut when the algorithm choice
    /// holds (see [`SharedCatalogue::plan_query`]), and entries are
    /// never regressed to an older version by a snapshot reader.
    ///
    /// # Errors
    ///
    /// [`SqlError::ForeignSnapshot`] if `snap` was cut from a different
    /// catalogue, [`SqlError::UnknownTable`] if the snapshot does not
    /// contain `table`, and [`SqlError::Plan`] for planning problems.
    pub fn plan_query_at(
        &self,
        snap: &Snapshot,
        table: &str,
        query: &AggregateQuery,
    ) -> Result<QueryPlan, SqlError> {
        let mut plan = self.plan_at_snapshot(snap, table, query)?;
        // An explicit-snapshot plan is stamped with its provenance for
        // `EXPLAIN` — *after* the cache interaction, so the shared
        // cache never holds an `as_of` label.
        if let Some(version) = plan.data_version {
            plan.as_of = Some(format!("snapshot@{version}"));
        }
        Ok(plan)
    }

    /// [`SharedCatalogue::plan_query_at`] without the provenance stamp
    /// — the shared body of the live and explicit-snapshot paths.
    fn plan_at_snapshot(
        &self,
        snap: &Snapshot,
        table: &str,
        query: &AggregateQuery,
    ) -> Result<QueryPlan, SqlError> {
        if !snap.catalogue().is_same(self) {
            return Err(SqlError::ForeignSnapshot);
        }
        let cut = snap
            .cut(table)
            .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
        let view = snap.table(table).expect("cut exists for this table");
        self.plan_view(
            table,
            &ViewRef {
                schema_version: cut.schema_version,
                data_version: cut.data_version,
                table: &view,
                stats: &cut.stats,
            },
            query,
        )
    }

    /// The single planning funnel every read goes through, live or
    /// pinned: serve the shared cache, rebase stale entries when the
    /// §V-D choice survives the view's statistics, re-plan otherwise.
    fn plan_view(
        &self,
        table: &str,
        view: &ViewRef<'_>,
        query: &AggregateQuery,
    ) -> Result<QueryPlan, SqlError> {
        let shape = QueryShape::of(table, view.schema_version, query);
        let lookup = self
            .inner
            .cache
            .lock()
            .expect("cache lock")
            .lookup(&shape, view.data_version);
        match lookup {
            Lookup::Fresh(cached) => {
                let rebound = cached.rebind(query);
                if self.algorithm_holds(&rebound) {
                    return Ok(rebound);
                }
                // Policy flip without a data change: fall through to a
                // fresh plan (the insert below overwrites the entry).
            }
            Lookup::Stale(cached) => {
                if let Some(rebased) = self.rebase_plan(&cached, view) {
                    if self.algorithm_holds(&rebased) {
                        let rebound = rebased.rebind(query);
                        let mut cache = self.inner.cache.lock().expect("cache lock");
                        if !cache.rebase(&shape, rebased, view.data_version) {
                            // A snapshot older than the entry was
                            // served by rebasing *locally*: the newer
                            // entry stays put, but the serve is still
                            // a hit.
                            cache.note_hit();
                        }
                        return Ok(rebound);
                    }
                }
                // Stats-sensitive: the view's statistics flip the §V-D
                // choice (or the plan needs a real statistics pass) —
                // invalidate (if older than this view) and re-plan.
                self.inner
                    .cache
                    .lock()
                    .expect("cache lock")
                    .drop_stale(&shape, view.data_version);
            }
            Lookup::Miss => {}
        }
        let mut plan = self.inner.engine.plan(view.table, query)?;
        plan.data_version = Some(view.data_version);
        stamp_zones(&mut plan, view.stats);
        // Re-check the versions under the locks before caching: a plan
        // made at an old snapshot — or against a table a concurrent
        // re-register/append has moved past our cut — must not park a
        // dead (stale-version) entry in an LRU slot.
        let tables = self.inner.tables.read().expect("catalogue lock");
        let current = tables
            .get(table)
            .map(|r| (r.schema_version, r.data_version));
        let mut cache = self.inner.cache.lock().expect("cache lock");
        if current == Some((view.schema_version, view.data_version)) {
            cache.insert(shape, plan.clone(), view.data_version);
        } else {
            cache.note_miss();
        }
        Ok(plan)
    }

    /// Rebases a cached plan onto a view at another data version using
    /// that view's statistics — the cheap refresh of the write path,
    /// and of snapshot reads whose version the cache has moved past.
    /// `None` when the shortcut does not apply (composite GROUP BY,
    /// sampled estimation): those plans need a real statistics pass.
    fn rebase_plan(&self, cached: &QueryPlan, view: &ViewRef<'_>) -> Option<QueryPlan> {
        let query = cached.query();
        let col = view.stats.column(&query.group_by)?;
        let presorted = col.sorted && query.group_by_rest.is_empty();
        let scan_mode = ScanMode::of(presorted, self.inner.engine.estimation());
        if matches!(scan_mode, ScanMode::Sampled { .. }) {
            // The sampled estimate is defined by the windowed scan; the
            // maintained maximum would disagree with a fresh plan.
            return None;
        }
        // For a sorted column max = last element, so `max + 1` is
        // exactly what either scan mode would measure.
        let mut plan = cached.rebase_onto(view.table, presorted, scan_mode, col.cardinality())?;
        plan.data_version = Some(view.data_version);
        stamp_zones(&mut plan, view.stats);
        Some(plan)
    }

    /// Whether the adaptive policy still selects the plan's algorithm
    /// for the plan's recorded statistics — the rebinding soundness
    /// check shared by the plan cache and prepared statements.
    pub(crate) fn algorithm_holds(&self, plan: &QueryPlan) -> bool {
        select_algorithm(
            &PlannerInputs {
                presorted: plan.presorted(),
                cardinality: plan.cardinality_estimate(),
                rows: plan.rows(),
                mvl: self.inner.engine.config().mvl,
            },
            None,
            AdaptiveMode::Realistic,
        ) == plan.algorithm()
    }
}

/// Stamps a freshly planned (or rebased) query with the view's zone
/// maps: the zone count for `EXPLAIN`, and the WHERE column's
/// `(lo, hi, min, max)` ranges for morsel pruning. Zones are positions
/// in the statistics' view; a plan whose row count disagrees (frozen
/// content drifted past the stats — defensive, should not happen on
/// catalogue paths) gets none, which only disables pruning.
fn stamp_zones(plan: &mut QueryPlan, stats: &TableStats) {
    if stats.rows() != plan.rows() {
        return;
    }
    let zones = stats.zone_maps();
    plan.zone_maps = zones.zones();
    plan.zones = plan
        .query()
        .filter
        .as_ref()
        .and_then(|(col, _)| zones.column_zones(col))
        .map(Arc::from);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Predicate;

    fn catalogue() -> SharedCatalogue {
        let cat = SharedCatalogue::new();
        cat.register(
            Table::new("r")
                .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
                .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0]),
        );
        cat
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let cat = catalogue();
        let q = AggregateQuery::paper("g", "v");
        let p1 = cat.plan_query("r", &q).unwrap();
        let p2 = cat.plan_query("r", &q).unwrap();
        assert_eq!(p1.explain(), p2.explain());
        let s = cat.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn different_literals_share_one_cached_plan() {
        let cat = catalogue();
        let q = |k| AggregateQuery::paper("g", "v").with_filter("v", Predicate::GreaterThan(k));
        cat.plan_query("r", &q(1)).unwrap();
        let rebound = cat.plan_query("r", &q(3)).unwrap();
        assert_eq!(cat.cache_stats().hits, 1, "same shape, new literal");
        // The rebound plan carries the *new* constant everywhere.
        assert!(rebound.explain().contains("VectorFilter(v > 3)"));
        assert_eq!(
            rebound.query().filter,
            Some(("v".into(), Predicate::GreaterThan(3)))
        );
    }

    #[test]
    fn re_register_bumps_version_and_purges_plans() {
        let cat = catalogue();
        assert_eq!(cat.version("r"), Some(1));
        let q = AggregateQuery::paper("g", "v");
        cat.plan_query("r", &q).unwrap();
        let old = cat.register(
            Table::new("r")
                .with_column("g", vec![7, 7])
                .with_column("v", vec![1, 2]),
        );
        assert_eq!(old.unwrap().rows(), 8);
        assert_eq!(cat.version("r"), Some(2));
        assert_eq!(cat.cache_stats().invalidations, 1);
        // The next plan is a fresh miss against the new table.
        let plan = cat.plan_query("r", &q).unwrap();
        assert_eq!(plan.rows(), 2, "plans the new table, not the stale one");
        assert_eq!(cat.cache_stats().hits, 0);
    }

    #[test]
    fn sessions_share_tables_and_cache() {
        let cat = catalogue();
        let mut s1 = cat.connect();
        let mut s2 = cat.connect();
        let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";
        let a = s1.execute_sql(sql).unwrap();
        let b = s2.execute_sql(sql).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(cat.cache_stats().hits, 1);
        // Execution state stays per-session.
        assert_eq!(s1.session().queries_run(), 1);
        assert_eq!(s2.session().queries_run(), 1);
    }

    #[test]
    fn unknown_table_is_reported() {
        let e = catalogue()
            .plan_query("nope", &AggregateQuery::paper("g", "v"))
            .unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("nope".into()));
    }

    fn batch(g: Vec<u32>, v: Vec<u32>) -> RowBatch {
        RowBatch::new().with_column("g", g).with_column("v", v)
    }

    #[test]
    fn append_is_visible_and_bumps_only_the_data_version() {
        let cat = catalogue();
        assert_eq!(cat.versions("r"), Some((1, 1)));
        let receipt = cat.append("r", batch(vec![7, 7], vec![1, 1])).unwrap();
        assert_eq!(receipt.rows, 2);
        assert_eq!(receipt.delta_rows, 2);
        assert!(!receipt.compacted);
        assert_eq!(cat.versions("r"), Some((1, 2)), "schema version untouched");
        assert_eq!(cat.delta_rows("r"), Some(2));

        // The read view merges base ++ delta in append order.
        let t = cat.table("r").unwrap();
        assert_eq!(t.rows(), 10);
        assert_eq!(&t.column("g").unwrap()[8..], &[7, 7]);

        // Live statistics absorbed the batch.
        let stats = cat.table_stats("r").unwrap();
        assert_eq!(stats.rows(), 10);
        assert_eq!(stats.column("g").unwrap().max, Some(7));
        assert_eq!(stats.column("g").unwrap().cardinality(), 8);
    }

    #[test]
    fn empty_batches_are_a_no_op() {
        let cat = catalogue();
        let receipt = cat.append("r", batch(vec![], vec![])).unwrap();
        assert_eq!(receipt.rows, 0);
        assert_eq!(cat.versions("r"), Some((1, 1)), "no version bump");
    }

    #[test]
    fn append_validates_against_the_schema() {
        use crate::ingest::IngestError;
        let cat = catalogue();
        let e = cat.append("nope", batch(vec![1], vec![1])).unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("nope".into()));
        let e = cat
            .append("r", RowBatch::new().with_column("g", vec![1]))
            .unwrap_err();
        assert_eq!(e, SqlError::Ingest(IngestError::MissingColumn("v".into())));
        assert!(e.to_string().contains("ingest error"));
        assert!(std::error::Error::source(&e).is_some());
        // A rejected batch changes nothing.
        assert_eq!(cat.versions("r"), Some((1, 1)));
        assert_eq!(cat.table("r").unwrap().rows(), 8);
    }

    #[test]
    fn stale_cache_entries_rebase_when_the_choice_holds() {
        let cat = catalogue();
        let q = AggregateQuery::paper("g", "v");
        let p1 = cat.plan_query("r", &q).unwrap();
        assert_eq!(p1.rows(), 8);
        // A small append: cardinality stays deep inside the Monotable
        // division, so the §V-D choice holds.
        cat.append("r", batch(vec![3, 1], vec![9, 9])).unwrap();
        let p2 = cat.plan_query("r", &q).unwrap();
        assert_eq!(p2.rows(), 10, "rebased onto the merged view");
        assert_eq!(p2.algorithm(), p1.algorithm());
        let s = cat.cache_stats();
        assert_eq!(
            (s.hits, s.misses, s.rebases, s.invalidations),
            (1, 1, 1, 0),
            "stale entry refreshed in place, not re-planned"
        );
        // And the rebased entry keeps serving as a plain hit.
        cat.plan_query("r", &q).unwrap();
        assert_eq!(cat.cache_stats().hits, 2);
    }

    #[test]
    fn rebased_plans_match_a_fresh_plan_on_the_merged_table() {
        let cat = catalogue();
        let q = AggregateQuery::paper("g", "v");
        cat.plan_query("r", &q).unwrap();
        cat.append("r", batch(vec![6, 0, 2], vec![1, 2, 3]))
            .unwrap();
        let rebased = cat.plan_query("r", &q).unwrap();

        let fresh_cat = SharedCatalogue::new();
        fresh_cat.register(cat.table("r").unwrap());
        let fresh = fresh_cat.plan_query("r", &q).unwrap();
        // Identical plans; the explain output differs only in the
        // recorded provenance — data version 2 after the append vs 1
        // on the fresh registration, and zone granularity (the append
        // kept its own zone, the fresh registration re-seeded one).
        assert_eq!(rebased.steps(), fresh.steps());
        assert_eq!(rebased.algorithm(), fresh.algorithm());
        assert_eq!(
            (rebased.data_version(), fresh.data_version()),
            (Some(2), Some(1))
        );
        assert_eq!((rebased.zone_maps(), fresh.zone_maps()), (2, 1));
        assert_eq!(
            rebased
                .explain()
                .replace(" data_version=2", "")
                .replace(" zone_maps=2", ""),
            fresh
                .explain()
                .replace(" data_version=1", "")
                .replace(" zone_maps=1", "")
        );
        assert_eq!(rebased.cardinality_estimate(), fresh.cardinality_estimate());
        // The rebased plan executes over the merged rows.
        let out = crate::Session::new().run(&rebased);
        let expect = crate::Session::new().run(&fresh);
        assert_eq!(out.rows, expect.rows);
    }

    #[test]
    fn drifted_stats_invalidate_stats_sensitive_entries() {
        use vagg_core::Algorithm;
        let cat = catalogue();
        let q = AggregateQuery::paper("g", "v");
        let before = cat.plan_query("r", &q).unwrap();
        assert_eq!(before.algorithm(), Algorithm::Monotable);
        // Push the cardinality estimate across the §V-D division
        // boundary (9,765 → PartiallySortedMonotable for unsorted
        // input): the cached plan's choice no longer holds.
        cat.append("r", batch(vec![20_000], vec![1])).unwrap();
        let after = cat.plan_query("r", &q).unwrap();
        assert_eq!(after.algorithm(), Algorithm::PartiallySortedMonotable);
        assert_eq!(after.cardinality_estimate(), 20_001);
        let s = cat.cache_stats();
        assert_eq!(
            (s.hits, s.misses, s.rebases, s.invalidations),
            (0, 2, 0, 1),
            "stats-sensitive entry was invalidated and re-planned"
        );
    }

    #[test]
    fn compaction_merges_the_delta_and_reseeds_statistics() {
        let cat = catalogue();
        cat.set_compaction_policy(CompactionPolicy::every(3));
        assert_eq!(cat.compaction_policy().max_delta_rows, 3);
        let r1 = cat.append("r", batch(vec![9, 9], vec![1, 1])).unwrap();
        assert!(!r1.compacted);
        assert_eq!(r1.delta_rows, 2);
        let r2 = cat.append("r", batch(vec![9], vec![1])).unwrap();
        assert!(r2.compacted, "third delta row tripped the threshold");
        assert_eq!(r2.delta_rows, 0);
        assert_eq!(cat.delta_rows("r"), Some(0));
        // Logical content is unchanged by compaction.
        let t = cat.table("r").unwrap();
        assert_eq!(t.rows(), 11);
        let stats = cat.table_stats("r").unwrap();
        assert_eq!(stats.rows(), 11);
        assert_eq!(stats.column("g").unwrap().max, Some(9));
        // Further appends start filling a fresh delta over the new base.
        let r3 = cat.append("r", batch(vec![2], vec![2])).unwrap();
        assert_eq!(r3.delta_rows, 1);
        assert!(!r3.compacted);
    }

    #[test]
    fn register_returns_the_logical_content_including_the_delta() {
        let cat = catalogue();
        cat.append("r", batch(vec![7], vec![7])).unwrap();
        let old = cat
            .register(
                Table::new("r")
                    .with_column("g", vec![1])
                    .with_column("v", vec![1]),
            )
            .unwrap();
        assert_eq!(old.rows(), 9, "base (8) plus the un-compacted delta (1)");
        assert_eq!(cat.versions("r"), Some((2, 1)), "data version reset");
        assert_eq!(cat.delta_rows("r"), Some(0));
    }

    #[test]
    fn snapshots_pin_a_point_in_time_view() {
        let cat = catalogue();
        let snap = cat.snapshot();
        cat.append("r", batch(vec![9, 9], vec![1, 1])).unwrap();
        // Live view moved on; the snapshot did not.
        assert_eq!(cat.table("r").unwrap().rows(), 10);
        assert_eq!(snap.table("r").unwrap().rows(), 8);
        assert_eq!(snap.data_version("r"), Some(1));
        assert_eq!(snap.table_stats("r").unwrap().rows(), 8);
        // Plans at the snapshot use the pinned cut.
        let q = AggregateQuery::paper("g", "v");
        let plan = cat.plan_query_at(&snap, "r", &q).unwrap();
        assert_eq!(plan.rows(), 8);
        assert_eq!(plan.data_version(), Some(1));
        let live = cat.plan_query("r", &q).unwrap();
        assert_eq!(live.rows(), 10);
        assert_eq!(live.data_version(), Some(2));
    }

    #[test]
    fn every_live_read_is_a_snapshot_of_now() {
        // The one-read-path proof: the live plan/table path runs
        // through the same snapshot capture as the explicit API, so
        // the snapshot counter moves on every read.
        let cat = catalogue();
        let before = cat.snapshot_stats().snapshots_taken;
        cat.plan_query("r", &AggregateQuery::paper("g", "v"))
            .unwrap();
        cat.table("r").unwrap();
        let stats = cat.snapshot_stats();
        assert_eq!(stats.snapshots_taken, before + 2);
        assert_eq!(stats.live_snapshots, 0, "of-now cuts release on return");
        assert_eq!(stats.live_pins, 0);
    }

    #[test]
    fn compaction_defers_delta_gc_while_pinned_and_reclaims_on_drop() {
        let cat = catalogue();
        cat.set_compaction_policy(CompactionPolicy::every(2));
        cat.append("r", batch(vec![6], vec![1])).unwrap();
        let snap = cat.snapshot(); // pins data version 2, delta prefix 1
        assert_eq!(snap.delta_rows("r"), Some(1));

        // This append trips compaction; the pinned delta generation is
        // retired, not freed — and compaction itself is not delayed.
        let receipt = cat.append("r", batch(vec![7], vec![1])).unwrap();
        assert!(receipt.compacted, "readers never block the write path");
        let stats = cat.snapshot_stats();
        assert_eq!(stats.deferred_gcs, 1);
        assert_eq!(stats.retired_deltas, 1);
        assert_eq!(stats.oldest_pinned_version, Some(2));

        // The snapshot still reads its pinned cut from the retired
        // store: 8 base rows + 1 delta row, not the 10-row live table.
        assert_eq!(snap.table("r").unwrap().rows(), 9);
        assert_eq!(&snap.table("r").unwrap().column("g").unwrap()[8..], &[6]);
        assert_eq!(cat.table("r").unwrap().rows(), 10);

        // Dropping the snapshot releases the pin and reclaims.
        drop(snap);
        let stats = cat.snapshot_stats();
        assert_eq!(stats.live_pins, 0);
        assert_eq!(stats.retired_deltas, 0, "deferred GC reclaimed");
        assert_eq!(stats.reclaimed_gcs, 1);
        assert_eq!(stats.oldest_pinned_version, None);
    }

    #[test]
    fn re_registration_retires_a_pinned_delta() {
        let cat = catalogue();
        cat.append("r", batch(vec![6, 6], vec![1, 1])).unwrap();
        let snap = cat.snapshot();
        cat.register(
            Table::new("r")
                .with_column("g", vec![0])
                .with_column("v", vec![0]),
        );
        // The snapshot still serves the pre-replacement cut.
        let t = snap.table("r").unwrap();
        assert_eq!(t.rows(), 10);
        assert_eq!(cat.table("r").unwrap().rows(), 1);
        assert_eq!(cat.snapshot_stats().deferred_gcs, 1);
        drop(snap);
        assert_eq!(cat.snapshot_stats().retired_deltas, 0);
    }

    #[test]
    fn unpinned_compactions_free_the_delta_without_deferral() {
        let cat = catalogue();
        cat.set_compaction_policy(CompactionPolicy::every(2));
        cat.append("r", batch(vec![6, 7], vec![1, 1])).unwrap();
        let stats = cat.snapshot_stats();
        assert_eq!((stats.deferred_gcs, stats.retired_deltas), (0, 0));
    }

    #[test]
    fn clean_view_cuts_pin_no_delta_and_never_defer_gc() {
        let cat = catalogue();
        cat.set_compaction_policy(CompactionPolicy::every(3));
        cat.append("r", batch(vec![6], vec![1])).unwrap();
        cat.table("r").unwrap(); // materialises + installs the clean view
        let snap = cat.snapshot(); // the cut carries that view
        assert_eq!(snap.delta_rows("r"), Some(1));
        // Compaction trips; the snapshot reads its own clean view, so
        // the delta is freed outright — no deferred GC on its account.
        cat.append("r", batch(vec![7, 8], vec![1, 1])).unwrap();
        let stats = cat.snapshot_stats();
        assert_eq!((stats.deferred_gcs, stats.retired_deltas), (0, 0));
        assert_eq!(snap.table("r").unwrap().rows(), 9, "still repeatable");
        drop(snap);
    }

    #[test]
    fn snapshots_at_zero_delta_never_block_gc() {
        // A snapshot taken right after compaction pins no delta rows,
        // so later compactions need no deferral on its account.
        let cat = catalogue();
        cat.set_compaction_policy(CompactionPolicy::every(2));
        let snap = cat.snapshot(); // prefix 0
        cat.append("r", batch(vec![6, 7], vec![1, 1])).unwrap();
        assert_eq!(cat.snapshot_stats().deferred_gcs, 0);
        assert_eq!(snap.table("r").unwrap().rows(), 8, "still repeatable");
        drop(snap);
    }

    #[test]
    fn old_snapshots_are_served_from_newer_cache_entries_without_regression() {
        let cat = catalogue();
        let q = AggregateQuery::paper("g", "v");
        let snap = cat.snapshot(); // data version 1
        cat.append("r", batch(vec![3], vec![9])).unwrap();
        // Live plan caches an entry at data version 2.
        cat.plan_query("r", &q).unwrap();
        // The old snapshot rebases that entry locally; the entry stays
        // at version 2 and the serve counts as a hit.
        let at = cat.plan_query_at(&snap, "r", &q).unwrap();
        assert_eq!(at.rows(), 8);
        assert_eq!(at.data_version(), Some(1));
        let s = cat.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // The live entry was not regressed: the next live lookup is a
        // plain hit at version 2.
        let live = cat.plan_query("r", &q).unwrap();
        assert_eq!(live.rows(), 9);
        assert_eq!(cat.cache_stats().hits, 2);
    }

    #[test]
    fn foreign_snapshots_are_rejected() {
        let cat = catalogue();
        let other = catalogue();
        let snap = other.snapshot();
        let e = cat
            .plan_query_at(&snap, "r", &AggregateQuery::paper("g", "v"))
            .unwrap_err();
        assert_eq!(e, SqlError::ForeignSnapshot);
    }

    #[test]
    fn snapshot_of_a_missing_table_is_unknown_table() {
        let cat = catalogue();
        let snap = cat.snapshot();
        let e = cat
            .plan_query_at(&snap, "nope", &AggregateQuery::paper("g", "v"))
            .unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("nope".into()));
        // A table registered after the cut does not exist in it.
        cat.register(Table::new("late").with_column("g", vec![1]));
        assert!(snap.table("late").is_none());
        assert!(cat.table("late").is_some());
    }

    #[test]
    fn sampled_estimation_replans_instead_of_rebasing() {
        // The sampled estimate is defined by the windowed scan; the
        // incremental maximum cannot reproduce it, so stale entries
        // under a sampling engine re-plan (counted as invalidations).
        let cat = SharedCatalogue::with_engine(
            Engine::new()
                .with_estimation(crate::engine::CardinalityEstimation::Sampled { stride: 2 }),
        );
        let n = 256;
        cat.register(
            Table::new("r")
                .with_column("g", (0..n).map(|i| (i * 37 % 50) as u32).collect())
                .with_column("v", vec![1; n]),
        );
        let q = AggregateQuery::paper("g", "v");
        cat.plan_query("r", &q).unwrap();
        cat.append("r", batch(vec![3], vec![1])).unwrap();
        let plan = cat.plan_query("r", &q).unwrap();
        assert_eq!(plan.rows(), n + 1);
        let s = cat.cache_stats();
        assert_eq!((s.rebases, s.invalidations, s.misses), (0, 1, 2));
    }
}
