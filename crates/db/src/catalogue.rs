//! The shared catalogue: one table registry + plan cache serving many
//! concurrent sessions.
//!
//! A [`SharedCatalogue`] is an `Arc`-backed handle over a read-mostly
//! table registry (behind an `RwLock`), the planning [`crate::Engine`],
//! and one shared [`PlanCache`]. Cloning the handle is cheap; every
//! clone sees the same tables and the same cache, so a plan computed by
//! one session is a cache hit for every other session — the
//! serving-layer shape of a real column-store, where connections share
//! the catalogue and plan cache but own their execution context.
//!
//! [`SharedCatalogue::connect`] mints a new [`crate::Database`] (a
//! session + this catalogue handle); sessions on different threads run
//! concurrently because execution state lives entirely in the
//! per-session [`crate::Session`] machine.
//!
//! ```
//! use vagg_db::{SharedCatalogue, Table};
//!
//! let catalogue = SharedCatalogue::new();
//! catalogue.register(
//!     Table::new("r")
//!         .with_column("g", vec![1, 2, 1])
//!         .with_column("v", vec![10, 20, 30]),
//! );
//! let mut alice = catalogue.connect();
//! let mut bob = catalogue.connect();
//! let sql = "SELECT g, SUM(v) FROM r GROUP BY g";
//! let a = alice.execute_sql(sql)?;
//! let b = bob.execute_sql(sql)?; // plan served from the shared cache
//! assert_eq!(a.rows, b.rows);
//! assert_eq!(catalogue.cache_stats().hits, 1);
//! # Ok::<(), vagg_db::SqlError>(())
//! ```

use crate::cache::{CacheStats, PlanCache, QueryShape};
use crate::database::{Database, SqlError};
use crate::engine::Engine;
use crate::plan::QueryPlan;
use crate::query::AggregateQuery;
use crate::table::Table;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};
use vagg_core::{select_algorithm, AdaptiveMode, PlannerInputs};

/// One registered table plus its registration version. The version is
/// part of every plan-cache key, so re-registering a table (the only
/// way its statistics change — tables are immutable) makes all cached
/// plans for it unreachable *and* purges them.
struct Registered {
    version: u64,
    table: Table,
}

struct Inner {
    tables: RwLock<BTreeMap<String, Registered>>,
    cache: Mutex<PlanCache>,
    engine: Engine,
}

/// A cheaply clonable handle to one shared table registry, planner and
/// plan cache. See the [module docs](self).
#[derive(Clone)]
pub struct SharedCatalogue {
    inner: Arc<Inner>,
}

/// A non-owning catalogue identity (see [`SharedCatalogue::id`]): the
/// `Weak` makes the comparison ABA-safe — a dropped catalogue can
/// never be confused with a new one reusing its address — without
/// pinning the catalogue's memory.
#[derive(Debug, Clone)]
pub(crate) struct CatalogueId(std::sync::Weak<Inner>);

impl CatalogueId {
    /// Whether this token identifies `catalogue`.
    pub(crate) fn matches(&self, catalogue: &SharedCatalogue) -> bool {
        self.0
            .upgrade()
            .is_some_and(|inner| Arc::ptr_eq(&inner, &catalogue.inner))
    }
}

impl fmt::Debug for SharedCatalogue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedCatalogue")
            .field("tables", &self.table_names())
            .field("cache", &*self.inner.cache.lock().expect("cache lock"))
            .finish_non_exhaustive()
    }
}

impl Default for SharedCatalogue {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedCatalogue {
    /// An empty catalogue planning for the paper's machine
    /// configuration, with the default plan-cache capacity.
    pub fn new() -> Self {
        Self::with_engine(Engine::new())
    }

    /// An empty catalogue with a custom planning engine.
    pub fn with_engine(engine: Engine) -> Self {
        Self::with_engine_and_cache(engine, PlanCache::default())
    }

    /// An empty catalogue with a custom engine and plan cache (e.g. a
    /// different capacity).
    pub fn with_engine_and_cache(engine: Engine, cache: PlanCache) -> Self {
        Self {
            inner: Arc::new(Inner {
                tables: RwLock::new(BTreeMap::new()),
                cache: Mutex::new(cache),
                engine,
            }),
        }
    }

    /// The planning engine every session of this catalogue shares.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// Whether two handles point at the *same* catalogue (same tables,
    /// same plan cache) — distinct catalogues can register tables under
    /// the same names with independent version counters, so name +
    /// version alone does not identify a table snapshot.
    pub fn is_same(&self, other: &SharedCatalogue) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// A weak identity token for this catalogue — lets a
    /// [`crate::PreparedStatement`] detect that it is executing
    /// against a different catalogue without keeping this one (its
    /// tables, its plan cache) alive.
    pub(crate) fn id(&self) -> CatalogueId {
        CatalogueId(Arc::downgrade(&self.inner))
    }

    /// Opens a new session over this catalogue: a [`Database`] handle
    /// owning its own execution machine but sharing tables and the
    /// plan cache with every other session.
    pub fn connect(&self) -> Database {
        Database::over(self.clone())
    }

    /// Registers a table under its own name, replacing any previous
    /// table with that name (the replaced table is returned). The
    /// table's registration version is bumped and every cached plan
    /// for it is purged, so later queries re-plan against the new
    /// statistics instead of serving a stale snapshot.
    pub fn register(&self, table: Table) -> Option<Table> {
        let name = table.name().to_string();
        let mut tables = self.inner.tables.write().expect("catalogue lock");
        let version = tables.get(&name).map_or(1, |r| r.version + 1);
        let old = tables.insert(name.clone(), Registered { version, table });
        drop(tables);
        if old.is_some() {
            self.inner
                .cache
                .lock()
                .expect("cache lock")
                .invalidate_table(&name);
        }
        old.map(|r| r.table)
    }

    /// Looks up a registered table (a cheap clone: column data is
    /// `Arc`-shared).
    pub fn table(&self, name: &str) -> Option<Table> {
        self.inner
            .tables
            .read()
            .expect("catalogue lock")
            .get(name)
            .map(|r| r.table.clone())
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.inner
            .tables
            .read()
            .expect("catalogue lock")
            .keys()
            .cloned()
            .collect()
    }

    /// The registration version of `name` (bumped on every
    /// re-register), or `None` if unregistered.
    pub fn version(&self, name: &str) -> Option<u64> {
        self.inner
            .tables
            .read()
            .expect("catalogue lock")
            .get(name)
            .map(|r| r.version)
    }

    /// The shared plan cache's hit/miss/eviction/invalidation counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.lock().expect("cache lock").stats()
    }

    /// Plans `query` against the registered `table`, serving repeated
    /// query *shapes* from the shared [`PlanCache`]: on a hit the
    /// cached plan is rebound to this query's literal constants and
    /// the §V-D algorithm choice is re-verified (a policy flip falls
    /// back to a fresh plan — impossible while plan-time statistics
    /// are taken pre-filter, but the check keeps rebinding honest).
    ///
    /// # Errors
    ///
    /// [`SqlError::UnknownTable`] for unregistered tables and
    /// [`SqlError::Plan`] for planning problems.
    pub fn plan_query(&self, table: &str, query: &AggregateQuery) -> Result<QueryPlan, SqlError> {
        let (version, snapshot) = {
            let tables = self.inner.tables.read().expect("catalogue lock");
            let r = tables
                .get(table)
                .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
            (r.version, r.table.clone())
        };
        let shape = QueryShape::of(table, version, query);
        if let Some(cached) = self.inner.cache.lock().expect("cache lock").get(&shape) {
            let rebound = cached.rebind(query);
            if self.algorithm_holds(&rebound) {
                return Ok(rebound);
            }
        }
        let plan = self.inner.engine.plan(&snapshot, query)?;
        // Re-check the version under the locks before caching: a
        // concurrent re-register between our snapshot and this insert
        // would otherwise park a dead (stale-version) entry in an LRU
        // slot that its invalidation pass already swept.
        let tables = self.inner.tables.read().expect("catalogue lock");
        let current = tables.get(table).map(|r| r.version);
        let mut cache = self.inner.cache.lock().expect("cache lock");
        if current == Some(version) {
            cache.insert(shape, plan.clone());
        } else {
            cache.note_miss();
        }
        Ok(plan)
    }

    /// Whether the adaptive policy still selects the plan's algorithm
    /// for the plan's recorded statistics — the rebinding soundness
    /// check shared by the plan cache and prepared statements.
    pub(crate) fn algorithm_holds(&self, plan: &QueryPlan) -> bool {
        select_algorithm(
            &PlannerInputs {
                presorted: plan.presorted(),
                cardinality: plan.cardinality_estimate(),
                rows: plan.rows(),
                mvl: self.inner.engine.config().mvl,
            },
            None,
            AdaptiveMode::Realistic,
        ) == plan.algorithm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Predicate;

    fn catalogue() -> SharedCatalogue {
        let cat = SharedCatalogue::new();
        cat.register(
            Table::new("r")
                .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
                .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0]),
        );
        cat
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let cat = catalogue();
        let q = AggregateQuery::paper("g", "v");
        let p1 = cat.plan_query("r", &q).unwrap();
        let p2 = cat.plan_query("r", &q).unwrap();
        assert_eq!(p1.explain(), p2.explain());
        let s = cat.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn different_literals_share_one_cached_plan() {
        let cat = catalogue();
        let q = |k| AggregateQuery::paper("g", "v").with_filter("v", Predicate::GreaterThan(k));
        cat.plan_query("r", &q(1)).unwrap();
        let rebound = cat.plan_query("r", &q(3)).unwrap();
        assert_eq!(cat.cache_stats().hits, 1, "same shape, new literal");
        // The rebound plan carries the *new* constant everywhere.
        assert!(rebound.explain().contains("VectorFilter(v > 3)"));
        assert_eq!(
            rebound.query().filter,
            Some(("v".into(), Predicate::GreaterThan(3)))
        );
    }

    #[test]
    fn re_register_bumps_version_and_purges_plans() {
        let cat = catalogue();
        assert_eq!(cat.version("r"), Some(1));
        let q = AggregateQuery::paper("g", "v");
        cat.plan_query("r", &q).unwrap();
        let old = cat.register(
            Table::new("r")
                .with_column("g", vec![7, 7])
                .with_column("v", vec![1, 2]),
        );
        assert_eq!(old.unwrap().rows(), 8);
        assert_eq!(cat.version("r"), Some(2));
        assert_eq!(cat.cache_stats().invalidations, 1);
        // The next plan is a fresh miss against the new table.
        let plan = cat.plan_query("r", &q).unwrap();
        assert_eq!(plan.rows(), 2, "plans the new table, not the stale one");
        assert_eq!(cat.cache_stats().hits, 0);
    }

    #[test]
    fn sessions_share_tables_and_cache() {
        let cat = catalogue();
        let mut s1 = cat.connect();
        let mut s2 = cat.connect();
        let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";
        let a = s1.execute_sql(sql).unwrap();
        let b = s2.execute_sql(sql).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(cat.cache_stats().hits, 1);
        // Execution state stays per-session.
        assert_eq!(s1.session().queries_run(), 1);
        assert_eq!(s2.session().queries_run(), 1);
    }

    #[test]
    fn unknown_table_is_reported() {
        let e = catalogue()
            .plan_query("nope", &AggregateQuery::paper("g", "v"))
            .unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("nope".into()));
    }
}
