//! The query model: a `GROUP BY` aggregation with optional selection,
//! i.e. the query family the paper's evaluation covers (Figure 2) plus
//! the VGAmin/VGAmax extension.

use crate::filter::Predicate;

/// An aggregate function over the value column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// `COUNT(*)`.
    Count,
    /// `SUM(v)`.
    Sum,
    /// `MIN(v)` (uses `VGAmin`).
    Min,
    /// `MAX(v)` (uses `VGAmax`).
    Max,
    /// `AVG(v)` = SUM/COUNT, computed on readback.
    Avg,
}

impl AggFn {
    /// SQL spelling.
    pub fn sql(self, value_col: &str) -> String {
        match self {
            AggFn::Count => "COUNT(*)".into(),
            AggFn::Sum => format!("SUM({value_col})"),
            AggFn::Min => format!("MIN({value_col})"),
            AggFn::Max => format!("MAX({value_col})"),
            AggFn::Avg => format!("AVG({value_col})"),
        }
    }

    /// Whether this aggregate needs the MIN/MAX (VGAmin/VGAmax) kernel.
    pub fn needs_minmax(self) -> bool {
        matches!(self, AggFn::Min | AggFn::Max)
    }
}

/// A `HAVING` clause: a predicate over one computed aggregate.
///
/// `AVG` is excluded (it is an `f64` computed on readback; the vector
/// machine filters integral columns) — the engine rejects it at plan
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Having {
    /// The aggregate the predicate inspects.
    pub agg: AggFn,
    /// The comparison (same vocabulary as WHERE — the ISA limit).
    pub pred: Predicate,
}

/// The sort key of an `ORDER BY` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderKey {
    /// Order by the group key (the engine's natural output order).
    Group,
    /// Order by a computed aggregate (again excluding `AVG`).
    Agg(AggFn),
}

/// An `ORDER BY <key> [ASC|DESC] [LIMIT k]` clause, executed as a
/// vectorised radix sort of the (small) output table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderBy {
    /// What to sort on.
    pub key: OrderKey,
    /// Descending order (sorts on the complement key).
    pub desc: bool,
    /// Keep only the first `k` rows after sorting.
    pub limit: Option<usize>,
}

/// `SELECT g, <aggs...> FROM t [WHERE pred(w)] GROUP BY g
/// [HAVING pred(agg)] [ORDER BY key [DESC] [LIMIT k]]`.
#[derive(Debug, Clone)]
pub struct AggregateQuery {
    /// Grouping column name.
    pub group_by: String,
    /// Further grouping columns for composite (multi-column) GROUP BY.
    ///
    /// The engine fuses the columns into one key per row on the vector
    /// machine (`key = ((g₀·d₁) + g₁)·d₂ + g₂ ...` where `dᵢ` is column
    /// `i`'s key domain) and decomposes the keys on readback, so any
    /// aggregation algorithm runs unchanged. Empty for the paper's
    /// single-column query.
    pub group_by_rest: Vec<String>,
    /// Value column name.
    pub value: String,
    /// Selected aggregates (at least one).
    pub aggregates: Vec<AggFn>,
    /// Optional selection `(column, predicate)` applied before grouping.
    pub filter: Option<(String, Predicate)>,
    /// Optional post-aggregation selection.
    pub having: Option<Having>,
    /// Optional output ordering / truncation.
    pub order_by: Option<OrderBy>,
}

impl AggregateQuery {
    /// `SELECT g, COUNT(*), SUM(v) FROM ... GROUP BY g` — the paper's
    /// query (Figure 2).
    pub fn paper(group_by: impl Into<String>, value: impl Into<String>) -> Self {
        Self {
            group_by: group_by.into(),
            group_by_rest: Vec::new(),
            value: value.into(),
            aggregates: vec![AggFn::Count, AggFn::Sum],
            filter: None,
            having: None,
            order_by: None,
        }
    }

    /// Adds a further grouping column (composite GROUP BY).
    pub fn with_group_by_also(mut self, column: impl Into<String>) -> Self {
        self.group_by_rest.push(column.into());
        self
    }

    /// All grouping columns in order (primary first).
    pub fn group_columns(&self) -> Vec<&str> {
        std::iter::once(self.group_by.as_str())
            .chain(self.group_by_rest.iter().map(|s| s.as_str()))
            .collect()
    }

    /// Adds an aggregate.
    pub fn with_aggregate(mut self, agg: AggFn) -> Self {
        if !self.aggregates.contains(&agg) {
            self.aggregates.push(agg);
        }
        self
    }

    /// Adds a WHERE clause.
    pub fn with_filter(mut self, column: impl Into<String>, pred: Predicate) -> Self {
        self.filter = Some((column.into(), pred));
        self
    }

    /// Adds a HAVING clause. The aggregate is added to the SELECT list if
    /// absent (SQL would allow filtering on an unselected aggregate; this
    /// engine materialises it either way).
    pub fn with_having(mut self, agg: AggFn, pred: Predicate) -> Self {
        self.having = Some(Having { agg, pred });
        self.with_aggregate(agg)
    }

    /// Adds an ORDER BY clause.
    pub fn with_order_by(mut self, key: OrderKey, desc: bool) -> Self {
        self.order_by = Some(OrderBy {
            key,
            desc,
            limit: None,
        });
        if let OrderKey::Agg(a) = key {
            return self.with_aggregate(a);
        }
        self
    }

    /// Adds or updates a LIMIT (requires an ORDER BY; defaults to
    /// ascending group order when none was set).
    pub fn with_limit(mut self, k: usize) -> Self {
        let ob = self.order_by.get_or_insert(OrderBy {
            key: OrderKey::Group,
            desc: false,
            limit: None,
        });
        ob.limit = Some(k);
        self
    }

    /// Whether execution needs the extended VGAmin/VGAmax kernel.
    pub fn needs_minmax(&self) -> bool {
        self.aggregates.iter().any(|a| a.needs_minmax())
    }

    /// Renders the query as SQL (for EXPLAIN output).
    pub fn sql(&self, table: &str) -> String {
        let aggs: Vec<String> = self.aggregates.iter().map(|a| a.sql(&self.value)).collect();
        let group_list = self.group_columns().join(", ");
        let mut s = format!("SELECT {group_list}, {} FROM {table}", aggs.join(", "));
        if let Some((col, pred)) = &self.filter {
            s += &format!(" WHERE {col} {}", pred.sql());
        }
        s += &format!(" GROUP BY {}", self.group_columns().join(", "));
        if let Some(h) = &self.having {
            s += &format!(" HAVING {} {}", h.agg.sql(&self.value), h.pred.sql());
        }
        if let Some(ob) = &self.order_by {
            let key = match ob.key {
                OrderKey::Group => self.group_by.clone(),
                OrderKey::Agg(a) => a.sql(&self.value),
            };
            s += &format!(" ORDER BY {key}");
            if ob.desc {
                s += " DESC";
            }
            if let Some(k) = ob.limit {
                s += &format!(" LIMIT {k}");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_query_sql() {
        let q = AggregateQuery::paper("g", "v");
        assert_eq!(q.sql("r"), "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g");
        assert!(!q.needs_minmax());
    }

    #[test]
    fn extended_query_sql() {
        let q = AggregateQuery::paper("g", "v")
            .with_aggregate(AggFn::Min)
            .with_aggregate(AggFn::Max)
            .with_aggregate(AggFn::Avg)
            .with_filter("w", Predicate::NotEqual(9));
        assert_eq!(
            q.sql("r"),
            "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) \
             FROM r WHERE w <> 9 GROUP BY g"
        );
        assert!(q.needs_minmax());
    }

    #[test]
    fn composite_group_by_sql() {
        let q = AggregateQuery::paper("a", "v").with_group_by_also("b");
        assert_eq!(
            q.sql("r"),
            "SELECT a, b, COUNT(*), SUM(v) FROM r GROUP BY a, b"
        );
        assert_eq!(q.group_columns(), vec!["a", "b"]);
    }

    #[test]
    fn with_aggregate_dedups() {
        let q = AggregateQuery::paper("g", "v").with_aggregate(AggFn::Sum);
        assert_eq!(q.aggregates.len(), 2);
    }
}
