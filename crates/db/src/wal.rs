//! The write-ahead log: checksummed, LSN-stamped records in one
//! append-only file per database directory.
//!
//! Every durable write a [`crate::Database`] performs — registration,
//! ingest batch, tombstone DELETE, overwrite UPDATE, transaction
//! commit, `CREATE SNAPSHOT` — lands here as one framed record before
//! the call returns. [`crate::Database::open`] replays the log through
//! the crate-private `recovery` module to reconstruct catalogue,
//! deltas, statistics and version counters; compaction doubles as the
//! **checkpoint** that rewrites the log down to image records (see
//! `rewrite`).
//!
//! ## On-disk format
//!
//! ```text
//! file   := magic record*            magic  = "VAGGWAL1"
//! record := len:u32 crc:u64 lsn:u64 payload[len]
//! ```
//!
//! All integers little-endian. `crc` is an FNV-1a 64 hash over the LSN
//! bytes followed by the payload, so a record misfiled at the wrong LSN
//! fails its checksum too. LSNs are strictly consecutive; the first
//! record's LSN sets the base (a checkpoint rewrite keeps numbering,
//! so LSNs never restart).
//!
//! ## Corruption handling
//!
//! A **torn tail** — a partial frame at EOF, or a checksum mismatch on
//! the *last* record — is what an interrupted write leaves behind:
//! `read_log` keeps every record before it and reports the valid
//! length, and recovery truncates the file there. A checksum mismatch
//! with further records *behind* it, or a non-consecutive LSN, is real
//! corruption and fails recovery with a typed [`WalError`].
//!
//! Durability model: records are buffered and flushed to the OS at
//! every commit boundary (each autocommit write, each `COMMIT`). That
//! survives process crashes — the scenario the recovery tests model —
//! without paying an fsync per statement.

use std::error::Error;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

/// The 8-byte file header every vagg WAL starts with.
pub(crate) const MAGIC: [u8; 8] = *b"VAGGWAL1";

/// Frame overhead in bytes: `len:u32 + crc:u64 + lsn:u64`.
pub(crate) const FRAME: usize = 4 + 8 + 8;

/// The autocommit transaction id: records tagged 0 are applied on
/// replay without waiting for a commit record.
pub(crate) const AUTOCOMMIT: u64 = 0;

/// Why a write-ahead log could not be written or replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WalError {
    /// An underlying filesystem operation failed (the message carries
    /// the OS error).
    Io(String),
    /// The file does not start with the vagg WAL magic — not a log.
    BadMagic,
    /// A record's checksum disagrees with its content and records
    /// *follow* it — mid-log corruption, unrecoverable (a mismatch on
    /// the final record is a torn tail instead, which recovery
    /// truncates).
    BadChecksum {
        /// Byte offset of the corrupt frame.
        offset: u64,
    },
    /// A record's LSN is not the successor of the previous record's —
    /// the log was spliced or rewritten out of order.
    OutOfOrderLsn {
        /// The LSN the sequence required.
        expected: u64,
        /// The LSN the record carries.
        found: u64,
    },
    /// An interrupted write left a partial or checksum-failing frame at
    /// end of file. Recovery keeps everything before `valid_len` and
    /// truncates the tail.
    TornTail {
        /// Byte length of the valid prefix.
        valid_len: u64,
    },
    /// A frame passed its checksum but its payload does not decode —
    /// an encoder/decoder mismatch, not a disk fault.
    Corrupt {
        /// Byte offset of the undecodable frame.
        offset: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::BadMagic => write!(f, "not a vagg write-ahead log (bad magic)"),
            WalError::BadChecksum { offset } => {
                write!(
                    f,
                    "wal checksum mismatch at offset {offset} (mid-log corruption)"
                )
            }
            WalError::OutOfOrderLsn { expected, found } => {
                write!(
                    f,
                    "wal lsn out of order: expected {expected}, found {found}"
                )
            }
            WalError::TornTail { valid_len } => {
                write!(f, "torn wal tail after offset {valid_len}")
            }
            WalError::Corrupt { offset } => {
                write!(f, "undecodable wal record at offset {offset}")
            }
        }
    }
}

impl Error for WalError {}

impl WalError {
    fn io(e: std::io::Error) -> Self {
        WalError::Io(e.to_string())
    }
}

/// One logical WAL record. `txn` 0 ([`AUTOCOMMIT`]) applies immediately
/// on replay; any other id is buffered until its [`WalRecord::Commit`]
/// is seen (or, for sharded records, until the coordinator's commit set
/// vouches for it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalRecord {
    /// A (re-)registration or a checkpoint image: full column content
    /// plus the exact version counters to reinstall.
    Register {
        /// Transaction (or cross-shard group) id.
        txn: u64,
        /// Table name.
        table: String,
        /// Schema version to force on replay.
        schema_version: u64,
        /// Data version to force on replay.
        data_version: u64,
        /// Column name → values.
        columns: Vec<(String, Vec<u32>)>,
    },
    /// One ingested row batch.
    Batch {
        /// Transaction id.
        txn: u64,
        /// Table name.
        table: String,
        /// Column name → values.
        columns: Vec<(String, Vec<u32>)>,
    },
    /// Tombstoned physical rows (resolved before logging).
    Delete {
        /// Transaction id.
        txn: u64,
        /// Table name.
        table: String,
        /// Physical row ids.
        rows: Vec<u32>,
    },
    /// Overwritten physical rows (resolved before logging).
    Update {
        /// Transaction id.
        txn: u64,
        /// Table name.
        table: String,
        /// Physical row ids.
        rows: Vec<u32>,
        /// `(column, value)` assignments applied to every row.
        sets: Vec<(String, u32)>,
    },
    /// Makes every earlier record of `txn` durable and visible.
    Commit {
        /// The committing transaction id.
        txn: u64,
    },
    /// `CREATE SNAPSHOT name` — replay recreates the named version from
    /// the replayed state at this position.
    CreateSnapshot {
        /// The version's name.
        name: String,
    },
    /// A checkpointed named version: frozen content per table, so the
    /// name survives even though its creation predates the checkpoint.
    SnapshotImage {
        /// The version's name.
        name: String,
        /// Per table: `(table, data version at creation, columns)`.
        tables: Vec<FrozenTable>,
    },
}

/// One frozen table inside a [`WalRecord::SnapshotImage`]: `(table,
/// data version at creation, column contents)`.
pub(crate) type FrozenTable = (String, u64, Vec<(String, Vec<u32>)>);

impl WalRecord {
    /// The transaction id the record belongs to (records without write
    /// payload — snapshot records — are autocommit).
    pub(crate) fn txn(&self) -> u64 {
        match self {
            WalRecord::Register { txn, .. }
            | WalRecord::Batch { txn, .. }
            | WalRecord::Delete { txn, .. }
            | WalRecord::Update { txn, .. }
            | WalRecord::Commit { txn } => *txn,
            WalRecord::CreateSnapshot { .. } | WalRecord::SnapshotImage { .. } => AUTOCOMMIT,
        }
    }
}

// ---------------------------------------------------------------------
// Payload encoding: tag byte + length-prefixed fields, little-endian.

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_u32s(out: &mut Vec<u8>, values: &[u32]) {
    put_u32(out, values.len() as u32);
    for &v in values {
        put_u32(out, v);
    }
}

fn put_columns(out: &mut Vec<u8>, columns: &[(String, Vec<u32>)]) {
    put_u32(out, columns.len() as u32);
    for (name, values) in columns {
        put_str(out, name);
        put_u32s(out, values);
    }
}

/// A decode cursor; every getter fails soft (the caller maps the
/// failure to [`WalError::Corrupt`] with the frame offset).
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    fn u32s(&mut self) -> Option<Vec<u32>> {
        let n = self.u32()? as usize;
        // Bounded by the frame length the checksum vouched for.
        if n > self.buf.len().saturating_sub(self.pos) / 4 {
            return None;
        }
        (0..n).map(|_| self.u32()).collect()
    }

    fn columns(&mut self) -> Option<Vec<(String, Vec<u32>)>> {
        let n = self.u32()? as usize;
        (0..n).map(|_| Some((self.str()?, self.u32s()?))).collect()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn encode(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        WalRecord::Register {
            txn,
            table,
            schema_version,
            data_version,
            columns,
        } => {
            out.push(1);
            put_u64(&mut out, *txn);
            put_str(&mut out, table);
            put_u64(&mut out, *schema_version);
            put_u64(&mut out, *data_version);
            put_columns(&mut out, columns);
        }
        WalRecord::Batch {
            txn,
            table,
            columns,
        } => {
            out.push(2);
            put_u64(&mut out, *txn);
            put_str(&mut out, table);
            put_columns(&mut out, columns);
        }
        WalRecord::Delete { txn, table, rows } => {
            out.push(3);
            put_u64(&mut out, *txn);
            put_str(&mut out, table);
            put_u32s(&mut out, rows);
        }
        WalRecord::Update {
            txn,
            table,
            rows,
            sets,
        } => {
            out.push(4);
            put_u64(&mut out, *txn);
            put_str(&mut out, table);
            put_u32s(&mut out, rows);
            put_u32(&mut out, sets.len() as u32);
            for (column, value) in sets {
                put_str(&mut out, column);
                put_u32(&mut out, *value);
            }
        }
        WalRecord::Commit { txn } => {
            out.push(5);
            put_u64(&mut out, *txn);
        }
        WalRecord::CreateSnapshot { name } => {
            out.push(6);
            put_str(&mut out, name);
        }
        WalRecord::SnapshotImage { name, tables } => {
            out.push(7);
            put_str(&mut out, name);
            put_u32(&mut out, tables.len() as u32);
            for (table, data_version, columns) in tables {
                put_str(&mut out, table);
                put_u64(&mut out, *data_version);
                put_columns(&mut out, columns);
            }
        }
    }
    out
}

fn decode(payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cur {
        buf: payload,
        pos: 0,
    };
    let tag = *c.take(1)?.first()?;
    let record = match tag {
        1 => WalRecord::Register {
            txn: c.u64()?,
            table: c.str()?,
            schema_version: c.u64()?,
            data_version: c.u64()?,
            columns: c.columns()?,
        },
        2 => WalRecord::Batch {
            txn: c.u64()?,
            table: c.str()?,
            columns: c.columns()?,
        },
        3 => WalRecord::Delete {
            txn: c.u64()?,
            table: c.str()?,
            rows: c.u32s()?,
        },
        4 => {
            let txn = c.u64()?;
            let table = c.str()?;
            let rows = c.u32s()?;
            let n = c.u32()? as usize;
            let sets = (0..n)
                .map(|_| Some((c.str()?, c.u32()?)))
                .collect::<Option<Vec<_>>>()?;
            WalRecord::Update {
                txn,
                table,
                rows,
                sets,
            }
        }
        5 => WalRecord::Commit { txn: c.u64()? },
        6 => WalRecord::CreateSnapshot { name: c.str()? },
        7 => {
            let name = c.str()?;
            let n = c.u32()? as usize;
            let tables = (0..n)
                .map(|_| Some((c.str()?, c.u64()?, c.columns()?)))
                .collect::<Option<Vec<_>>>()?;
            WalRecord::SnapshotImage { name, tables }
        }
        _ => return None,
    };
    c.done().then_some(record)
}

/// FNV-1a 64 over the LSN bytes followed by the payload.
fn checksum(lsn: u64, payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in lsn.to_le_bytes().iter().chain(payload) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Writer.

/// An open, append-positioned WAL file. Appends buffer in memory;
/// [`WalWriter::flush`] pushes them to the OS — the commit boundary.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    buffer: Vec<u8>,
    next_lsn: u64,
    stats: WalWriterStats,
}

/// Lifetime counters of one [`WalWriter`], folded into
/// [`crate::Database::metrics`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WalWriterStats {
    /// Records framed into the buffer.
    pub(crate) appends: u64,
    /// Flushes that pushed buffered bytes to the OS (the durability
    /// points; empty-buffer flushes are not counted).
    pub(crate) flushes: u64,
    /// Framed bytes written (header + payload).
    pub(crate) bytes: u64,
}

impl WalWriter {
    /// Creates (or truncates to) an empty log and writes the header.
    pub(crate) fn create(path: &Path) -> Result<Self, WalError> {
        Self::create_from(path, 1)
    }

    /// Creates an empty log whose first record will carry `first_lsn` —
    /// how a checkpoint rewrite keeps the LSN sequence running.
    pub(crate) fn create_from(path: &Path, first_lsn: u64) -> Result<Self, WalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(WalError::io)?;
        file.write_all(&MAGIC).map_err(WalError::io)?;
        Ok(Self {
            file,
            buffer: Vec::new(),
            next_lsn: first_lsn,
            stats: WalWriterStats::default(),
        })
    }

    /// Opens an existing, already-validated log for appending;
    /// `next_lsn` is what [`read_log`] reported.
    pub(crate) fn append_to(path: &Path, next_lsn: u64) -> Result<Self, WalError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(WalError::io)?;
        Ok(Self {
            file,
            buffer: Vec::new(),
            next_lsn,
            stats: WalWriterStats::default(),
        })
    }

    /// Frames and buffers one record, returning its LSN. Nothing is
    /// durable until [`WalWriter::flush`].
    pub(crate) fn append(&mut self, record: &WalRecord) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let payload = encode(record);
        self.stats.appends += 1;
        self.stats.bytes += 20 + payload.len() as u64;
        put_u32(&mut self.buffer, payload.len() as u32);
        put_u64(&mut self.buffer, checksum(lsn, &payload));
        put_u64(&mut self.buffer, lsn);
        self.buffer.extend_from_slice(&payload);
        lsn
    }

    /// Pushes every buffered record to the OS — the durability point of
    /// each autocommit write and each transaction `COMMIT`.
    pub(crate) fn flush(&mut self) -> Result<(), WalError> {
        if !self.buffer.is_empty() {
            self.file.write_all(&self.buffer).map_err(WalError::io)?;
            self.file.flush().map_err(WalError::io)?;
            self.buffer.clear();
            self.stats.flushes += 1;
        }
        Ok(())
    }

    /// The LSN the next appended record will carry.
    pub(crate) fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Lifetime append/flush/byte counters of this writer.
    pub(crate) fn stats(&self) -> WalWriterStats {
        self.stats
    }

    /// Seeds the counters from a predecessor writer so
    /// [`WalWriter::stats`] stays cumulative across a checkpoint
    /// rewrite (the checkpoint's own image records are not counted —
    /// they re-state writes already counted when first appended).
    pub(crate) fn carry_stats(&mut self, prior: WalWriterStats) {
        self.stats = prior;
    }
}

// ---------------------------------------------------------------------
// Reader.

/// What [`read_log`] found: the valid records in LSN order, the LSN the
/// next append should carry, and — when an interrupted write left a
/// torn tail — the length to truncate the file to.
#[derive(Debug)]
pub(crate) struct LogContents {
    /// `(lsn, record)` in file order.
    pub records: Vec<(u64, WalRecord)>,
    /// The successor of the last valid record's LSN (the base LSN for
    /// an empty log).
    pub next_lsn: u64,
    /// `Some(valid_len)` when a torn tail was detected; the caller
    /// truncates the file to `valid_len` before appending.
    pub torn: Option<u64>,
}

/// Reads and validates a WAL file front to back. Torn tails are
/// *reported*, not fatal; every other corruption is a typed error.
pub(crate) fn read_log(path: &Path) -> Result<LogContents, WalError> {
    let mut buf = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .map_err(WalError::io)?;
    if buf.len() < MAGIC.len() || buf[..MAGIC.len()] != MAGIC {
        // A file so short it cannot even hold the header is what a
        // crash during creation leaves; anything else is not ours.
        if buf.is_empty() || MAGIC.starts_with(&buf) {
            return Ok(LogContents {
                records: Vec::new(),
                next_lsn: 1,
                torn: Some(0),
            });
        }
        return Err(WalError::BadMagic);
    }
    let mut records = Vec::new();
    let mut offset = MAGIC.len();
    let mut next_lsn = 1u64;
    let mut torn = None;
    while offset < buf.len() {
        let frame_ok = (|| {
            let header = buf.get(offset..offset + FRAME)?;
            let len = u32::from_le_bytes(header[..4].try_into().ok()?) as usize;
            let crc = u64::from_le_bytes(header[4..12].try_into().ok()?);
            let lsn = u64::from_le_bytes(header[12..20].try_into().ok()?);
            let payload = buf.get(offset + FRAME..offset + FRAME + len)?;
            (checksum(lsn, payload) == crc).then_some((len, lsn, payload))
        })();
        let Some((len, lsn, payload)) = frame_ok else {
            // Partial frame or checksum failure at the tail: an
            // interrupted append. Mid-log (impossible here — a bad
            // frame hides everything after it), the distinction is
            // drawn below via the checksum-with-followers case; this
            // uniform path truncates to the last whole record.
            torn = Some(offset as u64);
            break;
        };
        if !records.is_empty() && lsn != next_lsn {
            return Err(WalError::OutOfOrderLsn {
                expected: next_lsn,
                found: lsn,
            });
        }
        let record = decode(payload).ok_or(WalError::Corrupt {
            offset: offset as u64,
        })?;
        records.push((lsn, record));
        next_lsn = lsn + 1;
        offset += FRAME + len;
    }
    // A frame that fails its checksum but is *followed* by an intact
    // frame is mid-log corruption, not a torn tail: probe whether any
    // later position parses as a valid frame.
    if let Some(at) = torn {
        let mut probe = at as usize + 1;
        while probe + FRAME <= buf.len() {
            let ok = (|| {
                let header = buf.get(probe..probe + FRAME)?;
                let len = u32::from_le_bytes(header[..4].try_into().ok()?) as usize;
                let crc = u64::from_le_bytes(header[4..12].try_into().ok()?);
                let lsn = u64::from_le_bytes(header[12..20].try_into().ok()?);
                let payload = buf.get(probe + FRAME..probe + FRAME + len)?;
                (checksum(lsn, payload) == crc).then_some(())
            })();
            if ok.is_some() {
                return Err(WalError::BadChecksum { offset: at });
            }
            probe += 1;
        }
    }
    Ok(LogContents {
        records,
        next_lsn,
        torn,
    })
}

/// Truncates a torn log to its valid prefix — what recovery does with
/// [`LogContents::torn`] before reopening the writer. A truncation to
/// 0 (the header itself was torn) rewrites the header.
pub(crate) fn truncate(path: &Path, valid_len: u64) -> Result<(), WalError> {
    if valid_len < MAGIC.len() as u64 {
        return WalWriter::create(path).map(drop);
    }
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(WalError::io)?;
    file.set_len(valid_len).map_err(WalError::io)
}

/// Atomically replaces the log with `records` (a checkpoint): writes a
/// sibling `.tmp` file, flushes it, renames it over the log, and
/// returns a writer positioned after the images. `first_lsn` continues
/// the pre-checkpoint sequence so the LSN chain never restarts.
pub(crate) fn rewrite(
    path: &Path,
    records: &[WalRecord],
    first_lsn: u64,
) -> Result<WalWriter, WalError> {
    let tmp: PathBuf = path.with_extension("log.tmp");
    let mut writer = WalWriter::create_from(&tmp, first_lsn)?;
    for record in records {
        writer.append(record);
    }
    writer.flush()?;
    drop(writer);
    fs::rename(&tmp, path).map_err(WalError::io)?;
    let next = first_lsn + records.len() as u64;
    WalWriter::append_to(path, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Register {
                txn: 0,
                table: "r".into(),
                schema_version: 1,
                data_version: 1,
                columns: vec![("g".into(), vec![1, 2, 3]), ("v".into(), vec![9, 8, 7])],
            },
            WalRecord::Batch {
                txn: 0,
                table: "r".into(),
                columns: vec![("g".into(), vec![4]), ("v".into(), vec![6])],
            },
            WalRecord::Delete {
                txn: 7,
                table: "r".into(),
                rows: vec![0, 2],
            },
            WalRecord::Update {
                txn: 7,
                table: "r".into(),
                rows: vec![1],
                sets: vec![("v".into(), 99)],
            },
            WalRecord::Commit { txn: 7 },
            WalRecord::CreateSnapshot { name: "pre".into() },
            WalRecord::SnapshotImage {
                name: "pre".into(),
                tables: vec![("r".into(), 3, vec![("g".into(), vec![2, 4])])],
            },
        ]
    }

    fn write_log(path: &Path, records: &[WalRecord]) {
        let mut w = WalWriter::create(path).unwrap();
        for r in records {
            w.append(r);
        }
        w.flush().unwrap();
    }

    #[test]
    fn round_trips_every_record_kind() {
        let dir = TempDir::new("wal-roundtrip");
        let path = dir.path().join("wal.log");
        let records = sample_records();
        write_log(&path, &records);
        let log = read_log(&path).unwrap();
        assert_eq!(log.torn, None);
        assert_eq!(log.next_lsn, records.len() as u64 + 1);
        let decoded: Vec<WalRecord> = log.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(decoded, records);
    }

    #[test]
    fn lsns_are_consecutive_and_resume_after_reopen() {
        let dir = TempDir::new("wal-lsn");
        let path = dir.path().join("wal.log");
        write_log(&path, &sample_records()[..2]);
        let log = read_log(&path).unwrap();
        assert_eq!(
            log.records.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![1, 2]
        );
        let mut w = WalWriter::append_to(&path, log.next_lsn).unwrap();
        assert_eq!(w.append(&WalRecord::Commit { txn: 0 }), 3);
        w.flush().unwrap();
        assert_eq!(read_log(&path).unwrap().records.len(), 3);
    }

    #[test]
    fn torn_partial_frame_is_truncated_to_the_last_valid_record() {
        let dir = TempDir::new("wal-torn-frame");
        let path = dir.path().join("wal.log");
        write_log(&path, &sample_records());
        // Chop mid-way through the final frame: an interrupted append.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        let log = read_log(&path).unwrap();
        let valid = log.torn.expect("tail must be reported torn");
        assert_eq!(log.records.len(), sample_records().len() - 1);
        truncate(&path, valid).unwrap();
        let repaired = read_log(&path).unwrap();
        assert_eq!(repaired.torn, None);
        assert_eq!(repaired.records.len(), sample_records().len() - 1);
    }

    #[test]
    fn bad_checksum_on_the_last_record_is_a_torn_tail() {
        let dir = TempDir::new("wal-torn-crc");
        let path = dir.path().join("wal.log");
        write_log(&path, &sample_records());
        // Flip a payload byte of the final record.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let log = read_log(&path).unwrap();
        assert!(log.torn.is_some());
        assert_eq!(log.records.len(), sample_records().len() - 1);
    }

    #[test]
    fn bad_checksum_mid_log_is_a_hard_error() {
        let dir = TempDir::new("wal-mid-crc");
        let path = dir.path().join("wal.log");
        write_log(&path, &sample_records());
        // Flip one byte inside the *first* record's payload: intact
        // records follow, so this is corruption, not a torn tail.
        let mut bytes = fs::read(&path).unwrap();
        bytes[MAGIC.len() + FRAME + 2] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let e = read_log(&path).unwrap_err();
        assert!(
            matches!(e, WalError::BadChecksum { .. }),
            "expected BadChecksum, got {e:?}"
        );
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn out_of_order_lsn_is_a_hard_error() {
        let dir = TempDir::new("wal-lsn-order");
        let path = dir.path().join("wal.log");
        // Hand-frame two records whose LSNs skip: 1 then 3.
        let mut w = WalWriter::create(&path).unwrap();
        w.append(&WalRecord::Commit { txn: 0 });
        w.next_lsn = 3;
        w.append(&WalRecord::Commit { txn: 0 });
        w.flush().unwrap();
        let e = read_log(&path).unwrap_err();
        assert_eq!(
            e,
            WalError::OutOfOrderLsn {
                expected: 2,
                found: 3
            }
        );
        assert!(e.to_string().contains("out of order"));
    }

    #[test]
    fn empty_and_headerless_files_recover_to_an_empty_log() {
        let dir = TempDir::new("wal-empty");
        let path = dir.path().join("wal.log");
        fs::write(&path, b"").unwrap();
        let log = read_log(&path).unwrap();
        assert_eq!((log.records.len(), log.next_lsn), (0, 1));
        assert_eq!(log.torn, Some(0));
        // A torn header (crash during creation): same outcome.
        fs::write(&path, &MAGIC[..4]).unwrap();
        assert_eq!(read_log(&path).unwrap().torn, Some(0));
        truncate(&path, 0).unwrap();
        assert_eq!(read_log(&path).unwrap().torn, None);
        // A different file's header is firmly rejected.
        fs::write(&path, b"NOTAVAGG").unwrap();
        assert_eq!(read_log(&path).unwrap_err(), WalError::BadMagic);
    }

    #[test]
    fn rewrite_replaces_the_log_and_continues_the_lsn_sequence() {
        let dir = TempDir::new("wal-rewrite");
        let path = dir.path().join("wal.log");
        write_log(&path, &sample_records());
        let image = vec![WalRecord::Register {
            txn: 0,
            table: "r".into(),
            schema_version: 1,
            data_version: 9,
            columns: vec![("g".into(), vec![1])],
        }];
        let pre = read_log(&path).unwrap();
        let mut w = rewrite(&path, &image, pre.next_lsn).unwrap();
        w.append(&WalRecord::Commit { txn: 0 });
        w.flush().unwrap();
        let log = read_log(&path).unwrap();
        assert_eq!(log.records.len(), 2, "images plus the post-rewrite append");
        assert_eq!(log.records[0].0, pre.next_lsn, "lsn chain continues");
        assert_eq!(log.records[0].1, image[0]);
    }
}
