//! Vectorised selection (the WHERE clause).
//!
//! Selections are the other classic vectorisable DBMS operator (Zhou &
//! Ross, SIGMOD'02 — cited by the paper as prior SIMD-DBMS work). The
//! kernel is regular DLP: load a chunk, compare against the constant into
//! a mask, `compress` the survivors of every projected column, advance the
//! output cursor by `popcount`.
//!
//! Table III's comparison class offers only `not equal` and `not equal to
//! zero` (the paper needed nothing more for run detection). Inequality
//! predicates are still expressible by composing with the arithmetic
//! class's `maximum`:
//!
//! * `x > t  ⟺  max(x, t) ≠ t`
//! * `x < t  ⟺  max(x, t) ≠ x`
//!
//! so WHERE/HAVING range selections cost one extra vector op per chunk
//! rather than new comparison hardware. An *equality* selection would
//! need a mask-complement instruction — a natural ISA extension, left as
//! future work exactly as the paper leaves its instruction set minimal.

use vagg_isa::{BinOp, CmpOp, Mreg, Vreg};
use vagg_sim::{Machine, Tok};

/// Predicates expressible in the Table III comparison class (plus the
/// `maximum` compositions described in the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// `column != constant`.
    NotEqual(u32),
    /// `column != 0`.
    NonZero,
    /// `column > constant`, composed as `max(x, t) ≠ t`.
    GreaterThan(u32),
    /// `column < constant`, composed as `max(x, t) ≠ x`.
    LessThan(u32),
}

impl Predicate {
    /// Evaluates the predicate host-side (the oracle semantics).
    pub fn matches(self, x: u32) -> bool {
        match self {
            Predicate::NotEqual(k) => x != k,
            Predicate::NonZero => x != 0,
            Predicate::GreaterThan(t) => x > t,
            Predicate::LessThan(t) => x < t,
        }
    }

    /// The same comparison kind with a different constant — how a bound
    /// parameter lands in a prepared statement's predicate. `<>` with 0
    /// takes the dedicated `NonZero` compare, exactly as the SQL parser
    /// maps the literal.
    pub fn with_constant(self, k: u32) -> Predicate {
        match self {
            Predicate::NotEqual(_) | Predicate::NonZero => {
                if k == 0 {
                    Predicate::NonZero
                } else {
                    Predicate::NotEqual(k)
                }
            }
            Predicate::GreaterThan(_) => Predicate::GreaterThan(k),
            Predicate::LessThan(_) => Predicate::LessThan(k),
        }
    }

    /// Whether **no** value in `[min, max]` can satisfy the predicate —
    /// the zone-map pruning decision. Conservative by construction:
    /// `true` only when the whole closed range provably fails, so a
    /// morsel whose zone bounds are excluded can be skipped without
    /// changing the result.
    pub fn excludes_range(self, min: u32, max: u32) -> bool {
        match self {
            // Only a constant range can fail `!=` everywhere.
            Predicate::NotEqual(k) => min == max && min == k,
            Predicate::NonZero => min == 0 && max == 0,
            Predicate::GreaterThan(t) => max <= t,
            Predicate::LessThan(t) => min >= t,
        }
    }

    /// SQL spelling of the comparison, e.g. `<> 3`.
    pub fn sql(self) -> String {
        match self {
            Predicate::NotEqual(k) => format!("<> {k}"),
            Predicate::NonZero => "<> 0".into(),
            Predicate::GreaterThan(t) => format!("> {t}"),
            Predicate::LessThan(t) => format!("< {t}"),
        }
    }
}

const VDATA: Vreg = Vreg(13);
const VPACK: Vreg = Vreg(14);
const VMAXT: Vreg = Vreg(12);
const M2: Mreg = Mreg(2);

/// Applies `pred` to the column at `src` (length `n`), compacting the
/// survivors of each `(src, dst)` column pair. Returns the surviving row
/// count.
pub fn vector_filter(
    m: &mut Machine,
    src: u64,
    n: usize,
    pred: Predicate,
    columns: &[(u64, u64)],
) -> usize {
    let mvl = m.mvl();
    let mut out_rows = 0usize;
    for start in (0..n).step_by(mvl) {
        let vl = (n - start).min(mvl);
        m.set_vl(vl);
        let lt: Tok = m.s_op(0);
        m.vload_unit(VDATA, src + 4 * start as u64, 4, lt);
        match pred {
            Predicate::NotEqual(k) => {
                m.vcmp_vs(CmpOp::Ne, M2, VDATA, k as u64, None);
            }
            Predicate::NonZero => {
                m.vcmp_vs(CmpOp::Nez, M2, VDATA, 0, None);
            }
            Predicate::GreaterThan(t) => {
                // x > t ⟺ max(x, t) ≠ t.
                m.vbinop_vs(BinOp::Max, VMAXT, VDATA, t as u64, None);
                m.vcmp_vs(CmpOp::Ne, M2, VMAXT, t as u64, None);
            }
            Predicate::LessThan(t) => {
                // x < t ⟺ max(x, t) ≠ x.
                m.vbinop_vs(BinOp::Max, VMAXT, VDATA, t as u64, None);
                m.vcmp_vv(CmpOp::Ne, M2, VMAXT, VDATA, None);
            }
        }
        let (k, kt) = m.mpopcnt(M2);
        m.s_op(kt);
        if k == 0 {
            continue;
        }
        for &(csrc, cdst) in columns {
            m.vload_unit(VDATA, csrc + 4 * start as u64, 4, lt);
            m.vcompress(VPACK, VDATA, M2);
            m.vstore_unit(VPACK, cdst + 4 * out_rows as u64, 4, 0);
        }
        out_rows += k;
    }
    out_rows
}

/// Host-side oracle for [`vector_filter`].
pub fn reference_filter(pred: Predicate, column: &[u32]) -> Vec<bool> {
    column.iter().map(|&x| pred.matches(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_not_equal() {
        let mut m = Machine::paper();
        let g = vec![1u32, 2, 1, 3, 1, 4];
        let v = vec![10u32, 20, 30, 40, 50, 60];
        let gs = m.space_mut().alloc_slice_u32(&g);
        let vs = m.space_mut().alloc_slice_u32(&v);
        let gd = m.space_mut().alloc(4 * 6, 64);
        let vd = m.space_mut().alloc(4 * 6, 64);
        let rows = vector_filter(&mut m, gs, 6, Predicate::NotEqual(1), &[(gs, gd), (vs, vd)]);
        assert_eq!(rows, 3);
        assert_eq!(m.space().read_slice_u32(gd, 3), vec![2, 3, 4]);
        assert_eq!(m.space().read_slice_u32(vd, 3), vec![20, 40, 60]);
    }

    #[test]
    fn filters_nonzero() {
        let mut m = Machine::paper();
        let g = vec![0u32, 5, 0, 6];
        let gs = m.space_mut().alloc_slice_u32(&g);
        let gd = m.space_mut().alloc(16, 64);
        let rows = vector_filter(&mut m, gs, 4, Predicate::NonZero, &[(gs, gd)]);
        assert_eq!(rows, 2);
        assert_eq!(m.space().read_slice_u32(gd, 2), vec![5, 6]);
    }

    #[test]
    fn filter_spans_chunks() {
        let mut m = Machine::paper();
        let n = 300usize;
        let g: Vec<u32> = (0..n as u32).map(|i| i % 5).collect();
        let gs = m.space_mut().alloc_slice_u32(&g);
        let gd = m.space_mut().alloc(4 * n as u64, 64);
        let rows = vector_filter(&mut m, gs, n, Predicate::NotEqual(0), &[(gs, gd)]);
        let expect: Vec<u32> = g.iter().copied().filter(|&x| x != 0).collect();
        assert_eq!(rows, expect.len());
        assert_eq!(m.space().read_slice_u32(gd, rows), expect);
    }

    #[test]
    fn all_rows_filtered_out() {
        let mut m = Machine::paper();
        let g = vec![7u32; 100];
        let gs = m.space_mut().alloc_slice_u32(&g);
        let gd = m.space_mut().alloc(400, 64);
        let rows = vector_filter(&mut m, gs, 100, Predicate::NotEqual(7), &[(gs, gd)]);
        assert_eq!(rows, 0);
    }

    #[test]
    fn filters_greater_and_less_than() {
        let mut m = Machine::paper();
        let g: Vec<u32> = vec![0, 5, 10, 15, 20, 25, 30];
        let gs = m.space_mut().alloc_slice_u32(&g);
        let gd = m.space_mut().alloc(4 * 7, 64);

        let rows = vector_filter(&mut m, gs, 7, Predicate::GreaterThan(15), &[(gs, gd)]);
        assert_eq!(rows, 3);
        assert_eq!(m.space().read_slice_u32(gd, 3), vec![20, 25, 30]);

        let rows = vector_filter(&mut m, gs, 7, Predicate::LessThan(15), &[(gs, gd)]);
        assert_eq!(rows, 3);
        assert_eq!(m.space().read_slice_u32(gd, 3), vec![0, 5, 10]);
    }

    #[test]
    fn comparison_boundaries_are_strict() {
        // The composed predicates must be strict inequalities: the
        // threshold itself never matches.
        let mut m = Machine::paper();
        let g = vec![15u32, 15, 15];
        let gs = m.space_mut().alloc_slice_u32(&g);
        let gd = m.space_mut().alloc(12, 64);
        for pred in [Predicate::GreaterThan(15), Predicate::LessThan(15)] {
            let rows = vector_filter(&mut m, gs, 3, pred, &[(gs, gd)]);
            assert_eq!(rows, 0, "{pred:?}");
        }
        // Edge thresholds: > u32::MAX matches nothing, < 0 matches nothing.
        for pred in [Predicate::GreaterThan(u32::MAX), Predicate::LessThan(0)] {
            let rows = vector_filter(&mut m, gs, 3, pred, &[(gs, gd)]);
            assert_eq!(rows, 0, "{pred:?}");
        }
    }

    #[test]
    fn predicate_sql_spelling() {
        assert_eq!(Predicate::NotEqual(3).sql(), "<> 3");
        assert_eq!(Predicate::NonZero.sql(), "<> 0");
        assert_eq!(Predicate::GreaterThan(9).sql(), "> 9");
        assert_eq!(Predicate::LessThan(2).sql(), "< 2");
    }

    #[test]
    fn oracle_agrees() {
        let col = vec![3u32, 0, 3, 9];
        assert_eq!(
            reference_filter(Predicate::NotEqual(3), &col),
            vec![false, true, false, true]
        );
        assert_eq!(
            reference_filter(Predicate::NonZero, &col),
            vec![true, false, true, true]
        );
    }
}
