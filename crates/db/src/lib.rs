//! # vagg-db
//!
//! A miniature column-store query engine running on the simulated vector
//! machine — the DBMS context the paper's aggregation work targets
//! (§III-A emulates exactly this storage model). It composes the pieces
//! of the reproduction into the system a database developer would use:
//!
//! * [`Table`] — named `u32` columns stored contiguously, with the
//!   sortedness metadata real systems track;
//! * [`AggregateQuery`] — `SELECT g, COUNT/SUM/MIN/MAX/AVG(v) FROM t
//!   [WHERE ...] GROUP BY g[, h, ...]` (composite keys are fused on the
//!   machine and decomposed on readback);
//! * [`filter`] — vectorised selection using Table III's comparison +
//!   compress + popcount instructions;
//! * [`Engine`] — plans with the paper's §V-D adaptive policy (DBMS
//!   sortedness metadata + cardinality from the max-key scan) and executes
//!   on a fresh [`vagg_sim::Machine`], reporting the simulated cost;
//! * [`sql`] / [`Database`] — a SQL front end for exactly the Figure 2
//!   query family, so the paper's motivating statement is runnable text.
//!
//! ```
//! use vagg_db::{AggregateQuery, Engine, Table};
//!
//! let t = Table::new("people")
//!     .with_column("age", vec![4, 3, 4, 5, 3])
//!     .with_column("earnings", vec![24, 11, 24, 10, 15]);
//! let out = Engine::new()
//!     .execute(&t, &AggregateQuery::paper("age", "earnings"))
//!     .unwrap();
//! assert_eq!(out.rows.len(), 3);
//! println!("{}", out.report.plan);
//! ```

#![warn(missing_docs)]

pub mod database;
pub mod engine;
pub mod filter;
pub mod query;
pub mod sql;
pub mod table;

pub use database::{Database, SqlError};
pub use engine::{
    CardinalityEstimation, Engine, ExecutionReport, QueryOutput, Row,
};
pub use filter::{reference_filter, vector_filter, Predicate};
pub use query::{AggFn, AggregateQuery, Having, OrderBy, OrderKey};
pub use sql::{parse, ParseSqlError, SqlQuery};
pub use table::{ColumnMeta, ParseCsvError, Table};
