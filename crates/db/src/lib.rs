//! # vagg-db
//!
//! A miniature column-store query engine running on the simulated vector
//! machine — the DBMS context the paper's aggregation work targets
//! (§III-A emulates exactly this storage model). The public API follows
//! the plan/execute split every real column-store uses:
//!
//! * [`Table`] — named `u32` columns stored contiguously (`Arc`-shared),
//!   with the sortedness metadata real systems track;
//! * [`AggregateQuery`] — `SELECT g, COUNT/SUM/MIN/MAX/AVG(v) FROM t
//!   [WHERE ...] GROUP BY g[, h, ...]` (composite keys are fused on the
//!   machine and decomposed on readback);
//! * [`Engine::plan`] — the paper's §V-D adaptive policy as a *planning*
//!   decision: DBMS metadata (sortedness, cardinality estimate) becomes a
//!   typed [`QueryPlan`] of [`PlanStep`]s, inspectable via
//!   [`QueryPlan::explain`] — or a typed [`PlanError`];
//! * [`Session`] — a long-lived execution context owning one
//!   [`vagg_sim::Machine`]: `session.run(&plan)` executes plans
//!   back-to-back on the same machine, reporting per-query cycle deltas;
//! * [`filter`] — vectorised selection using Table III's comparison +
//!   compress + popcount instructions;
//! * [`sql`] / [`Database`] — a SQL front end (catalogue + session) for
//!   exactly the Figure 2 query family, including `EXPLAIN SELECT ...`
//!   and `?` placeholders via [`Database::prepare`];
//! * the serving layer — a [`PlanCache`] keyed by normalized query
//!   shape (hit/miss counters, LRU eviction, invalidation on
//!   re-register), [`PreparedStatement`]s that plan once and bind
//!   parameters per execution, a [`SharedCatalogue`] serving many
//!   concurrent sessions, and a [`ShardedDatabase`] that partitions
//!   rows across N shards, runs their plans as stealable morsels on a
//!   persistent worker pool (the [`Executor`]), merges
//!   [`vagg_core::PartialAggregate`]s — composite `GROUP BY` included,
//!   via a query-scoped [`KeyDictionary`];
//! * the write path — `INSERT INTO ... VALUES` and the bulk
//!   [`Database::append_rows`] API feed per-table [`DeltaStore`]s
//!   (append-only batches over the immutable base columns), live
//!   [`TableStats`] maintained incrementally (min/max, sortedness,
//!   sampled distinct estimate), a *data* version distinct from the
//!   schema version, threshold-triggered [compaction](CompactionPolicy),
//!   and plan reconciliation: cached plans survive ingest by rebasing
//!   onto the new columns unless the drifted statistics flip the §V-D
//!   algorithm choice, in which case the plan cache invalidates them
//!   and [`PreparedStatement::replans`] increments;
//! * the snapshot-first read path — **every** read happens at an MVCC
//!   [`Snapshot`]: `run_sql` captures a snapshot-of-now per statement,
//!   [`Database::snapshot`] / [`SharedCatalogue::snapshot`] /
//!   [`ShardedDatabase::snapshot`] pin explicit point-in-time cuts
//!   served by [`Database::run_sql_at`] and
//!   [`PreparedStatement::execute_at`] (plans pinned to the snapshot's
//!   statistics), SQL `BEGIN READ ONLY` / `COMMIT` bracket a session
//!   onto one snapshot, and compaction defers delta retirement while
//!   pins are live (epoch/refcount GC, observable via
//!   [`SnapshotStats`]);
//! * durability — [`Database::open`] / [`ShardedDatabase::open`] put
//!   the engine on disk behind a checksummed, LSN-stamped write-ahead
//!   log ([`wal`]) replayed on reopen to the exact committed state;
//!   write transactions (`BEGIN` … `COMMIT`/`ROLLBACK`) become durable
//!   atomically under one commit record, `DELETE`/`UPDATE` tombstone
//!   and overwrite rows in the delta (physically dropped at
//!   compaction, which doubles as the WAL checkpoint), and
//!   `CREATE SNAPSHOT name` / `AS OF name` / `AS OF data_version N`
//!   give named, crash-surviving time travel — torn log tails are
//!   truncated, real corruption surfaces as typed [`WalError`]s;
//! * observability — `EXPLAIN ANALYZE SELECT ...` executes with a
//!   [`QueryTrace`] span tree threaded through the engine (per-step
//!   rows and simulated cycles, per-morsel worker/steal/queue-wait
//!   spans, bit-identical rows to the untraced run), and every
//!   catalogue owns a [`MetricsRegistry`] snapshotted by
//!   [`Database::metrics`] — query/ingest/cache/WAL/executor counters,
//!   a cycle histogram and a bounded [slow-query ring](SlowQuery).
//!
//! ## Snapshot reads under ingest
//!
//! ```
//! use vagg_db::{Database, SqlOutcome, Table};
//!
//! let mut db = Database::new();
//! db.register(
//!     Table::new("r")
//!         .with_column("g", vec![1, 2, 1])
//!         .with_column("v", vec![10, 20, 30]),
//! );
//! let snap = db.snapshot(); // point-in-time cut of every table
//! db.run_sql("INSERT INTO r (g, v) VALUES (3, 40)")?;
//! let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";
//! let at = match db.run_sql_at(&snap, sql)? {
//!     SqlOutcome::Rows(out) => out.rows.len(),
//!     other => unreachable!("SELECT returns rows: {other:?}"),
//! };
//! assert_eq!(at, 2, "the snapshot never sees the insert");
//! drop(snap); // releases the pins
//! assert_eq!(db.snapshot_stats().live_snapshots, 0);
//! # Ok::<(), vagg_db::SqlError>(())
//! ```
//!
//! ## Ingest and stats-driven re-planning
//!
//! ```
//! use vagg_db::{Database, Table};
//!
//! let mut db = Database::new();
//! db.register(
//!     Table::new("r")
//!         .with_column("g", vec![1, 2, 1])
//!         .with_column("v", vec![10, 20, 30]),
//! );
//! let mut stmt = db.prepare("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")?;
//! stmt.execute(&mut db, &[])?;
//! db.run_sql("INSERT INTO r (g, v) VALUES (2, 40), (3, 50)")?;
//! let out = stmt.execute(&mut db, &[])?; // sees the appended rows
//! assert_eq!(out.rows.len(), 3);
//! assert_eq!(stmt.rebases() + stmt.replans(), 1); // stats refreshed
//! # Ok::<(), vagg_db::SqlError>(())
//! ```
//!
//! ## Plan, inspect, execute
//!
//! ```
//! use vagg_db::{AggregateQuery, Engine, Session, Table};
//!
//! let t = Table::new("people")
//!     .with_column("age", vec![4, 3, 4, 5, 3])
//!     .with_column("earnings", vec![24, 11, 24, 10, 15]);
//!
//! let engine = Engine::new();
//! let plan = engine.plan(&t, &AggregateQuery::paper("age", "earnings"))?;
//! println!("{}", plan.explain()); // the typed plan, rendered
//!
//! let mut session = Session::new();
//! let out = session.run(&plan);           // first query: cold machine
//! let again = session.run(&plan);         // second query: same machine
//! assert_eq!(out.rows.len(), 3);
//! assert_eq!(out.rows, again.rows);
//! assert_eq!(session.queries_run(), 2);
//! # Ok::<(), vagg_db::PlanError>(())
//! ```
//!
//! ## SQL and EXPLAIN
//!
//! ```
//! use vagg_db::{Database, SqlOutcome, Table};
//!
//! let mut db = Database::new();
//! db.register(
//!     Table::new("r")
//!         .with_column("g", vec![1, 2, 1])
//!         .with_column("v", vec![10, 20, 30]),
//! );
//! match db.run_sql("EXPLAIN SELECT g, SUM(v) FROM r GROUP BY g")? {
//!     SqlOutcome::Plan(plan) => println!("{}", plan.explain()),
//!     other => unreachable!("EXPLAIN never executes: {other:?}"),
//! }
//! # Ok::<(), vagg_db::SqlError>(())
//! ```
//!
//! ## Prepare once, execute many, shard wide
//!
//! ```
//! use vagg_db::{ShardedDatabase, Table};
//!
//! let mut db = ShardedDatabase::new(4); // 4 sessions, 4 threads
//! db.register(
//!     Table::new("r")
//!         .with_column("g", (0..64u32).map(|i| i % 5).collect()),
//! );
//! let mut stmt =
//!     db.prepare("SELECT g, COUNT(*) FROM r WHERE g <> ? GROUP BY g")?;
//! let out = db.execute_prepared(&mut stmt, &[0])?;
//! assert_eq!(out.rows.len(), 4); // merged across all shards
//! # Ok::<(), vagg_db::SqlError>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod cancel;
pub mod catalogue;
pub mod database;
pub mod delta;
pub mod engine;
pub mod executor;
pub mod filter;
pub mod ingest;
pub mod join;
pub mod keydict;
pub mod metrics;
pub mod plan;
pub mod prepared;
pub mod query;
mod recovery;
pub mod session;
pub mod shard;
pub mod snapshot;
pub mod sql;
pub mod table;
pub mod tempdir;
pub mod trace;
pub mod wal;

pub use cache::{CacheStats, PlanCache, QueryShape};
pub use cancel::{CancelCause, CancelToken};
pub use catalogue::SharedCatalogue;
pub use database::{Database, ExplainOutput, MutationReceipt, SqlError, SqlOutcome};
pub use delta::{ColumnStats, DeltaStore, TableStats};
pub use engine::{CardinalityEstimation, Engine, ExecutionReport, QueryOutput, Row};
pub use executor::{Executor, ExecutorConfig, ExecutorError, ExecutorStats};
pub use filter::{reference_filter, vector_filter, Predicate};
pub use ingest::{CompactionPolicy, IngestError, IngestReceipt, RowBatch};
pub use join::{JoinPlan, JoinStrategy, PreparedJoin};
pub use keydict::KeyDictionary;
pub use metrics::{MetricsRegistry, MetricsSnapshot, SlowQuery};
pub use plan::{PlanError, PlanStep, QueryPlan, ScanMode};
pub use prepared::PreparedStatement;
pub use query::{AggFn, AggregateQuery, Having, OrderBy, OrderKey};
pub use session::{PartialRun, Session};
pub use shard::{
    ShardedDatabase, ShardedIngestReceipt, ShardedOutput, ShardedSnapshot, ShardedStatement,
};
pub use snapshot::{Snapshot, SnapshotStats};
pub use sql::{
    parse, parse_statement, parse_template, AsOf, DeleteStatement, InsertStatement, JoinClause,
    ParamSlot, ParseSqlError, SqlQuery, SqlTemplate, Statement, UpdateStatement,
};
pub use table::{ColumnMeta, ParseCsvError, Table};
pub use tempdir::TempDir;
pub use trace::{AnalyzedQuery, MorselTrace, QueryTrace, StepRollup, StepTrace, WorkerRollup};
pub use wal::WalError;
