//! A session over a (possibly shared) catalogue — the outermost layer
//! of the mini column-store.
//!
//! A [`Database`] pairs one long-lived [`Session`] (execution: a
//! simulated machine reused across queries) with a handle to a
//! [`SharedCatalogue`] (planning: tables, the [`Engine`], and the
//! shared plan cache). Statements are planned through the catalogue —
//! repeated query shapes hit the [`crate::PlanCache`] — and executed
//! on this session's machine. [`SharedCatalogue::connect`] opens more
//! sessions over the same tables for concurrent serving.
//!
//! ```
//! use vagg_db::{Database, Table};
//!
//! let mut db = Database::new();
//! db.register(
//!     Table::new("people")
//!         .with_column("age", vec![4, 3, 4, 5, 3])
//!         .with_column("earnings", vec![24, 11, 24, 10, 15]),
//! );
//! let out = db.execute_sql(
//!     "SELECT age, COUNT(*), SUM(earnings) FROM people GROUP BY age",
//! )?;
//! assert_eq!(out.rows.len(), 3);
//!
//! // EXPLAIN returns the typed plan without executing anything.
//! let plan = db.explain_sql(
//!     "EXPLAIN SELECT age, COUNT(*), SUM(earnings) FROM people GROUP BY age",
//! )?;
//! println!("{}", plan.explain());
//! # Ok::<(), vagg_db::SqlError>(())
//! ```

use crate::cache::CacheStats;
use crate::catalogue::SharedCatalogue;
use crate::delta::TableStats;
use crate::engine::{Engine, QueryOutput};
use crate::ingest::{IngestError, IngestReceipt, RowBatch};
use crate::plan::{PlanError, QueryPlan};
use crate::prepared::PreparedStatement;
use crate::session::Session;
use crate::snapshot::{Snapshot, SnapshotStats};
use crate::sql::{parse_statement, ParseSqlError, SqlQuery, Statement};
use crate::table::Table;
use std::error::Error;
use std::fmt;

/// Why a SQL statement failed to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SqlError {
    /// The statement did not parse.
    Parse(ParseSqlError),
    /// The `FROM` table is not registered.
    UnknownTable(String),
    /// The planner rejected the query (typed: unknown column, empty
    /// table, AVG predicate...).
    Plan(PlanError),
    /// An `EXPLAIN` statement was passed to [`Database::execute_sql`],
    /// which returns rows; use [`Database::run_sql`] or
    /// [`Database::explain_sql`] for plans.
    ExplainStatement,
    /// An `INSERT` statement was passed to an API that returns rows or
    /// plans ([`Database::execute_sql`], [`Database::explain_sql`],
    /// [`crate::ShardedDatabase::run_sql`]); use [`Database::run_sql`]
    /// (single session) or [`crate::ShardedDatabase::insert_sql`]
    /// (sharded) for ingest.
    InsertStatement,
    /// The write path rejected a batch: the typed reason (unknown,
    /// missing or duplicate column, ragged lengths).
    Ingest(IngestError),
    /// A [`crate::ShardedStatement`] prepared for one shard layout was
    /// executed on a [`crate::ShardedDatabase`] with a different shard
    /// count — the per-shard statements cannot be paired with the
    /// shards. Prepare the statement on the database that executes it.
    ShardMismatch {
        /// Shards the statement was prepared for.
        statement: usize,
        /// Shards the executing database has.
        database: usize,
    },
    /// A write (`INSERT`) was attempted through a read-only view: at an
    /// explicit [`crate::Snapshot`] ([`Database::run_sql_at`]) or
    /// inside a `BEGIN READ ONLY` transaction. Snapshots are immutable
    /// point-in-time cuts; run the write on the live database, outside
    /// the transaction.
    ReadOnly,
    /// `BEGIN READ ONLY` was issued while a transaction is already
    /// open; transactions do not nest. `COMMIT` first.
    NestedTransaction,
    /// `COMMIT` was issued with no open transaction.
    NoOpenTransaction,
    /// A `BEGIN READ ONLY` / `COMMIT` bracket was passed to an API
    /// that cannot manage transaction state
    /// ([`Database::execute_sql`], [`Database::explain_sql`],
    /// [`Database::run_sql_at`], the sharded SQL entry points, …);
    /// use [`Database::run_sql`].
    TransactionStatement,
    /// A [`crate::Snapshot`] cut from one catalogue was used to read
    /// another ([`Database::run_sql_at`],
    /// [`crate::SharedCatalogue::plan_query_at`],
    /// [`crate::PreparedStatement::execute_at`]): the pinned cut
    /// describes tables the target catalogue does not own. Capture the
    /// snapshot from the catalogue that executes it.
    ForeignSnapshot,
    /// A [`crate::ShardedSnapshot`] cut from one shard layout was used
    /// to read a [`crate::ShardedDatabase`] with a different shard
    /// count — the per-shard cuts cannot be paired with the shards.
    SnapshotShardMismatch {
        /// Shards the snapshot was cut from.
        snapshot: usize,
        /// Shards the reading database has.
        database: usize,
    },
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "parse error: {e}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            SqlError::Plan(e) => write!(f, "planning error: {e}"),
            SqlError::ExplainStatement => write!(
                f,
                "EXPLAIN produces a plan, not rows; use run_sql or explain_sql"
            ),
            SqlError::InsertStatement => write!(
                f,
                "INSERT ingests rows and returns no row set or plan; use \
                 run_sql (or ShardedDatabase::insert_sql)"
            ),
            SqlError::Ingest(e) => write!(f, "ingest error: {e}"),
            SqlError::ShardMismatch {
                statement,
                database,
            } => write!(
                f,
                "statement prepared for {statement} shard(s) cannot run \
                 on a {database}-shard database"
            ),
            SqlError::ReadOnly => write!(
                f,
                "snapshots and READ ONLY transactions cannot write; run \
                 INSERT on the live database, outside the transaction"
            ),
            SqlError::NestedTransaction => write!(
                f,
                "a READ ONLY transaction is already open; transactions \
                 do not nest — COMMIT first"
            ),
            SqlError::NoOpenTransaction => {
                write!(f, "COMMIT without an open transaction")
            }
            SqlError::TransactionStatement => write!(
                f,
                "BEGIN READ ONLY / COMMIT manage session transaction \
                 state; use run_sql"
            ),
            SqlError::ForeignSnapshot => write!(
                f,
                "the snapshot was cut from a different catalogue; \
                 capture it from the catalogue that executes it"
            ),
            SqlError::SnapshotShardMismatch { snapshot, database } => write!(
                f,
                "snapshot cut from {snapshot} shard(s) cannot serve \
                 reads on a {database}-shard database"
            ),
        }
    }
}

impl Error for SqlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SqlError::Parse(e) => Some(e),
            SqlError::Plan(e) => Some(e),
            SqlError::Ingest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseSqlError> for SqlError {
    fn from(e: ParseSqlError) -> Self {
        SqlError::Parse(e)
    }
}

impl From<PlanError> for SqlError {
    fn from(e: PlanError) -> Self {
        SqlError::Plan(e)
    }
}

/// What one SQL statement produced.
#[derive(Debug, Clone)]
pub enum SqlOutcome {
    /// A `SELECT` executed on the session.
    Rows(QueryOutput),
    /// An `EXPLAIN SELECT` planned without executing (boxed: a plan
    /// carries column snapshots and is much larger than a row batch).
    Plan(Box<QueryPlan>),
    /// An `INSERT` appended rows through the write path; the receipt
    /// reports the row count, the delta fill and whether the append
    /// tripped a compaction.
    Inserted(IngestReceipt),
    /// A `BEGIN READ ONLY` opened a read-only transaction: the session
    /// captured one snapshot and every statement until `COMMIT` reads
    /// at it.
    TransactionBegun,
    /// A `COMMIT` closed the open read-only transaction and released
    /// its snapshot.
    TransactionCommitted,
}

/// One session over a [`SharedCatalogue`]: planning goes through the
/// catalogue (tables, [`Engine`], shared plan cache), execution runs on
/// this session's own [`Session`] machine.
///
/// Every read happens at a [`Snapshot`]. A bare [`Database::run_sql`]
/// captures a snapshot-of-now per statement; `BEGIN READ ONLY` pins
/// the session to one snapshot until `COMMIT`; and
/// [`Database::run_sql_at`] reads at an explicit snapshot the caller
/// holds — all three are the same read path.
pub struct Database {
    catalogue: SharedCatalogue,
    session: Session,
    /// The open `BEGIN READ ONLY` transaction's snapshot, if any.
    txn: Option<Snapshot>,
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.table_names())
            .field("session", &self.session)
            .field("in_transaction", &self.txn.is_some())
            .finish_non_exhaustive()
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database with the paper's machine configuration.
    pub fn new() -> Self {
        Self::with_engine(Engine::new())
    }

    /// A database with a custom engine (e.g. a different `SimConfig`);
    /// the session machine uses the engine's configuration.
    pub fn with_engine(engine: Engine) -> Self {
        SharedCatalogue::with_engine(engine).connect()
    }

    /// A new session over an existing catalogue (what
    /// [`SharedCatalogue::connect`] returns).
    pub(crate) fn over(catalogue: SharedCatalogue) -> Self {
        let session = Session::with_config(catalogue.engine().config().clone());
        Self {
            catalogue,
            session,
            txn: None,
        }
    }

    /// The catalogue this session plans through. Clone the handle to
    /// open further concurrent sessions over the same tables:
    /// `db.catalogue().connect()`.
    pub fn catalogue(&self) -> &SharedCatalogue {
        &self.catalogue
    }

    /// Registers a table under its own name, replacing any previous table
    /// with that name (the replaced table is returned). Re-registering
    /// invalidates every cached plan for the table — see
    /// [`SharedCatalogue::register`]. Visible to every session sharing
    /// this catalogue.
    pub fn register(&mut self, table: Table) -> Option<Table> {
        self.catalogue.register(table)
    }

    /// Looks up a registered table (a cheap clone: column data is
    /// `Arc`-shared).
    pub fn table(&self, name: &str) -> Option<Table> {
        self.catalogue.table(name)
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.catalogue.table_names()
    }

    /// The execution session (for cumulative cost accounting).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The shared plan cache's counters — hits, misses, evictions and
    /// invalidations across every session of this catalogue.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.catalogue.cache_stats()
    }

    /// Appends a columnar batch of rows to a registered table — the
    /// bulk entry of the write path (see
    /// [`SharedCatalogue::append`]): rows land in the table's delta
    /// store, the live statistics absorb them, the table's *data*
    /// version bumps, and a threshold compaction may fold the delta
    /// into the base. Visible to every session sharing this catalogue.
    ///
    /// ```
    /// use vagg_db::{Database, RowBatch, Table};
    ///
    /// let mut db = Database::new();
    /// db.register(Table::new("r").with_column("g", vec![1, 2]));
    /// let receipt = db.append_rows("r", RowBatch::new().with_column("g", vec![3]))?;
    /// assert_eq!(receipt.rows, 1);
    /// assert_eq!(db.table("r").unwrap().rows(), 3);
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SqlError::UnknownTable`] for unregistered tables and
    /// [`SqlError::Ingest`] for batches that do not fit the schema.
    pub fn append_rows(&mut self, table: &str, batch: RowBatch) -> Result<IngestReceipt, SqlError> {
        self.catalogue.append(table, batch)
    }

    /// The live, incrementally maintained statistics of a registered
    /// table (row count, per-column min/max/sortedness and the sampled
    /// distinct estimate).
    pub fn table_stats(&self, name: &str) -> Option<TableStats> {
        self.catalogue.table_stats(name)
    }

    /// The data version of a registered table — bumped by every
    /// appended batch, reset by (re-)registration.
    pub fn data_version(&self, name: &str) -> Option<u64> {
        self.catalogue.data_version(name)
    }

    /// Captures an immutable point-in-time view of every registered
    /// table (see [`SharedCatalogue::snapshot`]): reads at it stay
    /// repeatable while ingest, compaction and re-registration proceed
    /// on the live catalogue. Dropping the snapshot releases its pins.
    ///
    /// ```
    /// use vagg_db::{Database, SqlOutcome, Table};
    ///
    /// let mut db = Database::new();
    /// db.register(Table::new("r").with_column("g", vec![1, 2, 1]));
    /// let snap = db.snapshot();
    /// db.run_sql("INSERT INTO r (g) VALUES (3), (3)")?;
    /// let at = db.run_sql_at(&snap, "SELECT g, COUNT(*) FROM r GROUP BY g")?;
    /// match at {
    ///     SqlOutcome::Rows(out) => assert_eq!(out.rows.len(), 2), // not 3
    ///     other => unreachable!("SELECT returns rows: {other:?}"),
    /// }
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    pub fn snapshot(&self) -> Snapshot {
        self.catalogue.snapshot()
    }

    /// The snapshot subsystem's observability counters — live pins,
    /// oldest pinned data version, deferred/reclaimed GCs (see
    /// [`SharedCatalogue::snapshot_stats`]).
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.catalogue.snapshot_stats()
    }

    /// Whether a `BEGIN READ ONLY` transaction is open on this session.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// The open read-only transaction's snapshot, for the prepared
    /// statement path to join.
    pub(crate) fn txn_snapshot(&self) -> Option<&Snapshot> {
        self.txn.as_ref()
    }

    /// Plans one SELECT/EXPLAIN query — **the** read path: at the open
    /// transaction's snapshot if one is pinned, else at a
    /// snapshot-of-now.
    fn plan_read(&self, q: &SqlQuery) -> Result<QueryPlan, SqlError> {
        match &self.txn {
            Some(snap) => self.catalogue.plan_query_at(snap, &q.table, &q.query),
            // `plan_query` captures (and releases) a snapshot-of-now
            // internally — the same path, same pins, same cache.
            None => self.catalogue.plan_query(&q.table, &q.query),
        }
    }

    /// Parses and runs one SQL statement: `SELECT` executes on the
    /// session and returns rows, `EXPLAIN SELECT` returns the typed
    /// plan without executing, `INSERT` appends rows through the
    /// write path, and `BEGIN READ ONLY` / `COMMIT` bracket a
    /// read-only transaction. Planning is served from the shared
    /// [`crate::PlanCache`] when the query's shape was seen before.
    ///
    /// Every read happens at a [`Snapshot`]: a bare statement captures
    /// a snapshot-of-now; between `BEGIN READ ONLY` and `COMMIT` all
    /// statements read at the transaction's pinned snapshot, so a
    /// multi-statement report sees one consistent database however
    /// much concurrent ingest lands in between (`INSERT` inside the
    /// transaction is rejected with [`SqlError::ReadOnly`]).
    ///
    /// ```
    /// use vagg_db::{Database, SqlOutcome, Table};
    ///
    /// let mut db = Database::new();
    /// db.register(
    ///     Table::new("r")
    ///         .with_column("g", vec![1, 2, 1])
    ///         .with_column("v", vec![10, 20, 30]),
    /// );
    /// match db.run_sql("SELECT g, SUM(v) FROM r GROUP BY g")? {
    ///     SqlOutcome::Rows(out) => assert_eq!(out.rows.len(), 2),
    ///     other => unreachable!("SELECT executes: {other:?}"),
    /// }
    /// // The same shape with a different literal is a cache hit.
    /// db.run_sql("SELECT g, SUM(v) FROM r WHERE v > 10 GROUP BY g")?;
    /// db.run_sql("SELECT g, SUM(v) FROM r WHERE v > 25 GROUP BY g")?;
    /// assert_eq!(db.plan_cache_stats().hits, 1);
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SqlError::Parse`] for malformed statements,
    /// [`SqlError::UnknownTable`] for unregistered tables, and
    /// [`SqlError::Plan`] (carrying a typed [`PlanError`]) for planning
    /// problems.
    pub fn run_sql(&mut self, sql: &str) -> Result<SqlOutcome, SqlError> {
        match parse_statement(sql)? {
            Statement::Select(q) => {
                let plan = self.plan_read(&q)?;
                Ok(SqlOutcome::Rows(self.session.run(&plan)))
            }
            Statement::Explain(q) => Ok(SqlOutcome::Plan(Box::new(self.plan_read(&q)?))),
            Statement::Insert(ins) => {
                if self.txn.is_some() {
                    return Err(SqlError::ReadOnly);
                }
                let batch =
                    RowBatch::from_rows(&ins.columns, &ins.rows).map_err(SqlError::Ingest)?;
                Ok(SqlOutcome::Inserted(
                    self.catalogue.append(&ins.table, batch)?,
                ))
            }
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(SqlError::NestedTransaction);
                }
                self.txn = Some(self.catalogue.snapshot());
                Ok(SqlOutcome::TransactionBegun)
            }
            Statement::Commit => {
                self.txn.take().ok_or(SqlError::NoOpenTransaction)?;
                Ok(SqlOutcome::TransactionCommitted)
            }
        }
    }

    /// Parses and runs one `SELECT` / `EXPLAIN SELECT` **at an explicit
    /// snapshot**: the statement reads the rows, statistics and plan of
    /// the snapshot's pinned cut, regardless of ingest since. The same
    /// snapshot can serve any number of statements (repeatable reads)
    /// and any session of the same catalogue.
    ///
    /// ```
    /// use vagg_db::{Database, SqlOutcome, Table};
    ///
    /// let mut db = Database::new();
    /// db.register(
    ///     Table::new("r")
    ///         .with_column("g", vec![1, 2, 1])
    ///         .with_column("v", vec![10, 20, 30]),
    /// );
    /// let snap = db.snapshot();
    /// db.run_sql("INSERT INTO r (g, v) VALUES (3, 40)")?;
    /// let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";
    /// let (at, live) = (db.run_sql_at(&snap, sql)?, db.run_sql(sql)?);
    /// match (at, live) {
    ///     (SqlOutcome::Rows(at), SqlOutcome::Rows(live)) => {
    ///         assert_eq!(at.rows.len(), 2);   // the pinned cut
    ///         assert_eq!(live.rows.len(), 3); // the live table
    ///     }
    ///     other => unreachable!("SELECT returns rows: {other:?}"),
    /// }
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// As [`Database::run_sql`], plus [`SqlError::ReadOnly`] for
    /// `INSERT` (snapshots are immutable),
    /// [`SqlError::TransactionStatement`] for `BEGIN`/`COMMIT`
    /// (transaction state belongs to [`Database::run_sql`]), and
    /// [`SqlError::ForeignSnapshot`] if the snapshot was cut from a
    /// different catalogue.
    pub fn run_sql_at(&mut self, snap: &Snapshot, sql: &str) -> Result<SqlOutcome, SqlError> {
        match parse_statement(sql)? {
            Statement::Select(q) => {
                let plan = self.catalogue.plan_query_at(snap, &q.table, &q.query)?;
                Ok(SqlOutcome::Rows(self.session.run(&plan)))
            }
            Statement::Explain(q) => Ok(SqlOutcome::Plan(Box::new(
                self.catalogue.plan_query_at(snap, &q.table, &q.query)?,
            ))),
            Statement::Insert(_) => Err(SqlError::ReadOnly),
            Statement::Begin | Statement::Commit => Err(SqlError::TransactionStatement),
        }
    }

    /// Parses a `SELECT` with `?` placeholders into a reusable
    /// [`PreparedStatement`]: the statement is planned once, and every
    /// [`PreparedStatement::execute`] binds parameters into the cached
    /// plan instead of re-planning — re-planning happens only when the
    /// table is re-registered or the adaptive algorithm choice would
    /// flip.
    ///
    /// ```
    /// use vagg_db::{Database, Table};
    ///
    /// let mut db = Database::new();
    /// db.register(
    ///     Table::new("r")
    ///         .with_column("g", vec![1, 2, 1, 2])
    ///         .with_column("v", vec![10, 20, 30, 40]),
    /// );
    /// let mut stmt =
    ///     db.prepare("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > ? GROUP BY g")?;
    /// let big = stmt.execute(&mut db, &[35])?;
    /// let all = stmt.execute(&mut db, &[0])?;
    /// assert_eq!(big.rows.len(), 1);
    /// assert_eq!(all.rows.len(), 2);
    /// assert_eq!(stmt.replans(), 0, "planned once, executed twice");
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// As [`Database::run_sql`]: parse errors (including a rejected
    /// `EXPLAIN`), unknown tables, and planning errors — all reported
    /// here at prepare time, not at first execution.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement, SqlError> {
        PreparedStatement::prepare(&self.catalogue, sql)
    }

    /// Parses and executes one `SELECT` statement on the session.
    ///
    /// # Errors
    ///
    /// As [`Database::run_sql`], plus [`SqlError::ExplainStatement`] if
    /// the statement is an `EXPLAIN` and [`SqlError::InsertStatement`]
    /// if it is an `INSERT` (rejected *before* any row is appended).
    pub fn execute_sql(&mut self, sql: &str) -> Result<QueryOutput, SqlError> {
        match parse_statement(sql)? {
            Statement::Select(q) => {
                let plan = self.plan_read(&q)?;
                Ok(self.session.run(&plan))
            }
            Statement::Explain(_) => Err(SqlError::ExplainStatement),
            Statement::Insert(_) => Err(SqlError::InsertStatement),
            Statement::Begin | Statement::Commit => Err(SqlError::TransactionStatement),
        }
    }

    /// Plans one statement without executing it. Accepts either a bare
    /// `SELECT` or an `EXPLAIN SELECT`.
    ///
    /// # Errors
    ///
    /// As [`Database::run_sql`], plus [`SqlError::InsertStatement`] for
    /// `INSERT` (ingest has no plan).
    pub fn explain_sql(&self, sql: &str) -> Result<QueryPlan, SqlError> {
        let q = match parse_statement(sql)? {
            Statement::Select(q) | Statement::Explain(q) => q,
            Statement::Insert(_) => return Err(SqlError::InsertStatement),
            Statement::Begin | Statement::Commit => return Err(SqlError::TransactionStatement),
        };
        self.plan_read(&q)
    }

    /// Executes an already-built plan on this session (the prepared
    /// statement path).
    pub(crate) fn run_plan(&mut self, plan: &QueryPlan) -> QueryOutput {
        self.session.run(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanStep;

    fn db() -> Database {
        let mut db = Database::new();
        db.register(
            Table::new("r")
                .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
                .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0]),
        );
        db
    }

    #[test]
    fn executes_the_paper_query() {
        let out = db()
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        assert_eq!(out.rows.len(), 6);
        let r3 = out.rows.iter().find(|r| r.group == 3).unwrap();
        assert_eq!(r3.values, vec![2.0, 7.0]);
    }

    #[test]
    fn where_clause_flows_through() {
        let out = db()
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r WHERE g <> 0 GROUP BY g")
            .unwrap();
        assert!(out.rows.iter().all(|r| r.group != 0));
        assert!(out.report.describe().contains("VectorFilter"));
    }

    #[test]
    fn consecutive_statements_share_the_session_machine() {
        let mut db = db();
        let first = db
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        let second = db
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > 0 GROUP BY g")
            .unwrap();
        assert_eq!(db.session().queries_run(), 2);
        assert_eq!(
            db.session().total_cycles(),
            first.report.cycles + second.report.cycles
        );
    }

    #[test]
    fn explain_returns_a_plan_without_executing() {
        let mut db = db();
        let outcome = db
            .run_sql("EXPLAIN SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        let plan = match outcome {
            SqlOutcome::Plan(p) => p,
            other => panic!("EXPLAIN must not execute: {other:?}"),
        };
        assert_eq!(db.session().queries_run(), 0, "nothing executed");
        assert_eq!(db.session().total_cycles(), 0);
        assert!(plan
            .steps()
            .iter()
            .any(|s| matches!(s, PlanStep::Aggregate(_))));
        assert!(plan.explain().contains("CardinalityScan"));
    }

    #[test]
    fn explain_sql_accepts_bare_selects() {
        let plan = db()
            .explain_sql("SELECT g, SUM(v) FROM r GROUP BY g")
            .unwrap();
        assert_eq!(plan.table(), "r");
        assert_eq!(plan.rows(), 8);
    }

    #[test]
    fn execute_sql_rejects_explain_statements() {
        let e = db()
            .execute_sql("EXPLAIN SELECT g, SUM(v) FROM r GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::ExplainStatement);
    }

    #[test]
    fn unknown_table_is_reported() {
        let e = db()
            .execute_sql("SELECT g, SUM(v) FROM nope GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("nope".into()));
    }

    #[test]
    fn unknown_column_becomes_a_typed_plan_error() {
        let e = db()
            .execute_sql("SELECT g, SUM(missing) FROM r GROUP BY g")
            .unwrap_err();
        assert_eq!(
            e,
            SqlError::Plan(PlanError::UnknownColumn("missing".into()))
        );
        assert!(e.to_string().contains("unknown column"));
        // The typed source chains through std::error::Error.
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn parse_errors_carry_the_source() {
        let e = db()
            .execute_sql("SELECT g, SUM(v) FROM r GROUP BY h")
            .unwrap_err();
        assert!(matches!(e, SqlError::Parse(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn register_replaces_and_returns_previous() {
        let mut d = db();
        let old = d.register(Table::new("r").with_column("g", vec![1]));
        assert!(old.is_some());
        assert_eq!(d.table("r").unwrap().rows(), 1);
        assert_eq!(d.table_names(), vec!["r".to_string()]);
    }

    #[test]
    fn insert_sql_appends_through_the_write_path() {
        let mut db = db();
        let outcome = db
            .run_sql("INSERT INTO r (g, v) VALUES (9, 10), (9, 20);")
            .unwrap();
        let receipt = match outcome {
            SqlOutcome::Inserted(r) => r,
            other => panic!("INSERT must report a receipt: {other:?}"),
        };
        assert_eq!(receipt.rows, 2);
        assert_eq!(receipt.data_version, 2);
        let out = db
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        let r9 = out.rows.iter().find(|r| r.group == 9).unwrap();
        assert_eq!(r9.values, vec![2.0, 30.0]);
        assert_eq!(db.data_version("r"), Some(2));
        assert_eq!(db.table_stats("r").unwrap().rows(), 10);
    }

    #[test]
    fn execute_and_explain_reject_insert_without_side_effects() {
        let mut db = db();
        let e = db
            .execute_sql("INSERT INTO r (g, v) VALUES (1, 2)")
            .unwrap_err();
        assert_eq!(e, SqlError::InsertStatement);
        assert!(e.to_string().contains("insert_sql"));
        let e = db
            .explain_sql("INSERT INTO r (g, v) VALUES (1, 2)")
            .unwrap_err();
        assert_eq!(e, SqlError::InsertStatement);
        // Rejected before any row moved.
        assert_eq!(db.table("r").unwrap().rows(), 8);
        assert_eq!(db.data_version("r"), Some(1));
    }

    #[test]
    fn insert_schema_mismatches_are_typed() {
        use crate::ingest::IngestError;
        let mut db = db();
        let e = db
            .run_sql("INSERT INTO r (g, w) VALUES (1, 2)")
            .unwrap_err();
        assert_eq!(e, SqlError::Ingest(IngestError::UnknownColumn("w".into())));
        let e = db.run_sql("INSERT INTO r (g) VALUES (1)").unwrap_err();
        assert_eq!(e, SqlError::Ingest(IngestError::MissingColumn("v".into())));
        let e = db
            .run_sql("INSERT INTO nope (g, v) VALUES (1, 2)")
            .unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("nope".into()));
    }

    #[test]
    fn table_names_listing_is_sorted_regardless_of_registration_order() {
        let mut db = Database::new();
        for name in ["zulu", "alpha", "mike"] {
            db.register(Table::new(name).with_column("g", vec![1]));
        }
        assert_eq!(db.table_names(), vec!["alpha", "mike", "zulu"]);
        // Re-registration does not disturb the order.
        db.register(Table::new("zulu").with_column("g", vec![2]));
        assert_eq!(db.table_names(), vec!["alpha", "mike", "zulu"]);
    }

    #[test]
    fn read_only_transactions_pin_one_snapshot() {
        let mut writer = db();
        let mut reader = writer.catalogue().connect();
        let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";

        assert!(!reader.in_transaction());
        assert!(matches!(
            reader.run_sql("BEGIN READ ONLY").unwrap(),
            SqlOutcome::TransactionBegun
        ));
        assert!(reader.in_transaction());
        let first = reader.execute_sql(sql).unwrap();

        // Concurrent-session ingest lands mid-transaction...
        writer
            .run_sql("INSERT INTO r (g, v) VALUES (9, 1), (9, 1)")
            .unwrap();
        assert_eq!(writer.table("r").unwrap().rows(), 10);

        // ...but the transaction keeps reading its snapshot.
        let second = reader.execute_sql(sql).unwrap();
        assert_eq!(first.rows, second.rows, "repeatable read");
        assert_eq!(second.rows.len(), 6);

        assert!(matches!(
            reader.run_sql("COMMIT").unwrap(),
            SqlOutcome::TransactionCommitted
        ));
        assert!(!reader.in_transaction());
        // After COMMIT the session reads the live database again.
        let after = reader.execute_sql(sql).unwrap();
        assert_eq!(after.rows.len(), 7);
    }

    #[test]
    fn transaction_state_errors_are_typed() {
        let mut db = db();
        db.run_sql("BEGIN READ ONLY").unwrap();
        assert_eq!(
            db.run_sql("BEGIN READ ONLY").unwrap_err(),
            SqlError::NestedTransaction
        );
        // Writes are rejected inside the read-only transaction and the
        // transaction stays open.
        assert_eq!(
            db.run_sql("INSERT INTO r (g, v) VALUES (1, 2)")
                .unwrap_err(),
            SqlError::ReadOnly
        );
        assert!(db.in_transaction());
        assert_eq!(db.table("r").unwrap().rows(), 8, "nothing appended");
        db.run_sql("COMMIT").unwrap();
        assert_eq!(
            db.run_sql("COMMIT;").unwrap_err(),
            SqlError::NoOpenTransaction
        );
        // APIs that cannot manage transaction state say so.
        assert_eq!(
            db.execute_sql("BEGIN READ ONLY").unwrap_err(),
            SqlError::TransactionStatement
        );
        assert_eq!(
            db.explain_sql("COMMIT").unwrap_err(),
            SqlError::TransactionStatement
        );
    }

    #[test]
    fn run_sql_at_reads_the_pinned_cut_and_rejects_writes() {
        let mut db = db();
        let snap = db.snapshot();
        db.run_sql("INSERT INTO r (g, v) VALUES (9, 1)").unwrap();

        let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";
        let at = match db.run_sql_at(&snap, sql).unwrap() {
            SqlOutcome::Rows(out) => out,
            other => panic!("SELECT returns rows: {other:?}"),
        };
        assert_eq!(at.rows.len(), 6, "the pinned cut");
        match db.run_sql(sql).unwrap() {
            SqlOutcome::Rows(out) => assert_eq!(out.rows.len(), 7, "the live table"),
            other => panic!("SELECT returns rows: {other:?}"),
        }

        assert_eq!(
            db.run_sql_at(&snap, "INSERT INTO r (g, v) VALUES (1, 1)")
                .unwrap_err(),
            SqlError::ReadOnly
        );
        assert_eq!(
            db.run_sql_at(&snap, "BEGIN READ ONLY").unwrap_err(),
            SqlError::TransactionStatement
        );

        // EXPLAIN at the snapshot reports the pinned data version.
        let plan = match db
            .run_sql_at(&snap, "EXPLAIN SELECT g, SUM(v) FROM r GROUP BY g")
            .unwrap()
        {
            SqlOutcome::Plan(p) => p,
            other => panic!("EXPLAIN returns a plan: {other:?}"),
        };
        assert_eq!(plan.data_version(), Some(1));
        assert!(plan.explain().contains("data_version=1"));
    }

    #[test]
    fn snapshots_from_another_catalogue_are_foreign() {
        let mut db1 = db();
        let db2 = Database::new();
        let snap = db2.snapshot();
        let e = db1
            .run_sql_at(&snap, "SELECT g, SUM(v) FROM r GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::ForeignSnapshot);
        assert!(e.to_string().contains("catalogue"));
    }

    #[test]
    fn re_register_invalidates_cached_plans() {
        // A cached plan snapshots the table's columns; re-registering
        // must force a re-plan, not serve the stale snapshot.
        let mut db = db();
        let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";
        let first = db.execute_sql(sql).unwrap();
        assert_eq!(first.rows.len(), 6);
        db.register(
            Table::new("r")
                .with_column("g", vec![9, 9, 9])
                .with_column("v", vec![1, 1, 1]),
        );
        let second = db.execute_sql(sql).unwrap();
        assert_eq!(second.rows.len(), 1, "answers from the new table");
        assert_eq!(second.rows[0].group, 9);
        assert_eq!(second.rows[0].values, vec![3.0, 3.0]);
        let stats = db.plan_cache_stats();
        assert_eq!(stats.hits, 0, "the stale plan never served");
        assert_eq!(stats.invalidations, 1);
    }
}
