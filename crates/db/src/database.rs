//! A named-table catalogue plus one long-lived [`Session`] — the
//! outermost layer of the mini column-store.
//!
//! Statements are planned by the [`Engine`] and executed on the
//! database's session, so back-to-back queries share one simulated
//! machine instead of constructing a fresh one per call.
//!
//! ```
//! use vagg_db::{Database, Table};
//!
//! let mut db = Database::new();
//! db.register(
//!     Table::new("people")
//!         .with_column("age", vec![4, 3, 4, 5, 3])
//!         .with_column("earnings", vec![24, 11, 24, 10, 15]),
//! );
//! let out = db.execute_sql(
//!     "SELECT age, COUNT(*), SUM(earnings) FROM people GROUP BY age",
//! )?;
//! assert_eq!(out.rows.len(), 3);
//!
//! // EXPLAIN returns the typed plan without executing anything.
//! let plan = db.explain_sql(
//!     "EXPLAIN SELECT age, COUNT(*), SUM(earnings) FROM people GROUP BY age",
//! )?;
//! println!("{}", plan.explain());
//! # Ok::<(), vagg_db::SqlError>(())
//! ```

use crate::engine::{Engine, QueryOutput};
use crate::plan::{PlanError, QueryPlan};
use crate::session::Session;
use crate::sql::{parse_statement, ParseSqlError, Statement};
use crate::table::Table;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Why a SQL statement failed to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SqlError {
    /// The statement did not parse.
    Parse(ParseSqlError),
    /// The `FROM` table is not registered.
    UnknownTable(String),
    /// The planner rejected the query (typed: unknown column, empty
    /// table, AVG predicate...).
    Plan(PlanError),
    /// An `EXPLAIN` statement was passed to [`Database::execute_sql`],
    /// which returns rows; use [`Database::run_sql`] or
    /// [`Database::explain_sql`] for plans.
    ExplainStatement,
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "parse error: {e}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            SqlError::Plan(e) => write!(f, "planning error: {e}"),
            SqlError::ExplainStatement => write!(
                f,
                "EXPLAIN produces a plan, not rows; use run_sql or explain_sql"
            ),
        }
    }
}

impl Error for SqlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SqlError::Parse(e) => Some(e),
            SqlError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseSqlError> for SqlError {
    fn from(e: ParseSqlError) -> Self {
        SqlError::Parse(e)
    }
}

impl From<PlanError> for SqlError {
    fn from(e: PlanError) -> Self {
        SqlError::Plan(e)
    }
}

/// What one SQL statement produced.
#[derive(Debug, Clone)]
pub enum SqlOutcome {
    /// A `SELECT` executed on the session.
    Rows(QueryOutput),
    /// An `EXPLAIN SELECT` planned without executing (boxed: a plan
    /// carries column snapshots and is much larger than a row batch).
    Plan(Box<QueryPlan>),
}

/// A catalogue of tables plus an [`Engine`] (planning) and a
/// [`Session`] (execution).
pub struct Database {
    engine: Engine,
    session: Session,
    tables: BTreeMap<String, Table>,
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.table_names())
            .field("session", &self.session)
            .finish_non_exhaustive()
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database with the paper's machine configuration.
    pub fn new() -> Self {
        Self::with_engine(Engine::new())
    }

    /// A database with a custom engine (e.g. a different `SimConfig`);
    /// the session machine uses the engine's configuration.
    pub fn with_engine(engine: Engine) -> Self {
        let session = Session::with_config(engine.config().clone());
        Self {
            engine,
            session,
            tables: BTreeMap::new(),
        }
    }

    /// Registers a table under its own name, replacing any previous table
    /// with that name (the replaced table is returned).
    pub fn register(&mut self, table: Table) -> Option<Table> {
        self.tables.insert(table.name().to_string(), table)
    }

    /// Looks up a registered table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// The execution session (for cumulative cost accounting).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Parses and runs one SQL statement: `SELECT` executes on the
    /// session and returns rows, `EXPLAIN SELECT` returns the typed
    /// plan without executing.
    ///
    /// # Errors
    ///
    /// [`SqlError::Parse`] for malformed statements,
    /// [`SqlError::UnknownTable`] for unregistered tables, and
    /// [`SqlError::Plan`] (carrying a typed [`PlanError`]) for planning
    /// problems.
    pub fn run_sql(&mut self, sql: &str) -> Result<SqlOutcome, SqlError> {
        match parse_statement(sql)? {
            Statement::Select(q) => {
                let plan = self.plan_parsed(&q.table, &q.query)?;
                Ok(SqlOutcome::Rows(self.session.run(&plan)))
            }
            Statement::Explain(q) => Ok(SqlOutcome::Plan(Box::new(
                self.plan_parsed(&q.table, &q.query)?,
            ))),
        }
    }

    /// Parses and executes one `SELECT` statement on the session.
    ///
    /// # Errors
    ///
    /// As [`Database::run_sql`], plus [`SqlError::ExplainStatement`] if
    /// the statement is an `EXPLAIN`.
    pub fn execute_sql(&mut self, sql: &str) -> Result<QueryOutput, SqlError> {
        match self.run_sql(sql)? {
            SqlOutcome::Rows(out) => Ok(out),
            SqlOutcome::Plan(_) => Err(SqlError::ExplainStatement),
        }
    }

    /// Plans one statement without executing it. Accepts either a bare
    /// `SELECT` or an `EXPLAIN SELECT`.
    ///
    /// # Errors
    ///
    /// As [`Database::run_sql`].
    pub fn explain_sql(&self, sql: &str) -> Result<QueryPlan, SqlError> {
        let q = match parse_statement(sql)? {
            Statement::Select(q) | Statement::Explain(q) => q,
        };
        self.plan_parsed(&q.table, &q.query)
    }

    fn plan_parsed(
        &self,
        table: &str,
        query: &crate::query::AggregateQuery,
    ) -> Result<QueryPlan, SqlError> {
        let table = self
            .tables
            .get(table)
            .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
        Ok(self.engine.plan(table, query)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanStep;

    fn db() -> Database {
        let mut db = Database::new();
        db.register(
            Table::new("r")
                .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
                .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0]),
        );
        db
    }

    #[test]
    fn executes_the_paper_query() {
        let out = db()
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        assert_eq!(out.rows.len(), 6);
        let r3 = out.rows.iter().find(|r| r.group == 3).unwrap();
        assert_eq!(r3.values, vec![2.0, 7.0]);
    }

    #[test]
    fn where_clause_flows_through() {
        let out = db()
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r WHERE g <> 0 GROUP BY g")
            .unwrap();
        assert!(out.rows.iter().all(|r| r.group != 0));
        assert!(out.report.describe().contains("VectorFilter"));
    }

    #[test]
    fn consecutive_statements_share_the_session_machine() {
        let mut db = db();
        let first = db
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        let second = db
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > 0 GROUP BY g")
            .unwrap();
        assert_eq!(db.session().queries_run(), 2);
        assert_eq!(
            db.session().total_cycles(),
            first.report.cycles + second.report.cycles
        );
    }

    #[test]
    fn explain_returns_a_plan_without_executing() {
        let mut db = db();
        let outcome = db
            .run_sql("EXPLAIN SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        let plan = match outcome {
            SqlOutcome::Plan(p) => p,
            SqlOutcome::Rows(_) => panic!("EXPLAIN must not execute"),
        };
        assert_eq!(db.session().queries_run(), 0, "nothing executed");
        assert_eq!(db.session().total_cycles(), 0);
        assert!(plan
            .steps()
            .iter()
            .any(|s| matches!(s, PlanStep::Aggregate(_))));
        assert!(plan.explain().contains("CardinalityScan"));
    }

    #[test]
    fn explain_sql_accepts_bare_selects() {
        let plan = db()
            .explain_sql("SELECT g, SUM(v) FROM r GROUP BY g")
            .unwrap();
        assert_eq!(plan.table(), "r");
        assert_eq!(plan.rows(), 8);
    }

    #[test]
    fn execute_sql_rejects_explain_statements() {
        let e = db()
            .execute_sql("EXPLAIN SELECT g, SUM(v) FROM r GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::ExplainStatement);
    }

    #[test]
    fn unknown_table_is_reported() {
        let e = db()
            .execute_sql("SELECT g, SUM(v) FROM nope GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("nope".into()));
    }

    #[test]
    fn unknown_column_becomes_a_typed_plan_error() {
        let e = db()
            .execute_sql("SELECT g, SUM(missing) FROM r GROUP BY g")
            .unwrap_err();
        assert_eq!(
            e,
            SqlError::Plan(PlanError::UnknownColumn("missing".into()))
        );
        assert!(e.to_string().contains("unknown column"));
        // The typed source chains through std::error::Error.
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn parse_errors_carry_the_source() {
        let e = db()
            .execute_sql("SELECT g, SUM(v) FROM r GROUP BY h")
            .unwrap_err();
        assert!(matches!(e, SqlError::Parse(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn register_replaces_and_returns_previous() {
        let mut d = db();
        let old = d.register(Table::new("r").with_column("g", vec![1]));
        assert!(old.is_some());
        assert_eq!(d.table("r").unwrap().rows(), 1);
        assert_eq!(d.table_names(), vec!["r"]);
    }
}
