//! A named-table catalogue with a SQL entry point — the outermost layer
//! of the mini column-store.
//!
//! ```
//! use vagg_db::{Database, Table};
//!
//! let mut db = Database::new();
//! db.register(
//!     Table::new("people")
//!         .with_column("age", vec![4, 3, 4, 5, 3])
//!         .with_column("earnings", vec![24, 11, 24, 10, 15]),
//! );
//! let out = db.execute_sql(
//!     "SELECT age, COUNT(*), SUM(earnings) FROM people GROUP BY age",
//! )?;
//! assert_eq!(out.rows.len(), 3);
//! # Ok::<(), vagg_db::SqlError>(())
//! ```

use crate::engine::{Engine, QueryOutput};
use crate::sql::{parse, ParseSqlError};
use crate::table::Table;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Why a SQL statement failed to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The statement did not parse.
    Parse(ParseSqlError),
    /// The `FROM` table is not registered.
    UnknownTable(String),
    /// The engine rejected the planned query (unknown column, empty
    /// table...).
    Plan(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "parse error: {e}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            SqlError::Plan(e) => write!(f, "planning error: {e}"),
        }
    }
}

impl Error for SqlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SqlError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseSqlError> for SqlError {
    fn from(e: ParseSqlError) -> Self {
        SqlError::Parse(e)
    }
}

/// A catalogue of tables plus an [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct Database {
    engine: Engine,
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// An empty database with the paper's machine configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A database with a custom engine (e.g. a different `SimConfig`).
    pub fn with_engine(engine: Engine) -> Self {
        Self { engine, tables: BTreeMap::new() }
    }

    /// Registers a table under its own name, replacing any previous table
    /// with that name (the replaced table is returned).
    pub fn register(&mut self, table: Table) -> Option<Table> {
        self.tables.insert(table.name().to_string(), table)
    }

    /// Looks up a registered table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Parses and executes one SQL statement.
    ///
    /// # Errors
    ///
    /// [`SqlError::Parse`] for malformed statements, the other variants
    /// for catalogue or planning problems.
    pub fn execute_sql(&self, sql: &str) -> Result<QueryOutput, SqlError> {
        let parsed = parse(sql)?;
        let table = self
            .tables
            .get(&parsed.table)
            .ok_or_else(|| SqlError::UnknownTable(parsed.table.clone()))?;
        self.engine
            .execute(table, &parsed.query)
            .map_err(SqlError::Plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.register(
            Table::new("r")
                .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
                .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0]),
        );
        db
    }

    #[test]
    fn executes_the_paper_query() {
        let out = db()
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        assert_eq!(out.rows.len(), 6);
        let r3 = out.rows.iter().find(|r| r.group == 3).unwrap();
        assert_eq!(r3.values, vec![2.0, 7.0]);
    }

    #[test]
    fn where_clause_flows_through() {
        let out = db()
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r WHERE g <> 0 GROUP BY g")
            .unwrap();
        assert!(out.rows.iter().all(|r| r.group != 0));
        assert!(out.report.plan.contains("VectorFilter"));
    }

    #[test]
    fn unknown_table_is_reported() {
        let e = db()
            .execute_sql("SELECT g, SUM(v) FROM nope GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("nope".into()));
    }

    #[test]
    fn unknown_column_becomes_a_plan_error() {
        let e = db()
            .execute_sql("SELECT g, SUM(missing) FROM r GROUP BY g")
            .unwrap_err();
        assert!(matches!(e, SqlError::Plan(_)));
        assert!(e.to_string().contains("unknown column"));
    }

    #[test]
    fn parse_errors_carry_the_source() {
        let e = db()
            .execute_sql("SELECT g, SUM(v) FROM r GROUP BY h")
            .unwrap_err();
        assert!(matches!(e, SqlError::Parse(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn register_replaces_and_returns_previous() {
        let mut d = db();
        let old = d.register(Table::new("r").with_column("g", vec![1]));
        assert!(old.is_some());
        assert_eq!(d.table("r").unwrap().rows(), 1);
        assert_eq!(d.table_names(), vec!["r"]);
    }
}
