//! A session over a (possibly shared) catalogue — the outermost layer
//! of the mini column-store.
//!
//! A [`Database`] pairs one long-lived [`Session`] (execution: a
//! simulated machine reused across queries) with a handle to a
//! [`SharedCatalogue`] (planning: tables, the [`Engine`], and the
//! shared plan cache). Statements are planned through the catalogue —
//! repeated query shapes hit the [`crate::PlanCache`] — and executed
//! on this session's machine. [`SharedCatalogue::connect`] opens more
//! sessions over the same tables for concurrent serving.
//!
//! ```
//! use vagg_db::{Database, Table};
//!
//! let mut db = Database::new();
//! db.register(
//!     Table::new("people")
//!         .with_column("age", vec![4, 3, 4, 5, 3])
//!         .with_column("earnings", vec![24, 11, 24, 10, 15]),
//! );
//! let out = db.execute_sql(
//!     "SELECT age, COUNT(*), SUM(earnings) FROM people GROUP BY age",
//! )?;
//! assert_eq!(out.rows.len(), 3);
//!
//! // EXPLAIN returns the typed plan without executing anything.
//! let plan = db.explain_sql(
//!     "EXPLAIN SELECT age, COUNT(*), SUM(earnings) FROM people GROUP BY age",
//! )?;
//! println!("{}", plan.explain());
//! # Ok::<(), vagg_db::SqlError>(())
//! ```

use crate::cache::CacheStats;
use crate::cancel::{CancelCause, CancelToken};
use crate::catalogue::{CatOp, SharedCatalogue};
use crate::delta::TableStats;
use crate::engine::{Engine, ExecutionReport, QueryOutput};
use crate::filter::Predicate;
use crate::ingest::{CompactionPolicy, IngestError, IngestReceipt, RowBatch};
use crate::join::{join_local_traced, plan_join, JoinPlan, LocalJoinObs, PreparedJoin};
use crate::metrics::{MetricsSnapshot, SlowQuery};
use crate::plan::{PlanError, PlanStep, QueryPlan};
use crate::prepared::PreparedStatement;
use crate::query::AggregateQuery;
use crate::recovery;
use crate::session::{assemble_rows, PartialRun, Session};
use crate::shard::{host_having, host_order_by};
use crate::snapshot::{Snapshot, SnapshotStats};
use crate::sql::{parse_statement, AsOf, ParseSqlError, SqlQuery, Statement};
use crate::table::Table;
use crate::trace::{AnalyzedQuery, QueryTrace};
use crate::wal::{self, WalError, WalRecord, WalWriter, AUTOCOMMIT};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a SQL statement failed to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SqlError {
    /// The statement did not parse.
    Parse(ParseSqlError),
    /// The `FROM` table is not registered.
    UnknownTable(String),
    /// The planner rejected the query (typed: unknown column, empty
    /// table, AVG predicate...).
    Plan(PlanError),
    /// An `EXPLAIN` statement was passed to [`Database::execute_sql`],
    /// which returns rows; use [`Database::run_sql`] or
    /// [`Database::explain_sql`] for plans.
    ExplainStatement,
    /// An `INSERT` statement was passed to an API that returns rows or
    /// plans ([`Database::execute_sql`], [`Database::explain_sql`],
    /// [`crate::ShardedDatabase::run_sql`]); use [`Database::run_sql`]
    /// (single session) or [`crate::ShardedDatabase::insert_sql`]
    /// (sharded) for ingest.
    InsertStatement,
    /// The write path rejected a batch: the typed reason (unknown,
    /// missing or duplicate column, ragged lengths).
    Ingest(IngestError),
    /// A [`crate::ShardedStatement`] prepared for one shard layout was
    /// executed on a [`crate::ShardedDatabase`] with a different shard
    /// count — the per-shard statements cannot be paired with the
    /// shards. Prepare the statement on the database that executes it.
    ShardMismatch {
        /// Shards the statement was prepared for.
        statement: usize,
        /// Shards the executing database has.
        database: usize,
    },
    /// A write (`INSERT`) was attempted through a read-only view: at an
    /// explicit [`crate::Snapshot`] ([`Database::run_sql_at`]) or
    /// inside a `BEGIN READ ONLY` transaction. Snapshots are immutable
    /// point-in-time cuts; run the write on the live database, outside
    /// the transaction.
    ReadOnly,
    /// `BEGIN` was issued while a transaction is already open;
    /// transactions do not nest. `COMMIT` or `ROLLBACK` first.
    NestedTransaction,
    /// `COMMIT` / `ROLLBACK` was issued with no open transaction.
    NoOpenTransaction,
    /// A `BEGIN READ ONLY` / `COMMIT` bracket was passed to an API
    /// that cannot manage transaction state
    /// ([`Database::execute_sql`], [`Database::explain_sql`],
    /// [`Database::run_sql_at`], the sharded SQL entry points, …);
    /// use [`Database::run_sql`].
    TransactionStatement,
    /// A [`crate::Snapshot`] cut from one catalogue was used to read
    /// another ([`Database::run_sql_at`],
    /// [`crate::SharedCatalogue::plan_query_at`],
    /// [`crate::PreparedStatement::execute_at`]): the pinned cut
    /// describes tables the target catalogue does not own. Capture the
    /// snapshot from the catalogue that executes it.
    ForeignSnapshot,
    /// A [`crate::ShardedSnapshot`] cut from one shard layout was used
    /// to read a [`crate::ShardedDatabase`] with a different shard
    /// count — the per-shard cuts cannot be paired with the shards.
    SnapshotShardMismatch {
        /// Shards the snapshot was cut from.
        snapshot: usize,
        /// Shards the reading database has.
        database: usize,
    },
    /// A write statement that is not an `INSERT` (`DELETE`, `UPDATE`,
    /// `CREATE SNAPSHOT`) was passed to an API that returns rows or
    /// plans; use [`Database::run_sql`] (single session) or
    /// [`crate::ShardedDatabase::mutate_sql`] (sharded).
    MutationStatement,
    /// `CREATE SNAPSHOT` / `AS OF` on a [`crate::ShardedDatabase`]:
    /// named versions and time travel are per-catalogue features, and
    /// freezing each shard independently would not be an atomic
    /// cross-shard state. Capture a [`crate::ShardedSnapshot`] for
    /// consistent cross-shard reads instead.
    ShardedTimeTravel,
    /// A statement/API mismatch around two-table joins: a `JOIN`
    /// statement was passed to a single-table API
    /// ([`Database::explain_sql`], [`Database::prepare`]), or a
    /// single-table statement to a join API
    /// ([`Database::explain_join_sql`], [`Database::prepare_join`]).
    JoinStatement,
    /// The write-ahead log could not be written or replayed (the typed
    /// [`WalError`] carries the reason — torn tail, checksum mismatch,
    /// out-of-order LSN, I/O failure).
    Wal(WalError),
    /// An `AS OF <name>` read (or a duplicate `CREATE SNAPSHOT`)
    /// named a snapshot that does not exist.
    UnknownSnapshot(String),
    /// `CREATE SNAPSHOT` with a name that is already taken — named
    /// versions are immutable; pick a new name.
    SnapshotExists(String),
    /// An `AS OF data_version N` read named a version whose delta
    /// generation a compaction or re-registration has folded away.
    /// `CREATE SNAPSHOT` makes a version durable across compaction.
    VersionUnavailable {
        /// The table read.
        table: String,
        /// The unavailable data version.
        version: u64,
    },
    /// The query's [`crate::CancelToken`] tripped at a morsel boundary
    /// before the answer was complete — the [`CancelCause`] says
    /// whether it was an explicit cancel, a wall-clock timeout, or an
    /// exhausted morsel budget. Any partial work was discarded; the
    /// catalogue is untouched.
    Cancelled(CancelCause),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "parse error: {e}"),
            SqlError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            SqlError::Plan(e) => write!(f, "planning error: {e}"),
            SqlError::ExplainStatement => write!(
                f,
                "EXPLAIN produces a plan, not rows; use run_sql or explain_sql"
            ),
            SqlError::InsertStatement => write!(
                f,
                "INSERT ingests rows and returns no row set or plan; use \
                 run_sql (or ShardedDatabase::insert_sql)"
            ),
            SqlError::Ingest(e) => write!(f, "ingest error: {e}"),
            SqlError::ShardMismatch {
                statement,
                database,
            } => write!(
                f,
                "statement prepared for {statement} shard(s) cannot run \
                 on a {database}-shard database"
            ),
            SqlError::ReadOnly => write!(
                f,
                "snapshots and READ ONLY transactions cannot write; run \
                 INSERT on the live database, outside the transaction"
            ),
            SqlError::NestedTransaction => write!(
                f,
                "a transaction is already open; transactions do not \
                 nest — COMMIT or ROLLBACK first"
            ),
            SqlError::NoOpenTransaction => {
                write!(f, "COMMIT / ROLLBACK without an open transaction")
            }
            SqlError::TransactionStatement => write!(
                f,
                "BEGIN READ ONLY / COMMIT manage session transaction \
                 state; use run_sql"
            ),
            SqlError::ForeignSnapshot => write!(
                f,
                "the snapshot was cut from a different catalogue; \
                 capture it from the catalogue that executes it"
            ),
            SqlError::SnapshotShardMismatch { snapshot, database } => write!(
                f,
                "snapshot cut from {snapshot} shard(s) cannot serve \
                 reads on a {database}-shard database"
            ),
            SqlError::MutationStatement => write!(
                f,
                "DELETE / UPDATE / CREATE SNAPSHOT return receipts, not \
                 rows or plans; use run_sql (or ShardedDatabase::mutate_sql)"
            ),
            SqlError::ShardedTimeTravel => write!(
                f,
                "CREATE SNAPSHOT / AS OF are per-catalogue; a sharded \
                 database cannot freeze an atomic cross-shard state — \
                 capture a ShardedSnapshot for consistent reads"
            ),
            SqlError::JoinStatement => write!(
                f,
                "two-table JOIN statements go through the join APIs \
                 (run_sql executes, explain_join_sql explains, \
                 prepare_join prepares); single-table statements through \
                 explain_sql / prepare"
            ),
            SqlError::Wal(e) => write!(f, "write-ahead log error: {e}"),
            SqlError::UnknownSnapshot(name) => {
                write!(f, "unknown snapshot {name:?}")
            }
            SqlError::SnapshotExists(name) => write!(
                f,
                "snapshot {name:?} already exists; named versions are \
                 immutable — pick a new name"
            ),
            SqlError::VersionUnavailable { table, version } => write!(
                f,
                "data version {version} of table {table:?} is no longer \
                 reconstructible (compacted away); CREATE SNAPSHOT keeps \
                 a version durable"
            ),
            SqlError::Cancelled(cause) => write!(f, "query cancelled: {cause}"),
        }
    }
}

impl Error for SqlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SqlError::Parse(e) => Some(e),
            SqlError::Plan(e) => Some(e),
            SqlError::Ingest(e) => Some(e),
            SqlError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WalError> for SqlError {
    fn from(e: WalError) -> Self {
        SqlError::Wal(e)
    }
}

impl From<ParseSqlError> for SqlError {
    fn from(e: ParseSqlError) -> Self {
        SqlError::Parse(e)
    }
}

impl From<PlanError> for SqlError {
    fn from(e: PlanError) -> Self {
        SqlError::Plan(e)
    }
}

/// What a `DELETE` or `UPDATE` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationReceipt {
    /// Rows tombstoned (`DELETE`) or overwritten (`UPDATE`).
    pub rows: usize,
    /// The table's data version after the mutation (unchanged when no
    /// row matched).
    pub data_version: u64,
}

/// What [`Database::explain_sql`] planned: a single-table aggregate
/// plan, or — when the statement has a `JOIN` clause — the typed join
/// plan with its adaptive build-side and exchange-strategy decision.
#[derive(Debug, Clone)]
pub enum ExplainOutput {
    /// A single-table aggregate [`QueryPlan`].
    Plan(Box<QueryPlan>),
    /// A two-table [`JoinPlan`].
    Join(Box<JoinPlan>),
}

impl ExplainOutput {
    /// The rendered plan, whichever kind it is.
    pub fn explain(&self) -> String {
        match self {
            ExplainOutput::Plan(p) => p.explain(),
            ExplainOutput::Join(j) => j.explain(),
        }
    }

    /// The single-table plan, if the statement had no `JOIN` clause.
    pub fn plan(&self) -> Option<&QueryPlan> {
        match self {
            ExplainOutput::Plan(p) => Some(p),
            ExplainOutput::Join(_) => None,
        }
    }

    /// The join plan, if the statement had a `JOIN` clause.
    pub fn join(&self) -> Option<&JoinPlan> {
        match self {
            ExplainOutput::Plan(_) => None,
            ExplainOutput::Join(j) => Some(j),
        }
    }
}

/// What one SQL statement produced.
#[derive(Debug, Clone)]
pub enum SqlOutcome {
    /// A `SELECT` executed on the session.
    Rows(QueryOutput),
    /// An `EXPLAIN SELECT` planned without executing (boxed: a plan
    /// carries column snapshots and is much larger than a row batch).
    Plan(Box<QueryPlan>),
    /// An `EXPLAIN` of a two-table `JOIN` statement: the adaptive
    /// build-side and exchange-strategy decision, without executing.
    JoinPlan(Box<JoinPlan>),
    /// An `EXPLAIN ANALYZE` executed with tracing on: the rows —
    /// bit-identical to the untraced `SELECT` — plus the
    /// estimated-vs-actual execution trace (see [`AnalyzedQuery`]).
    Analyzed(Box<AnalyzedQuery>),
    /// An `INSERT` appended rows through the write path; the receipt
    /// reports the row count, the delta fill and whether the append
    /// tripped a compaction.
    Inserted(IngestReceipt),
    /// A `DELETE` tombstoned rows.
    Deleted(MutationReceipt),
    /// An `UPDATE` overwrote rows.
    Updated(MutationReceipt),
    /// A write statement inside an open `BEGIN` transaction was
    /// buffered; the count is the transaction's queued statements so
    /// far. Nothing is visible or durable until `COMMIT`.
    Queued(usize),
    /// A `BEGIN` opened a transaction: read-only (the session captured
    /// one snapshot and every statement until `COMMIT` reads at it) or
    /// write (statements buffer until `COMMIT` installs them
    /// atomically).
    TransactionBegun,
    /// A `COMMIT` closed the open transaction — released a read-only
    /// transaction's snapshot, or installed a write transaction's
    /// buffered statements in one atomic step.
    TransactionCommitted,
    /// A `ROLLBACK` discarded the open transaction.
    TransactionRolledBack,
    /// A `CREATE SNAPSHOT` froze the current state under a durable
    /// name.
    SnapshotCreated,
}

/// One write statement buffered inside an open `BEGIN` transaction.
/// `INSERT`s are validated and staged immediately; `DELETE`/`UPDATE`
/// predicates are kept symbolic and resolved to physical rows at
/// `COMMIT`, against the then-committed state.
enum Pending {
    Insert(CatOp),
    Delete {
        table: String,
        filter: Option<(String, Predicate)>,
    },
    Update {
        table: String,
        sets: Vec<(String, u32)>,
        filter: Option<(String, Predicate)>,
    },
}

/// The session's transaction state.
enum TxnState {
    /// No open transaction: every statement autocommits.
    None,
    /// `BEGIN READ ONLY`: all reads at this pinned snapshot.
    Read(Snapshot),
    /// `BEGIN`: writes buffer here until `COMMIT`; reads see the
    /// committed state (the transaction's own writes are not visible
    /// to it before commit).
    Write(Vec<Pending>),
}

/// A durable session's write-ahead log: the open writer plus the log's
/// path (checkpoints rewrite the file in place).
struct Durability {
    log: PathBuf,
    writer: WalWriter,
}

/// One session over a [`SharedCatalogue`]: planning goes through the
/// catalogue (tables, [`Engine`], shared plan cache), execution runs on
/// this session's own [`Session`] machine.
///
/// Every read happens at a [`Snapshot`]. A bare [`Database::run_sql`]
/// captures a snapshot-of-now per statement; `BEGIN READ ONLY` pins
/// the session to one snapshot until `COMMIT`; and
/// [`Database::run_sql_at`] reads at an explicit snapshot the caller
/// holds — all three are the same read path.
///
/// A database opened with [`Database::open`] is additionally
/// **durable**: every write is recorded in a write-ahead log in the
/// database directory before the call returns, and reopening the path
/// replays the log back to exactly the committed pre-crash state (see
/// [`crate::wal`]). Durability is owned by the opening session — write
/// through it, not through extra [`SharedCatalogue::connect`] handles,
/// which would bypass the log.
pub struct Database {
    catalogue: SharedCatalogue,
    session: Session,
    txn: TxnState,
    durability: Option<Durability>,
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.table_names())
            .field("session", &self.session)
            .field("in_transaction", &self.in_transaction())
            .field("durable", &self.durability.is_some())
            .finish_non_exhaustive()
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty database with the paper's machine configuration.
    pub fn new() -> Self {
        Self::with_engine(Engine::new())
    }

    /// A database with a custom engine (e.g. a different `SimConfig`);
    /// the session machine uses the engine's configuration.
    pub fn with_engine(engine: Engine) -> Self {
        SharedCatalogue::with_engine(engine).connect()
    }

    /// A new session over an existing catalogue (what
    /// [`SharedCatalogue::connect`] returns).
    pub(crate) fn over(catalogue: SharedCatalogue) -> Self {
        let session = Session::with_config(catalogue.engine().config().clone());
        Self {
            catalogue,
            session,
            txn: TxnState::None,
            durability: None,
        }
    }

    /// Opens (or creates) a **durable** database at `path`: a directory
    /// holding one write-ahead log. Every write through the returned
    /// session — registration, `INSERT`/`DELETE`/`UPDATE`, transaction
    /// commits, `CREATE SNAPSHOT` — is logged before the call returns;
    /// reopening the same path replays the log and reconstructs the
    /// committed state exactly (uncommitted transactions roll back by
    /// omission). A torn log tail — the signature of a crash mid-append
    /// — is truncated to the last valid record; real corruption
    /// (mid-log checksum failure, out-of-order LSNs) is a typed
    /// [`SqlError::Wal`].
    ///
    /// ```
    /// let dir = vagg_db::TempDir::new("open-doc");
    /// let mut db = vagg_db::Database::open(dir.path())?;
    /// db.register(vagg_db::Table::new("r").with_column("g", vec![1, 2, 1]));
    /// db.run_sql("INSERT INTO r (g) VALUES (2)")?;
    /// drop(db); // crash stand-in
    /// let mut db = vagg_db::Database::open(dir.path())?;
    /// assert_eq!(db.table("r").unwrap().rows(), 4);
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SqlError> {
        Self::open_with(path.as_ref(), &BTreeSet::new())
    }

    /// [`Database::open`] with extra transaction ids to treat as
    /// committed during replay — the sharded coordinator's cross-shard
    /// commit set, which lives in a separate log.
    pub(crate) fn open_with(dir: &Path, extra_committed: &BTreeSet<u64>) -> Result<Self, SqlError> {
        std::fs::create_dir_all(dir).map_err(|e| WalError::Io(e.to_string()))?;
        let log = dir.join("wal.log");
        let mut db = Database::new();
        let writer = if log.exists() {
            let contents = wal::read_log(&log)?;
            if let Some(valid_len) = contents.torn {
                wal::truncate(&log, valid_len)?;
            }
            // Compaction stays off during replay: every compaction that
            // happened live rewrote the log into image records, so no
            // surviving record should re-trip one.
            db.catalogue
                .set_compaction_policy(CompactionPolicy::never());
            recovery::replay(&db.catalogue, &contents.records, extra_committed)?;
            db.catalogue
                .metrics()
                .record_replay(contents.records.len() as u64);
            db.catalogue
                .set_compaction_policy(CompactionPolicy::default());
            WalWriter::append_to(&log, contents.next_lsn)?
        } else {
            WalWriter::create(&log)?
        };
        db.durability = Some(Durability { log, writer });
        Ok(db)
    }

    /// Whether this session owns a write-ahead log (was opened with
    /// [`Database::open`]).
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The catalogue this session plans through. Clone the handle to
    /// open further concurrent sessions over the same tables:
    /// `db.catalogue().connect()`.
    pub fn catalogue(&self) -> &SharedCatalogue {
        &self.catalogue
    }

    /// Registers a table under its own name, replacing any previous table
    /// with that name (the replaced table is returned). Re-registering
    /// invalidates every cached plan for the table — see
    /// [`SharedCatalogue::register`]. Visible to every session sharing
    /// this catalogue.
    ///
    /// On a durable database the registration is recorded in the
    /// write-ahead log before this returns. The signature cannot carry
    /// a WAL error, so a log-write failure here panics — losing a
    /// registration silently would corrupt every later replay.
    pub fn register(&mut self, table: Table) -> Option<Table> {
        let old = self.register_buffered(table, AUTOCOMMIT);
        self.flush_wal()
            .expect("write-ahead log append failed during register");
        old
    }

    /// Registers and buffers the log record under `txn` without
    /// flushing — the sharded coordinator tags all shards' records with
    /// one global transaction id and commits them together.
    pub(crate) fn register_buffered(&mut self, table: Table, txn: u64) -> Option<Table> {
        let name = table.name().to_string();
        let old = self.catalogue.register(table);
        if self.durability.is_some() {
            let (schema_version, data_version) =
                self.catalogue.versions(&name).expect("just registered");
            let content = self.catalogue.table(&name).expect("just registered");
            self.log_record(&WalRecord::Register {
                txn,
                table: name,
                schema_version,
                data_version,
                columns: columns_of(&content),
            });
        }
        old
    }

    /// Looks up a registered table (a cheap clone: column data is
    /// `Arc`-shared).
    pub fn table(&self, name: &str) -> Option<Table> {
        self.catalogue.table(name)
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.catalogue.table_names()
    }

    /// The execution session (for cumulative cost accounting).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The shared plan cache's counters — hits, misses, evictions and
    /// invalidations across every session of this catalogue.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.catalogue.cache_stats()
    }

    /// Appends a columnar batch of rows to a registered table — the
    /// bulk entry of the write path (see
    /// [`SharedCatalogue::append`]): rows land in the table's delta
    /// store, the live statistics absorb them, the table's *data*
    /// version bumps, and a threshold compaction may fold the delta
    /// into the base. Visible to every session sharing this catalogue.
    ///
    /// ```
    /// use vagg_db::{Database, RowBatch, Table};
    ///
    /// let mut db = Database::new();
    /// db.register(Table::new("r").with_column("g", vec![1, 2]));
    /// let receipt = db.append_rows("r", RowBatch::new().with_column("g", vec![3]))?;
    /// assert_eq!(receipt.rows, 1);
    /// assert_eq!(db.table("r").unwrap().rows(), 3);
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SqlError::UnknownTable`] for unregistered tables and
    /// [`SqlError::Ingest`] for batches that do not fit the schema. On
    /// a durable database the batch is logged (and the log flushed)
    /// before this returns; if the append tripped a compaction the log
    /// is checkpointed instead — rewritten as one image per table.
    pub fn append_rows(&mut self, table: &str, batch: RowBatch) -> Result<IngestReceipt, SqlError> {
        let columns: Vec<(String, Vec<u32>)> = if self.durability.is_some() {
            batch
                .columns()
                .map(|(n, v)| (n.to_string(), v.to_vec()))
                .collect()
        } else {
            Vec::new()
        };
        let receipt = self.catalogue.append(table, batch)?;
        if self.durability.is_some() {
            if receipt.compacted {
                // The delta (this batch included) was folded into the
                // base: the checkpoint images capture it, and the old
                // per-batch records are dead weight — rewrite the log.
                self.write_checkpoint()?;
            } else {
                self.log_autocommit(&WalRecord::Batch {
                    txn: AUTOCOMMIT,
                    table: table.to_string(),
                    columns,
                })?;
            }
        }
        Ok(receipt)
    }

    /// The live, incrementally maintained statistics of a registered
    /// table (row count, per-column min/max/sortedness and the sampled
    /// distinct estimate).
    pub fn table_stats(&self, name: &str) -> Option<TableStats> {
        self.catalogue.table_stats(name)
    }

    /// The data version of a registered table — bumped by every
    /// appended batch, reset by (re-)registration.
    pub fn data_version(&self, name: &str) -> Option<u64> {
        self.catalogue.data_version(name)
    }

    /// Captures an immutable point-in-time view of every registered
    /// table (see [`SharedCatalogue::snapshot`]): reads at it stay
    /// repeatable while ingest, compaction and re-registration proceed
    /// on the live catalogue. Dropping the snapshot releases its pins.
    ///
    /// ```
    /// use vagg_db::{Database, SqlOutcome, Table};
    ///
    /// let mut db = Database::new();
    /// db.register(Table::new("r").with_column("g", vec![1, 2, 1]));
    /// let snap = db.snapshot();
    /// db.run_sql("INSERT INTO r (g) VALUES (3), (3)")?;
    /// let at = db.run_sql_at(&snap, "SELECT g, COUNT(*) FROM r GROUP BY g")?;
    /// match at {
    ///     SqlOutcome::Rows(out) => assert_eq!(out.rows.len(), 2), // not 3
    ///     other => unreachable!("SELECT returns rows: {other:?}"),
    /// }
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    pub fn snapshot(&self) -> Snapshot {
        self.catalogue.snapshot()
    }

    /// The snapshot subsystem's observability counters — live pins,
    /// oldest pinned data version, deferred/reclaimed GCs (see
    /// [`SharedCatalogue::snapshot_stats`]).
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.catalogue.snapshot_stats()
    }

    /// Whether a transaction (`BEGIN` or `BEGIN READ ONLY`) is open on
    /// this session.
    pub fn in_transaction(&self) -> bool {
        !matches!(self.txn, TxnState::None)
    }

    /// The open read-only transaction's snapshot, for the prepared
    /// statement path to join.
    pub(crate) fn txn_snapshot(&self) -> Option<&Snapshot> {
        match &self.txn {
            TxnState::Read(snap) => Some(snap),
            _ => None,
        }
    }

    /// Plans a time-travel read: a named version or an explicit data
    /// version, bypassing the shared plan cache (frozen states must
    /// never serve live queries from the cache, or vice versa).
    fn plan_as_of(
        &self,
        table: &str,
        as_of: &AsOf,
        query: &AggregateQuery,
    ) -> Result<QueryPlan, SqlError> {
        match as_of {
            AsOf::DataVersion(n) => {
                let frozen = self.catalogue.table_at_version(table, *n)?;
                self.catalogue
                    .plan_frozen(&frozen, query, *n, format!("data_version@{n}"))
            }
            AsOf::Name(name) => {
                let (version, frozen) = self.catalogue.named_table(name, table)?;
                self.catalogue
                    .plan_frozen(&frozen, query, version, format!("{name}@{version}"))
            }
        }
    }

    /// Plans one SELECT/EXPLAIN query — **the** read path. `AS OF`
    /// names an explicit state and wins outright; otherwise the read
    /// happens at the open read-only transaction's snapshot if one is
    /// pinned, else at a snapshot-of-now (a write transaction's own
    /// buffered statements are not visible to it before `COMMIT`).
    fn plan_read(&self, q: &SqlQuery) -> Result<QueryPlan, SqlError> {
        if let Some(as_of) = &q.as_of {
            return self.plan_as_of(&q.table, as_of, &q.query);
        }
        match &self.txn {
            TxnState::Read(snap) => self.catalogue.plan_query_at(snap, &q.table, &q.query),
            // `plan_query` captures (and releases) a snapshot-of-now
            // internally — the same path, same pins, same cache.
            _ => self.catalogue.plan_query(&q.table, &q.query),
        }
    }

    /// Plans a two-table join at one snapshot cut: both sides'
    /// content, statistics and data versions come from the same
    /// consistent view, so the join never mixes a pre-ingest left with
    /// a post-ingest right.
    fn plan_join_at_snapshot(
        &self,
        snap: &Snapshot,
        q: &SqlQuery,
    ) -> Result<(JoinPlan, Table, Table), SqlError> {
        let join = q.join.as_ref().expect("caller verified a join clause");
        let fetch = |name: &str| -> Result<(Table, TableStats, u64), SqlError> {
            match (
                snap.table(name),
                snap.table_stats(name),
                snap.data_version(name),
            ) {
                (Some(t), Some(s), Some(v)) => Ok((t, s, v)),
                _ => Err(SqlError::UnknownTable(name.to_string())),
            }
        };
        let (lt, ls, lv) = fetch(&q.table)?;
        let (rt, rs, rv) = fetch(&join.table)?;
        let plan = plan_join(
            &q.query, join, &q.table, &lt, &ls, lv, &rt, &rs, rv, 1, None,
        )?;
        Ok((plan, lt, rt))
    }

    /// Plans a two-table join — the join twin of
    /// [`Database::plan_read`]. `AS OF` names an explicit frozen state
    /// for **both** tables and wins outright; otherwise the join reads
    /// at the open read-only transaction's snapshot if one is pinned,
    /// else at a snapshot-of-now covering the whole catalogue (one
    /// atomic cut for both tables).
    fn plan_join_read(&self, q: &SqlQuery) -> Result<(JoinPlan, Table, Table), SqlError> {
        let join = q.join.as_ref().expect("caller verified a join clause");
        if let Some(as_of) = &q.as_of {
            let (lt, lv, rt, rv, label) = match as_of {
                AsOf::DataVersion(n) => {
                    let lt = self.catalogue.table_at_version(&q.table, *n)?;
                    let rt = self.catalogue.table_at_version(&join.table, *n)?;
                    (lt, *n, rt, *n, format!("data_version@{n}"))
                }
                AsOf::Name(name) => {
                    let (lv, lt) = self.catalogue.named_table(name, &q.table)?;
                    let (rv, rt) = self.catalogue.named_table(name, &join.table)?;
                    (lt, lv, rt, rv, name.clone())
                }
            };
            let (ls, rs) = (TableStats::seed(&lt), TableStats::seed(&rt));
            let plan = plan_join(
                &q.query,
                join,
                &q.table,
                &lt,
                &ls,
                lv,
                &rt,
                &rs,
                rv,
                1,
                Some(label),
            )?;
            return Ok((plan, lt, rt));
        }
        let owned;
        let snap = match self.txn_snapshot() {
            Some(snap) => snap,
            None => {
                owned = self.catalogue.snapshot();
                &owned
            }
        };
        self.plan_join_at_snapshot(snap, q)
    }

    /// The snapshot join planner: `AS OF` wins over the snapshot,
    /// matching [`Database::plan_read_at`].
    fn plan_join_read_at(
        &self,
        snap: &Snapshot,
        q: &SqlQuery,
    ) -> Result<(JoinPlan, Table, Table), SqlError> {
        if q.as_of.is_some() {
            return self.plan_join_read(q);
        }
        if !snap.catalogue().is_same(&self.catalogue) {
            return Err(SqlError::ForeignSnapshot);
        }
        self.plan_join_at_snapshot(snap, q)
    }

    /// Plans and executes a two-table join: hash build over the
    /// smaller side, probe, then the ordinary aggregation tail over
    /// the derived rows (see [`crate::join`]).
    fn run_join(&mut self, q: &SqlQuery) -> Result<QueryOutput, SqlError> {
        self.run_join_with(q, None, None)
    }

    /// [`Database::run_join`] with an optional pinned snapshot (the
    /// `run_sql_at` path) and optional tracing (`EXPLAIN ANALYZE`).
    fn run_join_with(
        &mut self,
        q: &SqlQuery,
        snap: Option<&Snapshot>,
        mut trace: Option<&mut QueryTrace>,
    ) -> Result<QueryOutput, SqlError> {
        let (plan, lt, rt) = match snap {
            Some(snap) => self.plan_join_read_at(snap, q)?,
            None => self.plan_join_read(q)?,
        };
        let (derived, obs) = join_local_traced(&plan, &lt, &rt);
        if let Some(t) = trace.as_deref_mut() {
            record_join_obs(t, &plan, &obs);
        }
        self.run_join_tail_with(plan.steps(), plan.query(), &derived, trace)
    }

    /// Runs the aggregation tail of a join over its derived table and
    /// splices the join steps in front of the report's plan steps. An
    /// empty derived table (no key matched) short-circuits to zero
    /// rows — the single-table engine would reject planning it.
    pub(crate) fn run_join_tail(
        &mut self,
        steps: &[PlanStep],
        agg: &AggregateQuery,
        derived: &Table,
    ) -> Result<QueryOutput, SqlError> {
        self.run_join_tail_with(steps, agg, derived, None)
    }

    /// [`Database::run_join_tail`] with optional tracing: the derived
    /// table's aggregate plan folds its estimates and per-step actuals
    /// into the trace after the join's host steps.
    fn run_join_tail_with(
        &mut self,
        steps: &[PlanStep],
        agg: &AggregateQuery,
        derived: &Table,
        trace: Option<&mut QueryTrace>,
    ) -> Result<QueryOutput, SqlError> {
        if derived.rows() == 0 {
            return Ok(QueryOutput {
                rows: Vec::new(),
                report: crate::engine::ExecutionReport {
                    algorithm: None,
                    rows_aggregated: 0,
                    cycles: 0,
                    cpt: 0.0,
                    steps: steps.to_vec(),
                },
            });
        }
        let plan = self.catalogue.engine().plan(derived, agg)?;
        let mut out = match trace {
            Some(t) => {
                t.estimate_plan(&plan);
                let (out, step_traces) = self.session.run_traced(&plan);
                t.record_steps(&step_traces);
                out
            }
            None => self.session.run(&plan),
        };
        let mut all = steps.to_vec();
        all.append(&mut out.report.steps);
        out.report.steps = all;
        Ok(out)
    }

    /// The `EXPLAIN ANALYZE` body: executes the statement exactly as
    /// the plain `SELECT` arm would — same planner, same session, same
    /// snapshot rules — while folding a [`QueryTrace`] of per-step
    /// estimated-vs-actual rows and simulated cycles. Tracing only
    /// reads the cycle counter and host-side lengths, so the returned
    /// rows are bit-identical to the untraced statement.
    fn analyze(
        &mut self,
        q: &SqlQuery,
        sql: &str,
        snap: Option<&Snapshot>,
    ) -> Result<AnalyzedQuery, SqlError> {
        let mut trace = QueryTrace::new(sql.trim().to_string());
        let output = if q.join.is_some() {
            self.run_join_with(q, snap, Some(&mut trace))?
        } else {
            let plan = match snap {
                Some(snap) => self.plan_read_at(snap, q)?,
                None => self.plan_read(q)?,
            };
            trace.estimate_plan(&plan);
            let (out, step_traces) = self.session.run_traced(&plan);
            trace.record_steps(&step_traces);
            out
        };
        trace.cycles = output.report.cycles;
        trace.rows = output.rows.len() as u64;
        self.note_query(sql, &output);
        self.catalogue.metrics().record_traced_query();
        Ok(AnalyzedQuery { output, trace })
    }

    /// Folds one finished query into the catalogue's metrics registry
    /// (counters, cycle histogram, slow-query ring).
    fn note_query(&self, sql: &str, out: &QueryOutput) {
        self.catalogue.metrics().record_query(
            sql.trim(),
            out.report.cycles,
            out.rows.len() as u64,
            out.report.steps.len(),
        );
    }

    /// Parses and runs one SQL statement: `SELECT` executes on the
    /// session and returns rows, `EXPLAIN SELECT` returns the typed
    /// plan without executing, `EXPLAIN ANALYZE SELECT` executes with
    /// tracing on and returns [`SqlOutcome::Analyzed`] (the rows plus
    /// the per-step span tree), `INSERT` appends rows through the
    /// write path, `DELETE` / `UPDATE` tombstone / overwrite matching
    /// rows, `CREATE SNAPSHOT` freezes the current state under a
    /// durable name (readable later with `AS OF <name>`), and
    /// `BEGIN [READ ONLY]` / `COMMIT` / `ROLLBACK` bracket
    /// transactions. Planning is served from the shared
    /// [`crate::PlanCache`] when the query's shape was seen before.
    ///
    /// Every read happens at a [`Snapshot`]: a bare statement captures
    /// a snapshot-of-now; between `BEGIN READ ONLY` and `COMMIT` all
    /// statements read at the transaction's pinned snapshot, so a
    /// multi-statement report sees one consistent database however
    /// much concurrent ingest lands in between (writes inside the
    /// transaction are rejected with [`SqlError::ReadOnly`]).
    ///
    /// Between a bare `BEGIN` and `COMMIT`, write statements buffer
    /// ([`SqlOutcome::Queued`]) and install atomically at `COMMIT`:
    /// other sessions see all of the transaction or none of it, and on
    /// a durable database the commit record makes it all-or-nothing
    /// across a crash too. Reads inside a write transaction see the
    /// committed state — the transaction's own buffered writes are not
    /// visible to it before `COMMIT`, and `DELETE` / `UPDATE`
    /// predicates are resolved at `COMMIT` time. `ROLLBACK` discards
    /// the buffer.
    ///
    /// `SELECT ... FROM t AS OF <name>` / `AS OF data_version N` reads
    /// a named or numbered frozen version regardless of transaction
    /// state — time travel names an explicit state, so it bypasses the
    /// snapshot machinery (and the plan cache).
    ///
    /// ```
    /// use vagg_db::{Database, SqlOutcome, Table};
    ///
    /// let mut db = Database::new();
    /// db.register(
    ///     Table::new("r")
    ///         .with_column("g", vec![1, 2, 1])
    ///         .with_column("v", vec![10, 20, 30]),
    /// );
    /// match db.run_sql("SELECT g, SUM(v) FROM r GROUP BY g")? {
    ///     SqlOutcome::Rows(out) => assert_eq!(out.rows.len(), 2),
    ///     other => unreachable!("SELECT executes: {other:?}"),
    /// }
    /// // The same shape with a different literal is a cache hit.
    /// db.run_sql("SELECT g, SUM(v) FROM r WHERE v > 10 GROUP BY g")?;
    /// db.run_sql("SELECT g, SUM(v) FROM r WHERE v > 25 GROUP BY g")?;
    /// assert_eq!(db.plan_cache_stats().hits, 1);
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SqlError::Parse`] for malformed statements,
    /// [`SqlError::UnknownTable`] for unregistered tables, and
    /// [`SqlError::Plan`] (carrying a typed [`PlanError`]) for planning
    /// problems.
    pub fn run_sql(&mut self, sql: &str) -> Result<SqlOutcome, SqlError> {
        match parse_statement(sql)? {
            Statement::Select(q) => {
                if q.join.is_some() {
                    let out = self.run_join(&q)?;
                    self.note_query(sql, &out);
                    return Ok(SqlOutcome::Rows(out));
                }
                let plan = self.plan_read(&q)?;
                let out = self.session.run(&plan);
                self.note_query(sql, &out);
                Ok(SqlOutcome::Rows(out))
            }
            Statement::ExplainAnalyze(q) => {
                Ok(SqlOutcome::Analyzed(Box::new(self.analyze(&q, sql, None)?)))
            }
            Statement::Explain(q) => {
                if q.join.is_some() {
                    return Ok(SqlOutcome::JoinPlan(Box::new(self.plan_join_read(&q)?.0)));
                }
                Ok(SqlOutcome::Plan(Box::new(self.plan_read(&q)?)))
            }
            Statement::Insert(ins) => {
                let batch =
                    RowBatch::from_rows(&ins.columns, &ins.rows).map_err(SqlError::Ingest)?;
                match &mut self.txn {
                    TxnState::Read(_) => Err(SqlError::ReadOnly),
                    TxnState::Write(_) => {
                        // Validate against the schema now (typed errors
                        // at the statement, not at COMMIT), then stage.
                        let table = self
                            .catalogue
                            .table(&ins.table)
                            .ok_or_else(|| SqlError::UnknownTable(ins.table.clone()))?;
                        batch
                            .validate(&table.column_names())
                            .map_err(SqlError::Ingest)?;
                        self.queue(Pending::Insert(CatOp::Append {
                            table: ins.table,
                            batch,
                        }))
                    }
                    TxnState::None => {
                        Ok(SqlOutcome::Inserted(self.append_rows(&ins.table, batch)?))
                    }
                }
            }
            Statement::Delete(del) => match &mut self.txn {
                TxnState::Read(_) => Err(SqlError::ReadOnly),
                TxnState::Write(_) => {
                    self.check_table(&del.table)?;
                    self.queue(Pending::Delete {
                        table: del.table,
                        filter: del.filter,
                    })
                }
                TxnState::None => self.autocommit_delete(&del.table, del.filter.as_ref()),
            },
            Statement::Update(upd) => match &mut self.txn {
                TxnState::Read(_) => Err(SqlError::ReadOnly),
                TxnState::Write(_) => {
                    self.check_table(&upd.table)?;
                    self.queue(Pending::Update {
                        table: upd.table,
                        sets: upd.sets,
                        filter: upd.filter,
                    })
                }
                TxnState::None => self.autocommit_update(&upd.table, upd.sets, upd.filter.as_ref()),
            },
            Statement::CreateSnapshot(name) => match &self.txn {
                // A read-only transaction cannot write; a write
                // transaction's CREATE SNAPSHOT applies immediately to
                // the *committed* state — consistent with its reads.
                TxnState::Read(_) => Err(SqlError::ReadOnly),
                _ => {
                    self.catalogue.create_named(&name)?;
                    self.log_autocommit(&WalRecord::CreateSnapshot { name })?;
                    Ok(SqlOutcome::SnapshotCreated)
                }
            },
            Statement::Begin { read_only } => {
                if self.in_transaction() {
                    return Err(SqlError::NestedTransaction);
                }
                self.txn = if read_only {
                    TxnState::Read(self.catalogue.snapshot())
                } else {
                    TxnState::Write(Vec::new())
                };
                Ok(SqlOutcome::TransactionBegun)
            }
            Statement::Commit => match std::mem::replace(&mut self.txn, TxnState::None) {
                TxnState::None => Err(SqlError::NoOpenTransaction),
                TxnState::Read(_) => Ok(SqlOutcome::TransactionCommitted),
                TxnState::Write(pending) => self.commit_write_txn(pending),
            },
            Statement::Rollback => match std::mem::replace(&mut self.txn, TxnState::None) {
                TxnState::None => Err(SqlError::NoOpenTransaction),
                _ => Ok(SqlOutcome::TransactionRolledBack),
            },
        }
    }

    /// [`Database::run_sql`] under a [`CancelToken`] — the
    /// single-session cancellation surface (see [`crate::cancel`]).
    /// A plain `SELECT` is morselized: its plan runs in morsel-sized
    /// row ranges with the token checked before each one, the range
    /// partials merge exactly like the sharded executor's (bit-identical
    /// rows), and a tripped token surfaces
    /// [`SqlError::Cancelled`] within one morsel's work instead of
    /// running the query to completion. Joins and write statements
    /// check the token at statement boundaries only (their kernels are
    /// host-side and short); cancelled queries are counted in
    /// [`Database::metrics`].
    ///
    /// # Errors
    ///
    /// As [`Database::run_sql`], plus [`SqlError::Cancelled`] carrying
    /// the [`CancelCause`].
    pub fn run_sql_cancellable(
        &mut self,
        sql: &str,
        token: &CancelToken,
    ) -> Result<SqlOutcome, SqlError> {
        let out = self.run_sql_governed(sql, token);
        if matches!(out, Err(SqlError::Cancelled(_))) {
            self.catalogue.metrics().record_cancelled();
        }
        out
    }

    fn run_sql_governed(&mut self, sql: &str, token: &CancelToken) -> Result<SqlOutcome, SqlError> {
        if let Some(cause) = token.cause() {
            return Err(SqlError::Cancelled(cause));
        }
        match parse_statement(sql)? {
            Statement::Select(q) if q.join.is_none() => {
                let plan = self.plan_read(&q)?;
                let out = self.run_plan_cancellable(&plan, token)?;
                self.note_query(sql, &out);
                Ok(SqlOutcome::Rows(out))
            }
            // Joins and every other statement run whole (their kernels
            // are host-side; no morsel boundary to check at), with a
            // trailing check so a trip during the run is still typed.
            _ => {
                let out = self.run_sql(sql)?;
                match token.cause() {
                    Some(cause) => Err(SqlError::Cancelled(cause)),
                    None => Ok(out),
                }
            }
        }
    }

    /// Runs one `SELECT` plan in morsel-sized row ranges with `token`
    /// checked before each range — the single-session counterpart of
    /// the executor's morsel-pop check. The range partials merge to the
    /// whole answer at any split (see [`Session::run_partial_range`]),
    /// and the coordinator tail (`HAVING`, `ORDER BY`/`LIMIT`, row
    /// assembly) is shared with the sharded path — so the rows are
    /// bit-identical to [`Session::run`].
    ///
    /// Composite grouping forces the plan's own exact key domains into
    /// every range's fusion (the single-plan case of the sharded
    /// coordinator's fast path): all partials share one fused key
    /// space, merge directly, and skip the per-range max scans. Ranges
    /// whose zone maps prove the WHERE predicate matches nothing are
    /// pruned before running, counted in [`Database::metrics`].
    fn run_plan_cancellable(
        &mut self,
        plan: &QueryPlan,
        token: &CancelToken,
    ) -> Result<QueryOutput, SqlError> {
        let n = plan.rows();
        let morsel_rows = crate::executor::ExecutorConfig::default()
            .morsel_rows
            .max(1);
        let forced: Option<&[u64]> =
            (!plan.query().group_by_rest.is_empty()).then(|| plan.key_domains());
        let mut runs: Vec<PartialRun> = Vec::new();
        let (mut pruned_morsels, mut pruned_rows) = (0u64, 0u64);
        let mut lo = 0;
        while lo < n {
            if let Err(cause) = token.admit_morsel() {
                return Err(SqlError::Cancelled(cause));
            }
            let hi = (lo + morsel_rows).min(n);
            if plan.prunes_range(lo, hi) {
                pruned_morsels += 1;
                pruned_rows += (hi - lo) as u64;
            } else {
                runs.push(match forced {
                    Some(d) => self.session.run_partial_range_forced(plan, lo, hi, d),
                    None => self.session.run_partial_range(plan, lo, hi),
                });
            }
            lo = hi;
        }
        if pruned_morsels > 0 {
            self.catalogue
                .metrics()
                .record_pruned(pruned_morsels, pruned_rows);
        }
        let query = plan.query();
        let merged = vagg_core::PartialAggregate::merge_all(runs.iter().map(|r| r.partial.clone()))
            .unwrap_or_else(|| vagg_core::PartialAggregate::empty(query.needs_minmax()));
        let rest_domains: Vec<u32> = match forced {
            Some(d) => d[1..].iter().map(|&d| d as u32).collect(),
            None => Vec::new(),
        };
        let (mut base, mut mm) = (merged.base, merged.minmax);
        if let Some(h) = &query.having {
            host_having(h, &mut base, &mut mm);
        }
        if let Some(ob) = &query.order_by {
            host_order_by(ob, &mut base, &mut mm);
        }
        let rows = assemble_rows(
            query,
            &base,
            mm.as_ref().map(|(a, b)| (&a[..], &b[..])),
            &rest_domains,
        );
        let cycles: u64 = runs.iter().map(|r| r.report.cycles).sum();
        let rows_aggregated: usize = runs.iter().map(|r| r.report.rows_aggregated).sum();
        Ok(QueryOutput {
            rows,
            report: ExecutionReport {
                algorithm: runs.iter().find_map(|r| r.report.algorithm),
                rows_aggregated,
                cycles,
                cpt: if n == 0 {
                    0.0
                } else {
                    cycles as f64 / n as f64
                },
                steps: plan.steps().to_vec(),
            },
        })
    }

    /// `table` must be registered — queue-time validation for write
    /// transactions, so a typo errors at the statement, not at COMMIT.
    fn check_table(&self, table: &str) -> Result<(), SqlError> {
        if self.catalogue.table(table).is_none() {
            return Err(SqlError::UnknownTable(table.to_string()));
        }
        Ok(())
    }

    /// Buffers one statement on the open write transaction.
    fn queue(&mut self, pending: Pending) -> Result<SqlOutcome, SqlError> {
        match &mut self.txn {
            TxnState::Write(buffer) => {
                buffer.push(pending);
                Ok(SqlOutcome::Queued(buffer.len()))
            }
            _ => unreachable!("queue() is only called with an open write transaction"),
        }
    }

    /// Autocommit `DELETE`: resolve the predicate to physical rows,
    /// tombstone them, log, then let compaction drop them physically.
    fn autocommit_delete(
        &mut self,
        table: &str,
        filter: Option<&(String, Predicate)>,
    ) -> Result<SqlOutcome, SqlError> {
        let rows = self.catalogue.resolve_physical(table, filter)?;
        let current = self
            .catalogue
            .data_version(table)
            .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
        if rows.is_empty() {
            return Ok(SqlOutcome::Deleted(MutationReceipt {
                rows: 0,
                data_version: current,
            }));
        }
        let count = rows.len();
        let op = CatOp::Delete {
            table: table.to_string(),
            rows: rows.clone(),
        };
        let versions = self.catalogue.apply_ops(&[op])?;
        let data_version = versions.get(table).copied().unwrap_or(current);
        self.log_autocommit(&WalRecord::Delete {
            txn: AUTOCOMMIT,
            table: table.to_string(),
            rows,
        })?;
        self.after_write(table)?;
        Ok(SqlOutcome::Deleted(MutationReceipt {
            rows: count,
            data_version,
        }))
    }

    /// Autocommit `UPDATE`: resolve, overwrite, log.
    fn autocommit_update(
        &mut self,
        table: &str,
        sets: Vec<(String, u32)>,
        filter: Option<&(String, Predicate)>,
    ) -> Result<SqlOutcome, SqlError> {
        let rows = self.catalogue.resolve_physical(table, filter)?;
        let current = self
            .catalogue
            .data_version(table)
            .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
        if rows.is_empty() {
            // Still surface bad SET columns: an UPDATE naming a column
            // that does not exist is an error even over zero rows.
            let live = self.catalogue.table(table).expect("version implies table");
            for (column, _) in &sets {
                if live.column(column).is_none() {
                    return Err(SqlError::Plan(PlanError::UnknownColumn(column.clone())));
                }
            }
            return Ok(SqlOutcome::Updated(MutationReceipt {
                rows: 0,
                data_version: current,
            }));
        }
        let count = rows.len();
        let op = CatOp::Update {
            table: table.to_string(),
            rows: rows.clone(),
            sets: sets.clone(),
        };
        let versions = self.catalogue.apply_ops(&[op])?;
        let data_version = versions.get(table).copied().unwrap_or(current);
        self.log_autocommit(&WalRecord::Update {
            txn: AUTOCOMMIT,
            table: table.to_string(),
            rows,
            sets,
        })?;
        self.after_write(table)?;
        Ok(SqlOutcome::Updated(MutationReceipt {
            rows: count,
            data_version,
        }))
    }

    /// Installs a write transaction's buffered statements in one atomic
    /// step: resolve `DELETE`/`UPDATE` predicates against the committed
    /// state, apply every operation under a single catalogue write
    /// lock, then log all records plus the commit mark in one flush.
    /// The transaction id is the commit record's prospective LSN —
    /// unique, monotonic, and it survives restarts for free.
    ///
    /// The transaction is already closed when this runs: an error here
    /// (a batch that no longer fits a re-registered schema, say) means
    /// the transaction rolled back — nothing was applied or logged.
    fn commit_write_txn(&mut self, pending: Vec<Pending>) -> Result<SqlOutcome, SqlError> {
        if pending.is_empty() {
            return Ok(SqlOutcome::TransactionCommitted);
        }
        let mut ops = Vec::with_capacity(pending.len());
        for p in pending {
            ops.push(match p {
                Pending::Insert(op) => op,
                Pending::Delete { table, filter } => {
                    let rows = self.catalogue.resolve_physical(&table, filter.as_ref())?;
                    CatOp::Delete { table, rows }
                }
                Pending::Update {
                    table,
                    sets,
                    filter,
                } => {
                    let rows = self.catalogue.resolve_physical(&table, filter.as_ref())?;
                    CatOp::Update { table, rows, sets }
                }
            });
        }
        self.catalogue.apply_ops(&ops)?;
        if let Some(d) = self.durability.as_mut() {
            let txn = d.writer.next_lsn();
            for op in &ops {
                d.writer.append(&record_of(op, txn));
            }
            d.writer.append(&WalRecord::Commit { txn });
            d.writer.flush()?;
        }
        let touched: BTreeSet<String> = ops.iter().map(|op| op.table().to_string()).collect();
        for table in &touched {
            self.after_write(table)?;
        }
        Ok(SqlOutcome::TransactionCommitted)
    }

    /// Post-write housekeeping: a threshold compaction if the table's
    /// delta (batches plus tombstones) crossed the policy line, and —
    /// since compaction rewrites history the log's records describe —
    /// a checkpoint when it ran.
    fn after_write(&mut self, table: &str) -> Result<(), SqlError> {
        if self.catalogue.maybe_compact(table) {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    /// Appends `record` and flushes — the autocommit durability point.
    /// A no-op on non-durable databases.
    fn log_autocommit(&mut self, record: &WalRecord) -> Result<(), SqlError> {
        if let Some(d) = self.durability.as_mut() {
            d.writer.append(record);
            d.writer.flush()?;
        }
        Ok(())
    }

    /// Rewrites the write-ahead log as a checkpoint: one register image
    /// per table (delta folded in, exact version counters) plus one
    /// image per named snapshot. Replaying the rewritten log
    /// reconstructs the current committed state directly; every record
    /// the old log accumulated is gone, and the LSN chain continues
    /// where it left off. A no-op on non-durable databases.
    ///
    /// Compactions checkpoint automatically; call this to bound the
    /// log's size (and replay time) on demand.
    pub fn checkpoint(&mut self) -> Result<(), SqlError> {
        self.write_checkpoint()
    }

    fn write_checkpoint(&mut self) -> Result<(), SqlError> {
        let Some(d) = self.durability.as_mut() else {
            return Ok(());
        };
        let mut records = Vec::new();
        for (name, schema_version, data_version, table) in self.catalogue.checkpoint_images() {
            records.push(WalRecord::Register {
                txn: AUTOCOMMIT,
                table: name,
                schema_version,
                data_version,
                columns: columns_of(&table),
            });
        }
        for (name, tables) in self.catalogue.named_images() {
            let tables = tables
                .iter()
                .map(|(t, (v, content))| (t.clone(), *v, columns_of(content)))
                .collect();
            records.push(WalRecord::SnapshotImage { name, tables });
        }
        let first_lsn = d.writer.next_lsn();
        let prior = d.writer.stats();
        d.writer = wal::rewrite(&d.log, &records, first_lsn)?;
        // Keep `metrics()`'s wal_* counters cumulative across the
        // checkpoint: the replacement writer starts at zero, but the
        // session's append activity didn't.
        d.writer.carry_stats(prior);
        Ok(())
    }

    // -- sharded durability hooks -------------------------------------
    // The sharded coordinator tags multi-shard operations with a global
    // transaction id, buffers the records on every touched shard's log,
    // flushes them all, and only then writes its own commit record —
    // shard records without a vouching coordinator commit are ignored
    // on replay, which makes cross-shard writes atomic across a crash.

    /// Buffers one record on this shard's log without flushing.
    pub(crate) fn log_record(&mut self, record: &WalRecord) {
        if let Some(d) = self.durability.as_mut() {
            d.writer.append(record);
        }
    }

    /// Flushes this shard's log — the per-shard half of a cross-shard
    /// commit.
    pub(crate) fn flush_wal(&mut self) -> Result<(), SqlError> {
        if let Some(d) = self.durability.as_mut() {
            d.writer.flush()?;
        }
        Ok(())
    }

    /// [`Database::after_write`] for the sharded write paths.
    pub(crate) fn compact_and_checkpoint(&mut self, table: &str) -> Result<(), SqlError> {
        self.after_write(table)
    }

    /// Parses and runs one `SELECT` / `EXPLAIN SELECT` **at an explicit
    /// snapshot**: the statement reads the rows, statistics and plan of
    /// the snapshot's pinned cut, regardless of ingest since. The same
    /// snapshot can serve any number of statements (repeatable reads)
    /// and any session of the same catalogue.
    ///
    /// ```
    /// use vagg_db::{Database, SqlOutcome, Table};
    ///
    /// let mut db = Database::new();
    /// db.register(
    ///     Table::new("r")
    ///         .with_column("g", vec![1, 2, 1])
    ///         .with_column("v", vec![10, 20, 30]),
    /// );
    /// let snap = db.snapshot();
    /// db.run_sql("INSERT INTO r (g, v) VALUES (3, 40)")?;
    /// let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";
    /// let (at, live) = (db.run_sql_at(&snap, sql)?, db.run_sql(sql)?);
    /// match (at, live) {
    ///     (SqlOutcome::Rows(at), SqlOutcome::Rows(live)) => {
    ///         assert_eq!(at.rows.len(), 2);   // the pinned cut
    ///         assert_eq!(live.rows.len(), 3); // the live table
    ///     }
    ///     other => unreachable!("SELECT returns rows: {other:?}"),
    /// }
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// As [`Database::run_sql`], plus [`SqlError::ReadOnly`] for
    /// `INSERT` (snapshots are immutable),
    /// [`SqlError::TransactionStatement`] for `BEGIN`/`COMMIT`
    /// (transaction state belongs to [`Database::run_sql`]), and
    /// [`SqlError::ForeignSnapshot`] if the snapshot was cut from a
    /// different catalogue.
    pub fn run_sql_at(&mut self, snap: &Snapshot, sql: &str) -> Result<SqlOutcome, SqlError> {
        match parse_statement(sql)? {
            Statement::Select(q) => {
                if q.join.is_some() {
                    let (plan, lt, rt) = self.plan_join_read_at(snap, &q)?;
                    let (derived, _obs) = join_local_traced(&plan, &lt, &rt);
                    let out = self.run_join_tail(plan.steps(), plan.query(), &derived)?;
                    self.note_query(sql, &out);
                    return Ok(SqlOutcome::Rows(out));
                }
                let plan = self.plan_read_at(snap, &q)?;
                let out = self.session.run(&plan);
                self.note_query(sql, &out);
                Ok(SqlOutcome::Rows(out))
            }
            Statement::ExplainAnalyze(q) => Ok(SqlOutcome::Analyzed(Box::new(self.analyze(
                &q,
                sql,
                Some(snap),
            )?))),
            Statement::Explain(q) => {
                if q.join.is_some() {
                    return Ok(SqlOutcome::JoinPlan(Box::new(
                        self.plan_join_read_at(snap, &q)?.0,
                    )));
                }
                Ok(SqlOutcome::Plan(Box::new(self.plan_read_at(snap, &q)?)))
            }
            Statement::Insert(_)
            | Statement::Delete(_)
            | Statement::Update(_)
            | Statement::CreateSnapshot(_) => Err(SqlError::ReadOnly),
            Statement::Begin { .. } | Statement::Commit | Statement::Rollback => {
                Err(SqlError::TransactionStatement)
            }
        }
    }

    /// The snapshot read path's planner: `AS OF` names an explicit
    /// frozen state and wins over the snapshot, as in
    /// [`Database::run_sql`].
    fn plan_read_at(&self, snap: &Snapshot, q: &SqlQuery) -> Result<QueryPlan, SqlError> {
        match &q.as_of {
            Some(as_of) => self.plan_as_of(&q.table, as_of, &q.query),
            None => self.catalogue.plan_query_at(snap, &q.table, &q.query),
        }
    }

    /// Parses a `SELECT` with `?` placeholders into a reusable
    /// [`PreparedStatement`]: the statement is planned once, and every
    /// [`PreparedStatement::execute`] binds parameters into the cached
    /// plan instead of re-planning — re-planning happens only when the
    /// table is re-registered or the adaptive algorithm choice would
    /// flip.
    ///
    /// ```
    /// use vagg_db::{Database, Table};
    ///
    /// let mut db = Database::new();
    /// db.register(
    ///     Table::new("r")
    ///         .with_column("g", vec![1, 2, 1, 2])
    ///         .with_column("v", vec![10, 20, 30, 40]),
    /// );
    /// let mut stmt =
    ///     db.prepare("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > ? GROUP BY g")?;
    /// let big = stmt.execute(&mut db, &[35])?;
    /// let all = stmt.execute(&mut db, &[0])?;
    /// assert_eq!(big.rows.len(), 1);
    /// assert_eq!(all.rows.len(), 2);
    /// assert_eq!(stmt.replans(), 0, "planned once, executed twice");
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// As [`Database::run_sql`]: parse errors (including a rejected
    /// `EXPLAIN`), unknown tables, and planning errors — all reported
    /// here at prepare time, not at first execution.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement, SqlError> {
        PreparedStatement::prepare(&self.catalogue, sql)
    }

    /// Parses and executes one `SELECT` statement on the session.
    ///
    /// # Errors
    ///
    /// As [`Database::run_sql`], plus [`SqlError::ExplainStatement`] if
    /// the statement is an `EXPLAIN` and [`SqlError::InsertStatement`]
    /// if it is an `INSERT` (rejected *before* any row is appended).
    pub fn execute_sql(&mut self, sql: &str) -> Result<QueryOutput, SqlError> {
        match parse_statement(sql)? {
            Statement::Select(q) => {
                if q.join.is_some() {
                    let out = self.run_join(&q)?;
                    self.note_query(sql, &out);
                    return Ok(out);
                }
                let plan = self.plan_read(&q)?;
                let out = self.session.run(&plan);
                self.note_query(sql, &out);
                Ok(out)
            }
            Statement::Explain(_) | Statement::ExplainAnalyze(_) => Err(SqlError::ExplainStatement),
            Statement::Insert(_) => Err(SqlError::InsertStatement),
            Statement::Delete(_) | Statement::Update(_) | Statement::CreateSnapshot(_) => {
                Err(SqlError::MutationStatement)
            }
            Statement::Begin { .. } | Statement::Commit | Statement::Rollback => {
                Err(SqlError::TransactionStatement)
            }
        }
    }

    /// Plans one statement without executing it. Accepts a bare
    /// `SELECT`, an `EXPLAIN SELECT` or an `EXPLAIN ANALYZE SELECT`
    /// (planned only — use [`Database::run_sql`] to execute the trace).
    /// A statement with a `JOIN` clause routes through the join planner
    /// and returns [`ExplainOutput::Join`].
    ///
    /// # Errors
    ///
    /// As [`Database::run_sql`], plus [`SqlError::InsertStatement`] for
    /// `INSERT` (ingest has no plan).
    pub fn explain_sql(&self, sql: &str) -> Result<ExplainOutput, SqlError> {
        let q = match parse_statement(sql)? {
            Statement::Select(q) | Statement::Explain(q) | Statement::ExplainAnalyze(q) => q,
            Statement::Insert(_) => return Err(SqlError::InsertStatement),
            Statement::Delete(_) | Statement::Update(_) | Statement::CreateSnapshot(_) => {
                return Err(SqlError::MutationStatement)
            }
            Statement::Begin { .. } | Statement::Commit | Statement::Rollback => {
                return Err(SqlError::TransactionStatement)
            }
        };
        if q.join.is_some() {
            return Ok(ExplainOutput::Join(Box::new(self.plan_join_read(&q)?.0)));
        }
        Ok(ExplainOutput::Plan(Box::new(self.plan_read(&q)?)))
    }

    /// Plans a two-table `JOIN` statement without executing it,
    /// returning the typed [`JoinPlan`] — the adaptive build-side and
    /// strategy decision, renderable with [`JoinPlan::explain`].
    /// Accepts either a bare `SELECT` or an `EXPLAIN SELECT`.
    ///
    /// ```
    /// use vagg_db::{Database, Table};
    ///
    /// let mut db = Database::new();
    /// db.register(
    ///     Table::new("orders")
    ///         .with_column("o_id", vec![1, 2, 3])
    ///         .with_column("status", vec![0, 1, 0]),
    /// );
    /// db.register(
    ///     Table::new("lineitem")
    ///         .with_column("order_id", vec![1, 1, 2, 3, 3, 3])
    ///         .with_column("price", vec![10, 20, 30, 40, 50, 60]),
    /// );
    /// let plan = db.explain_join_sql(
    ///     "SELECT status, COUNT(*), SUM(price) FROM lineitem \
    ///      JOIN orders ON lineitem.order_id = orders.o_id \
    ///      GROUP BY status",
    /// )?;
    /// assert_eq!(plan.build_table(), "orders"); // the smaller side
    /// println!("{}", plan.explain());
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// As [`Database::explain_sql`], plus [`SqlError::JoinStatement`]
    /// when the statement has no `JOIN` clause.
    pub fn explain_join_sql(&self, sql: &str) -> Result<JoinPlan, SqlError> {
        let q = match parse_statement(sql)? {
            Statement::Select(q) | Statement::Explain(q) | Statement::ExplainAnalyze(q) => q,
            Statement::Insert(_) => return Err(SqlError::InsertStatement),
            Statement::Delete(_) | Statement::Update(_) | Statement::CreateSnapshot(_) => {
                return Err(SqlError::MutationStatement)
            }
            Statement::Begin { .. } | Statement::Commit | Statement::Rollback => {
                return Err(SqlError::TransactionStatement)
            }
        };
        if q.join.is_none() {
            return Err(SqlError::JoinStatement);
        }
        Ok(self.plan_join_read(&q)?.0)
    }

    /// Parses a two-table `JOIN` statement with `?` placeholders into
    /// a reusable [`PreparedJoin`]: the join is planned eagerly (so
    /// unknown tables and unresolvable columns fail here) and the
    /// built+probed derived table is cached across executions while
    /// both tables' versions stand still — see [`PreparedJoin`].
    ///
    /// # Errors
    ///
    /// As [`Database::prepare`], plus [`SqlError::JoinStatement`] when
    /// the statement has no `JOIN` clause.
    pub fn prepare_join(&self, sql: &str) -> Result<PreparedJoin, SqlError> {
        PreparedJoin::prepare(&self.catalogue, sql)
    }

    /// Executes an already-built plan on this session (the prepared
    /// statement path).
    pub(crate) fn run_plan(&mut self, plan: &QueryPlan) -> QueryOutput {
        let out = self.session.run(plan);
        self.note_query(&plan.sql(), &out);
        out
    }

    /// [`Database::run_plan`] with tracing on — the prepared
    /// statement's `EXPLAIN ANALYZE` path
    /// ([`PreparedStatement::analyze`]).
    pub(crate) fn run_plan_traced(&mut self, plan: &QueryPlan) -> AnalyzedQuery {
        let mut trace = QueryTrace::new(plan.sql());
        trace.estimate_plan(plan);
        let (output, step_traces) = self.session.run_traced(plan);
        trace.record_steps(&step_traces);
        trace.cycles = output.report.cycles;
        trace.rows = output.rows.len() as u64;
        self.note_query(&plan.sql(), &output);
        self.catalogue.metrics().record_traced_query();
        AnalyzedQuery { output, trace }
    }

    /// One metrics snapshot across every subsystem this database
    /// touches: the catalogue registry's counters (queries, ingest,
    /// compactions, WAL replays, the query cycle histogram, the
    /// slow-query ring) plus the plan cache's, the snapshot
    /// subsystem's, and — on a durable database — the WAL writer's.
    /// Export it with [`MetricsSnapshot::to_text`] /
    /// [`MetricsSnapshot::to_json`].
    ///
    /// ```
    /// use vagg_db::{Database, Table};
    ///
    /// let mut db = Database::new();
    /// db.register(Table::new("r").with_column("g", vec![1, 2, 1]));
    /// db.run_sql("SELECT g, COUNT(*) FROM r GROUP BY g")?;
    /// let snap = db.metrics();
    /// assert_eq!(snap.get("queries"), Some(1));
    /// assert!(snap.to_text().contains("vagg_queries 1"));
    /// # Ok::<(), vagg_db::SqlError>(())
    /// ```
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.catalogue.metrics().snapshot();
        self.plan_cache_stats().export_into(&mut snap);
        self.snapshot_stats().export_into(&mut snap);
        if let Some(d) = &self.durability {
            let stats = d.writer.stats();
            snap.add("wal_appends", stats.appends);
            snap.add("wal_flushes", stats.flushes);
            snap.add("wal_bytes", stats.bytes);
        }
        snap
    }

    /// The worst queries on record, sorted worst-first — a bounded ring
    /// shared by every session of this catalogue (see
    /// [`Database::set_slow_query_threshold`]).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.catalogue.metrics().slow_queries()
    }

    /// Only queries costing at least `cycles` simulated cycles enter
    /// the slow-query ring. The default threshold of 0 records every
    /// query (the ring keeps the worst regardless).
    pub fn set_slow_query_threshold(&self, cycles: u64) {
        self.catalogue.metrics().set_slow_query_threshold(cycles);
    }
}

/// Folds a local join's host-side observations into a trace: the
/// build/probe steps' observed rows recorded under the plan's rendered
/// step names, plus the key-dictionary counters and the freeze-barrier
/// wall time. Host-side work carries no simulated cycles.
fn record_join_obs(t: &mut QueryTrace, plan: &JoinPlan, obs: &LocalJoinObs) {
    for step in plan.steps() {
        match step {
            PlanStep::JoinBuild { .. } => t.record_host_step(
                step.to_string(),
                step.estimated_rows(),
                obs.build_rows as u64,
                obs.entries as u64,
            ),
            PlanStep::JoinProbe { .. } => t.record_host_step(
                step.to_string(),
                step.estimated_rows(),
                obs.probe_rows as u64,
                obs.pairs as u64,
            ),
            _ => {}
        }
    }
    t.dict_entries += obs.entries as u64;
    t.dict_hits += obs.dict_hits;
    t.freeze_ns = Some(t.freeze_ns.unwrap_or(0) + obs.freeze_ns);
}

/// The WAL record describing one catalogue operation, tagged with the
/// owning transaction id (shared with the sharded coordinator).
pub(crate) fn record_of(op: &CatOp, txn: u64) -> WalRecord {
    match op {
        CatOp::Append { table, batch } => WalRecord::Batch {
            txn,
            table: table.clone(),
            columns: batch
                .columns()
                .map(|(n, v)| (n.to_string(), v.to_vec()))
                .collect(),
        },
        CatOp::Delete { table, rows } => WalRecord::Delete {
            txn,
            table: table.clone(),
            rows: rows.clone(),
        },
        CatOp::Update { table, rows, sets } => WalRecord::Update {
            txn,
            table: table.clone(),
            rows: rows.clone(),
            sets: sets.clone(),
        },
    }
}

/// A table's full column content, owned — the payload of a register or
/// snapshot image record.
fn columns_of(table: &Table) -> Vec<(String, Vec<u32>)> {
    table
        .column_names()
        .iter()
        .map(|n| {
            (
                n.to_string(),
                table.column(n).expect("listed column exists").to_vec(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanStep;

    fn db() -> Database {
        let mut db = Database::new();
        db.register(
            Table::new("r")
                .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
                .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0]),
        );
        db
    }

    #[test]
    fn executes_the_paper_query() {
        let out = db()
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        assert_eq!(out.rows.len(), 6);
        let r3 = out.rows.iter().find(|r| r.group == 3).unwrap();
        assert_eq!(r3.values, vec![2.0, 7.0]);
    }

    #[test]
    fn where_clause_flows_through() {
        let out = db()
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r WHERE g <> 0 GROUP BY g")
            .unwrap();
        assert!(out.rows.iter().all(|r| r.group != 0));
        assert!(out.report.describe().contains("VectorFilter"));
    }

    #[test]
    fn consecutive_statements_share_the_session_machine() {
        let mut db = db();
        let first = db
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        let second = db
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r WHERE v > 0 GROUP BY g")
            .unwrap();
        assert_eq!(db.session().queries_run(), 2);
        assert_eq!(
            db.session().total_cycles(),
            first.report.cycles + second.report.cycles
        );
    }

    #[test]
    fn explain_returns_a_plan_without_executing() {
        let mut db = db();
        let outcome = db
            .run_sql("EXPLAIN SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        let plan = match outcome {
            SqlOutcome::Plan(p) => p,
            other => panic!("EXPLAIN must not execute: {other:?}"),
        };
        assert_eq!(db.session().queries_run(), 0, "nothing executed");
        assert_eq!(db.session().total_cycles(), 0);
        assert!(plan
            .steps()
            .iter()
            .any(|s| matches!(s, PlanStep::Aggregate(_))));
        assert!(plan.explain().contains("CardinalityScan"));
    }

    #[test]
    fn explain_sql_accepts_bare_selects() {
        let out = db()
            .explain_sql("SELECT g, SUM(v) FROM r GROUP BY g")
            .unwrap();
        let plan = out.plan().expect("non-join SELECT yields a query plan");
        assert_eq!(plan.table(), "r");
        assert_eq!(plan.rows(), 8);
    }

    #[test]
    fn execute_sql_rejects_explain_statements() {
        let e = db()
            .execute_sql("EXPLAIN SELECT g, SUM(v) FROM r GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::ExplainStatement);
    }

    #[test]
    fn unknown_table_is_reported() {
        let e = db()
            .execute_sql("SELECT g, SUM(v) FROM nope GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("nope".into()));
    }

    #[test]
    fn unknown_column_becomes_a_typed_plan_error() {
        let e = db()
            .execute_sql("SELECT g, SUM(missing) FROM r GROUP BY g")
            .unwrap_err();
        assert_eq!(
            e,
            SqlError::Plan(PlanError::UnknownColumn("missing".into()))
        );
        assert!(e.to_string().contains("unknown column"));
        // The typed source chains through std::error::Error.
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn parse_errors_carry_the_source() {
        let e = db()
            .execute_sql("SELECT g, SUM(v) FROM r GROUP BY h")
            .unwrap_err();
        assert!(matches!(e, SqlError::Parse(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn register_replaces_and_returns_previous() {
        let mut d = db();
        let old = d.register(Table::new("r").with_column("g", vec![1]));
        assert!(old.is_some());
        assert_eq!(d.table("r").unwrap().rows(), 1);
        assert_eq!(d.table_names(), vec!["r".to_string()]);
    }

    #[test]
    fn insert_sql_appends_through_the_write_path() {
        let mut db = db();
        let outcome = db
            .run_sql("INSERT INTO r (g, v) VALUES (9, 10), (9, 20);")
            .unwrap();
        let receipt = match outcome {
            SqlOutcome::Inserted(r) => r,
            other => panic!("INSERT must report a receipt: {other:?}"),
        };
        assert_eq!(receipt.rows, 2);
        assert_eq!(receipt.data_version, 2);
        let out = db
            .execute_sql("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")
            .unwrap();
        let r9 = out.rows.iter().find(|r| r.group == 9).unwrap();
        assert_eq!(r9.values, vec![2.0, 30.0]);
        assert_eq!(db.data_version("r"), Some(2));
        assert_eq!(db.table_stats("r").unwrap().rows(), 10);
    }

    #[test]
    fn execute_and_explain_reject_insert_without_side_effects() {
        let mut db = db();
        let e = db
            .execute_sql("INSERT INTO r (g, v) VALUES (1, 2)")
            .unwrap_err();
        assert_eq!(e, SqlError::InsertStatement);
        assert!(e.to_string().contains("insert_sql"));
        let e = db
            .explain_sql("INSERT INTO r (g, v) VALUES (1, 2)")
            .unwrap_err();
        assert_eq!(e, SqlError::InsertStatement);
        // Rejected before any row moved.
        assert_eq!(db.table("r").unwrap().rows(), 8);
        assert_eq!(db.data_version("r"), Some(1));
    }

    #[test]
    fn insert_schema_mismatches_are_typed() {
        use crate::ingest::IngestError;
        let mut db = db();
        let e = db
            .run_sql("INSERT INTO r (g, w) VALUES (1, 2)")
            .unwrap_err();
        assert_eq!(e, SqlError::Ingest(IngestError::UnknownColumn("w".into())));
        let e = db.run_sql("INSERT INTO r (g) VALUES (1)").unwrap_err();
        assert_eq!(e, SqlError::Ingest(IngestError::MissingColumn("v".into())));
        let e = db
            .run_sql("INSERT INTO nope (g, v) VALUES (1, 2)")
            .unwrap_err();
        assert_eq!(e, SqlError::UnknownTable("nope".into()));
    }

    #[test]
    fn table_names_listing_is_sorted_regardless_of_registration_order() {
        let mut db = Database::new();
        for name in ["zulu", "alpha", "mike"] {
            db.register(Table::new(name).with_column("g", vec![1]));
        }
        assert_eq!(db.table_names(), vec!["alpha", "mike", "zulu"]);
        // Re-registration does not disturb the order.
        db.register(Table::new("zulu").with_column("g", vec![2]));
        assert_eq!(db.table_names(), vec!["alpha", "mike", "zulu"]);
    }

    #[test]
    fn read_only_transactions_pin_one_snapshot() {
        let mut writer = db();
        let mut reader = writer.catalogue().connect();
        let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";

        assert!(!reader.in_transaction());
        assert!(matches!(
            reader.run_sql("BEGIN READ ONLY").unwrap(),
            SqlOutcome::TransactionBegun
        ));
        assert!(reader.in_transaction());
        let first = reader.execute_sql(sql).unwrap();

        // Concurrent-session ingest lands mid-transaction...
        writer
            .run_sql("INSERT INTO r (g, v) VALUES (9, 1), (9, 1)")
            .unwrap();
        assert_eq!(writer.table("r").unwrap().rows(), 10);

        // ...but the transaction keeps reading its snapshot.
        let second = reader.execute_sql(sql).unwrap();
        assert_eq!(first.rows, second.rows, "repeatable read");
        assert_eq!(second.rows.len(), 6);

        assert!(matches!(
            reader.run_sql("COMMIT").unwrap(),
            SqlOutcome::TransactionCommitted
        ));
        assert!(!reader.in_transaction());
        // After COMMIT the session reads the live database again.
        let after = reader.execute_sql(sql).unwrap();
        assert_eq!(after.rows.len(), 7);
    }

    #[test]
    fn transaction_state_errors_are_typed() {
        let mut db = db();
        db.run_sql("BEGIN READ ONLY").unwrap();
        assert_eq!(
            db.run_sql("BEGIN READ ONLY").unwrap_err(),
            SqlError::NestedTransaction
        );
        // Writes are rejected inside the read-only transaction and the
        // transaction stays open.
        assert_eq!(
            db.run_sql("INSERT INTO r (g, v) VALUES (1, 2)")
                .unwrap_err(),
            SqlError::ReadOnly
        );
        assert!(db.in_transaction());
        assert_eq!(db.table("r").unwrap().rows(), 8, "nothing appended");
        db.run_sql("COMMIT").unwrap();
        assert_eq!(
            db.run_sql("COMMIT;").unwrap_err(),
            SqlError::NoOpenTransaction
        );
        // APIs that cannot manage transaction state say so.
        assert_eq!(
            db.execute_sql("BEGIN READ ONLY").unwrap_err(),
            SqlError::TransactionStatement
        );
        assert_eq!(
            db.explain_sql("COMMIT").unwrap_err(),
            SqlError::TransactionStatement
        );
    }

    #[test]
    fn run_sql_at_reads_the_pinned_cut_and_rejects_writes() {
        let mut db = db();
        let snap = db.snapshot();
        db.run_sql("INSERT INTO r (g, v) VALUES (9, 1)").unwrap();

        let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";
        let at = match db.run_sql_at(&snap, sql).unwrap() {
            SqlOutcome::Rows(out) => out,
            other => panic!("SELECT returns rows: {other:?}"),
        };
        assert_eq!(at.rows.len(), 6, "the pinned cut");
        match db.run_sql(sql).unwrap() {
            SqlOutcome::Rows(out) => assert_eq!(out.rows.len(), 7, "the live table"),
            other => panic!("SELECT returns rows: {other:?}"),
        }

        assert_eq!(
            db.run_sql_at(&snap, "INSERT INTO r (g, v) VALUES (1, 1)")
                .unwrap_err(),
            SqlError::ReadOnly
        );
        assert_eq!(
            db.run_sql_at(&snap, "BEGIN READ ONLY").unwrap_err(),
            SqlError::TransactionStatement
        );

        // EXPLAIN at the snapshot reports the pinned data version.
        let plan = match db
            .run_sql_at(&snap, "EXPLAIN SELECT g, SUM(v) FROM r GROUP BY g")
            .unwrap()
        {
            SqlOutcome::Plan(p) => p,
            other => panic!("EXPLAIN returns a plan: {other:?}"),
        };
        assert_eq!(plan.data_version(), Some(1));
        assert!(plan.explain().contains("data_version=1"));
    }

    #[test]
    fn snapshots_from_another_catalogue_are_foreign() {
        let mut db1 = db();
        let db2 = Database::new();
        let snap = db2.snapshot();
        let e = db1
            .run_sql_at(&snap, "SELECT g, SUM(v) FROM r GROUP BY g")
            .unwrap_err();
        assert_eq!(e, SqlError::ForeignSnapshot);
        assert!(e.to_string().contains("catalogue"));
    }

    fn rows_of(db: &mut Database, sql: &str) -> Vec<crate::engine::Row> {
        db.execute_sql(sql).unwrap().rows
    }

    #[test]
    fn delete_tombstones_matching_rows() {
        let mut db = db();
        let receipt = match db.run_sql("DELETE FROM r WHERE g <> 0").unwrap() {
            SqlOutcome::Deleted(r) => r,
            other => panic!("DELETE reports a receipt: {other:?}"),
        };
        assert_eq!(receipt.rows, 6);
        assert_eq!(receipt.data_version, 2);
        let out = rows_of(&mut db, "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g");
        assert_eq!(out.len(), 1, "only the g=0 rows survive");
        assert_eq!(out[0].group, 0);
        assert_eq!(out[0].values, vec![2.0, 5.0]);
        // Statistics were re-seeded from the surviving rows.
        assert_eq!(db.table_stats("r").unwrap().rows(), 2);
        // A no-match DELETE mutates nothing, version included.
        let receipt = match db.run_sql("DELETE FROM r WHERE g > 100").unwrap() {
            SqlOutcome::Deleted(r) => r,
            other => panic!("DELETE reports a receipt: {other:?}"),
        };
        assert_eq!(receipt.rows, 0);
        assert_eq!(receipt.data_version, 2);
        assert_eq!(db.data_version("r"), Some(2));
    }

    #[test]
    fn update_overwrites_matching_rows() {
        let mut db = db();
        let receipt = match db.run_sql("UPDATE r SET v = 100 WHERE g > 3").unwrap() {
            SqlOutcome::Updated(r) => r,
            other => panic!("UPDATE reports a receipt: {other:?}"),
        };
        assert_eq!(receipt.rows, 2, "g=5 and g=4");
        assert_eq!(receipt.data_version, 2);
        let out = rows_of(&mut db, "SELECT g, SUM(v) FROM r GROUP BY g");
        let sum_of = |g: u32| out.iter().find(|r| r.group == g).unwrap().values[0];
        assert_eq!(sum_of(5), 100.0);
        assert_eq!(sum_of(4), 100.0);
        assert_eq!(sum_of(3), 7.0, "unmatched rows untouched");
        // Unknown SET columns are typed errors, matched rows or not.
        for sql in [
            "UPDATE r SET nope = 1 WHERE g > 3",
            "UPDATE r SET nope = 1 WHERE g > 100",
        ] {
            assert_eq!(
                db.run_sql(sql).unwrap_err(),
                SqlError::Plan(PlanError::UnknownColumn("nope".into()))
            );
        }
    }

    #[test]
    fn mutations_are_rejected_by_row_and_plan_apis() {
        let mut db = db();
        assert_eq!(
            db.execute_sql("DELETE FROM r WHERE g <> 0").unwrap_err(),
            SqlError::MutationStatement
        );
        assert_eq!(
            db.explain_sql("UPDATE r SET v = 1").unwrap_err(),
            SqlError::MutationStatement
        );
        let snap = db.snapshot();
        assert_eq!(
            db.run_sql_at(&snap, "DELETE FROM r").unwrap_err(),
            SqlError::ReadOnly
        );
        assert_eq!(db.table("r").unwrap().rows(), 8, "nothing mutated");
    }

    #[test]
    fn write_transactions_buffer_and_commit_atomically() {
        let mut db = db();
        let mut other = db.catalogue().connect();
        let count = "SELECT g, COUNT(*) FROM r GROUP BY g";

        assert!(matches!(
            db.run_sql("BEGIN").unwrap(),
            SqlOutcome::TransactionBegun
        ));
        assert!(db.in_transaction());
        assert!(matches!(
            db.run_sql("INSERT INTO r (g, v) VALUES (9, 9)").unwrap(),
            SqlOutcome::Queued(1)
        ));
        assert!(matches!(
            db.run_sql("DELETE FROM r WHERE g <> 0").unwrap(),
            SqlOutcome::Queued(2)
        ));
        // The transaction's own reads see the committed state: its
        // buffered insert and delete are not visible to it.
        assert_eq!(rows_of(&mut db, count).len(), 6);
        assert_eq!(rows_of(&mut other, count).len(), 6);
        assert_eq!(db.data_version("r"), Some(1));

        assert!(matches!(
            db.run_sql("COMMIT").unwrap(),
            SqlOutcome::TransactionCommitted
        ));
        assert!(!db.in_transaction());
        // Both statements installed in one step: the g=0 survivors
        // plus the appended (9, 9) — and the DELETE's predicate was
        // resolved against the pre-transaction state, so it never
        // tombstones the transaction's own insert.
        let out = rows_of(&mut other, count);
        assert_eq!(out.len(), 2);
        assert_eq!(db.data_version("r"), Some(3), "one bump per operation");
    }

    #[test]
    fn rollback_discards_the_buffered_transaction() {
        let mut db = db();
        db.run_sql("BEGIN").unwrap();
        db.run_sql("INSERT INTO r (g, v) VALUES (9, 9)").unwrap();
        assert!(matches!(
            db.run_sql("ROLLBACK").unwrap(),
            SqlOutcome::TransactionRolledBack
        ));
        assert!(!db.in_transaction());
        assert_eq!(db.table("r").unwrap().rows(), 8);
        assert_eq!(db.data_version("r"), Some(1));
        // ROLLBACK also closes a read-only transaction, and without an
        // open transaction it is a typed error.
        db.run_sql("BEGIN READ ONLY").unwrap();
        db.run_sql("ROLLBACK").unwrap();
        assert_eq!(
            db.run_sql("ROLLBACK").unwrap_err(),
            SqlError::NoOpenTransaction
        );
    }

    #[test]
    fn queued_statements_validate_eagerly() {
        let mut db = db();
        db.run_sql("BEGIN").unwrap();
        assert_eq!(
            db.run_sql("INSERT INTO nope (g) VALUES (1)").unwrap_err(),
            SqlError::UnknownTable("nope".into())
        );
        assert!(matches!(
            db.run_sql("INSERT INTO r (g, w) VALUES (1, 2)")
                .unwrap_err(),
            SqlError::Ingest(_)
        ));
        assert_eq!(
            db.run_sql("DELETE FROM nope").unwrap_err(),
            SqlError::UnknownTable("nope".into())
        );
        // The failed statements were not queued; the good one is first.
        assert!(matches!(
            db.run_sql("INSERT INTO r (g, v) VALUES (1, 1)").unwrap(),
            SqlOutcome::Queued(1)
        ));
        db.run_sql("COMMIT").unwrap();
        assert_eq!(db.table("r").unwrap().rows(), 9);
    }

    #[test]
    fn create_snapshot_and_time_travel_reads() {
        let mut db = db();
        assert!(matches!(
            db.run_sql("CREATE SNAPSHOT before").unwrap(),
            SqlOutcome::SnapshotCreated
        ));
        db.run_sql("INSERT INTO r (g, v) VALUES (9, 9)").unwrap();

        let live = rows_of(&mut db, "SELECT g, COUNT(*) FROM r GROUP BY g");
        assert_eq!(live.len(), 7);
        let named = rows_of(&mut db, "SELECT g, COUNT(*) FROM r AS OF before GROUP BY g");
        assert_eq!(named.len(), 6, "the named version predates the insert");
        let versioned = rows_of(
            &mut db,
            "SELECT g, COUNT(*) FROM r AS OF data_version 1 GROUP BY g",
        );
        assert_eq!(versioned.len(), 6);

        // EXPLAIN renders the frozen label alongside the version.
        let plan = db
            .explain_sql("EXPLAIN SELECT g, COUNT(*) FROM r AS OF before GROUP BY g")
            .unwrap();
        assert!(plan.explain().contains("data_version=1"));
        assert!(plan.explain().contains("as_of=before@1"));

        // Typed errors: duplicate names, unknown names, dead versions.
        assert_eq!(
            db.run_sql("CREATE SNAPSHOT before").unwrap_err(),
            SqlError::SnapshotExists("before".into())
        );
        assert_eq!(
            db.execute_sql("SELECT g, COUNT(*) FROM r AS OF nope GROUP BY g")
                .unwrap_err(),
            SqlError::UnknownSnapshot("nope".into())
        );
        assert_eq!(
            db.execute_sql("SELECT g, COUNT(*) FROM r AS OF data_version 99 GROUP BY g")
                .unwrap_err(),
            SqlError::VersionUnavailable {
                table: "r".into(),
                version: 99
            }
        );
    }

    #[test]
    fn named_versions_survive_compaction_where_raw_versions_die() {
        let mut db = db();
        db.catalogue()
            .set_compaction_policy(CompactionPolicy::every(2));
        db.run_sql("CREATE SNAPSHOT keeper").unwrap();
        // Two appends: the second trips the every-2 policy and folds
        // the delta — retiring data_version 1's delta generation.
        db.run_sql("INSERT INTO r (g, v) VALUES (9, 9)").unwrap();
        db.run_sql("INSERT INTO r (g, v) VALUES (9, 9)").unwrap();
        assert_eq!(
            db.execute_sql("SELECT g, COUNT(*) FROM r AS OF data_version 1 GROUP BY g")
                .unwrap_err(),
            SqlError::VersionUnavailable {
                table: "r".into(),
                version: 1
            }
        );
        let kept = rows_of(&mut db, "SELECT g, COUNT(*) FROM r AS OF keeper GROUP BY g");
        assert_eq!(kept.len(), 6, "the name outlives the compaction");
    }

    #[test]
    fn durable_open_reopen_reconstructs_state() {
        let dir = crate::tempdir::TempDir::new("db-reopen");
        let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";
        let (before, version, stats_rows) = {
            let mut db = Database::open(dir.path()).unwrap();
            assert!(db.is_durable());
            db.register(
                Table::new("r")
                    .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
                    .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0]),
            );
            db.run_sql("INSERT INTO r (g, v) VALUES (9, 10), (9, 20)")
                .unwrap();
            db.run_sql("CREATE SNAPSHOT mid").unwrap();
            db.run_sql("DELETE FROM r WHERE g > 4").unwrap();
            db.run_sql("UPDATE r SET v = 7 WHERE g <> 0").unwrap();
            (
                rows_of(&mut db, sql),
                db.data_version("r"),
                db.table_stats("r").unwrap().rows(),
            )
        }; // drop = crash stand-in (no clean shutdown hook exists)
        let mut db = Database::open(dir.path()).unwrap();
        assert_eq!(rows_of(&mut db, sql), before, "bit-identical answers");
        assert_eq!(db.data_version("r"), version);
        assert_eq!(db.table_stats("r").unwrap().rows(), stats_rows);
        // The named version replays too.
        let mid = rows_of(&mut db, "SELECT g, COUNT(*) FROM r AS OF mid GROUP BY g");
        assert_eq!(mid.len(), 7, "six seed groups plus g=9");
        // And the reopened database keeps logging: another write, then
        // a third open still agrees.
        db.run_sql("INSERT INTO r (g, v) VALUES (2, 2)").unwrap();
        let after = rows_of(&mut db, sql);
        drop(db);
        let mut db = Database::open(dir.path()).unwrap();
        assert_eq!(rows_of(&mut db, sql), after);
    }

    #[test]
    fn committed_transactions_survive_reopen_uncommitted_do_not() {
        let dir = crate::tempdir::TempDir::new("db-txn-reopen");
        {
            let mut db = Database::open(dir.path()).unwrap();
            db.register(
                Table::new("r")
                    .with_column("g", vec![1, 2, 1])
                    .with_column("v", vec![10, 20, 30]),
            );
            db.run_sql("BEGIN").unwrap();
            db.run_sql("INSERT INTO r (g, v) VALUES (9, 9)").unwrap();
            db.run_sql("COMMIT").unwrap();
            // A second transaction stays open at the "crash".
            db.run_sql("BEGIN").unwrap();
            db.run_sql("INSERT INTO r (g, v) VALUES (8, 8)").unwrap();
        }
        let db = Database::open(dir.path()).unwrap();
        let t = db.table("r").unwrap();
        assert_eq!(t.rows(), 4, "committed insert yes, open transaction no");
        assert!(t.column("g").unwrap().contains(&9));
        assert!(!t.column("g").unwrap().contains(&8));
    }

    #[test]
    fn compaction_checkpoints_and_replay_stays_exact() {
        let dir = crate::tempdir::TempDir::new("db-checkpoint");
        let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";
        let before = {
            let mut db = Database::open(dir.path()).unwrap();
            db.register(
                Table::new("r")
                    .with_column("g", vec![1, 2, 1])
                    .with_column("v", vec![10, 20, 30]),
            );
            db.catalogue()
                .set_compaction_policy(CompactionPolicy::every(3));
            for i in 0..5 {
                db.run_sql(&format!("INSERT INTO r (g, v) VALUES ({}, {i})", i % 3))
                    .unwrap();
            }
            rows_of(&mut db, sql)
        };
        let log = std::fs::metadata(dir.path().join("wal.log")).unwrap().len();
        let mut db = Database::open(dir.path()).unwrap();
        assert_eq!(rows_of(&mut db, sql), before);
        // An explicit checkpoint bounds the log and preserves state.
        db.checkpoint().unwrap();
        assert!(
            std::fs::metadata(dir.path().join("wal.log")).unwrap().len()
                <= log + 2 * (crate::wal::FRAME as u64 + 64),
            "checkpoint keeps the log near one image per table"
        );
        drop(db);
        let mut db = Database::open(dir.path()).unwrap();
        assert_eq!(rows_of(&mut db, sql), before);
    }

    #[test]
    fn torn_log_tail_recovers_to_the_last_commit() {
        let dir = crate::tempdir::TempDir::new("db-torn");
        {
            let mut db = Database::open(dir.path()).unwrap();
            db.register(Table::new("r").with_column("g", vec![1, 2, 1]));
            db.run_sql("INSERT INTO r (g) VALUES (3)").unwrap();
        }
        // A crash mid-append leaves a half-written frame.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.path().join("wal.log"))
            .unwrap();
        f.write_all(&[42, 0, 0, 0, 7, 7]).unwrap();
        drop(f);
        let db = Database::open(dir.path()).unwrap();
        assert_eq!(db.table("r").unwrap().rows(), 4, "torn tail truncated");
    }

    #[test]
    fn re_register_invalidates_cached_plans() {
        // A cached plan snapshots the table's columns; re-registering
        // must force a re-plan, not serve the stale snapshot.
        let mut db = db();
        let sql = "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g";
        let first = db.execute_sql(sql).unwrap();
        assert_eq!(first.rows.len(), 6);
        db.register(
            Table::new("r")
                .with_column("g", vec![9, 9, 9])
                .with_column("v", vec![1, 1, 1]),
        );
        let second = db.execute_sql(sql).unwrap();
        assert_eq!(second.rows.len(), 1, "answers from the new table");
        assert_eq!(second.rows[0].group, 9);
        assert_eq!(second.rows[0].values, vec![3.0, 3.0]);
        let stats = db.plan_cache_stats();
        assert_eq!(stats.hits, 0, "the stale plan never served");
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn cancellable_select_matches_the_plain_path_bit_for_bit() {
        let mut db = Database::new();
        let n = 10_000;
        db.register(
            Table::new("t")
                .with_column("a", (0..n).map(|i| (i % 13) as u32).collect())
                .with_column("b", (0..n).map(|i| (i % 5) as u32).collect())
                .with_column("v", (0..n).map(|i| (i % 97) as u32).collect()),
        );
        // Plain, composite GROUP BY, HAVING, ORDER BY + LIMIT: the
        // morselized path must reproduce every tail shape.
        for sql in [
            "SELECT a, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM t GROUP BY a",
            "SELECT a, b, COUNT(*), SUM(v) FROM t GROUP BY a, b",
            "SELECT a, SUM(v) FROM t WHERE v > 40 GROUP BY a HAVING SUM(v) > 1000",
            "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY COUNT(*) DESC LIMIT 4",
        ] {
            let plain = match db.run_sql(sql).unwrap() {
                SqlOutcome::Rows(out) => out,
                other => unreachable!("SELECT returns rows: {other:?}"),
            };
            let token = CancelToken::new();
            let governed = match db.run_sql_cancellable(sql, &token).unwrap() {
                SqlOutcome::Rows(out) => out,
                other => unreachable!("SELECT returns rows: {other:?}"),
            };
            assert_eq!(governed.rows, plain.rows, "{sql}");
            assert!(token.morsels() > 0, "the token saw morsel boundaries");
        }
    }

    #[test]
    fn a_tripped_token_surfaces_cancelled_and_is_counted() {
        let mut db = db();
        let token = CancelToken::new();
        token.cancel();
        let err = db
            .run_sql_cancellable("SELECT g, COUNT(*) FROM r GROUP BY g", &token)
            .unwrap_err();
        assert_eq!(err, SqlError::Cancelled(CancelCause::Requested));
        assert_eq!(db.metrics().get("queries_cancelled"), Some(1));
    }

    #[test]
    fn a_morsel_budget_kills_a_query_mid_flight() {
        let mut db = Database::new();
        db.register(Table::new("big").with_column("g", (0..50_000u32).map(|i| i % 7).collect()));
        // 50k rows at 2048-row morsels is ~25 boundaries; a budget of 2
        // trips partway through.
        let token = CancelToken::with_morsel_budget(2);
        let err = db
            .run_sql_cancellable("SELECT g, COUNT(*) FROM big GROUP BY g", &token)
            .unwrap_err();
        assert_eq!(err, SqlError::Cancelled(CancelCause::OverBudget));
        // The session stays usable afterwards.
        let ok = db
            .execute_sql("SELECT g, COUNT(*) FROM big GROUP BY g")
            .unwrap();
        assert_eq!(ok.rows.len(), 7);
    }

    #[test]
    fn non_select_statements_check_the_token_coarsely() {
        let mut db = db();
        let token = CancelToken::new();
        let out = db
            .run_sql_cancellable("INSERT INTO r (g, v) VALUES (9, 9)", &token)
            .unwrap();
        assert!(matches!(out, SqlOutcome::Inserted(_)));
        token.cancel();
        let err = db
            .run_sql_cancellable("INSERT INTO r (g, v) VALUES (9, 9)", &token)
            .unwrap_err();
        assert!(matches!(err, SqlError::Cancelled(_)));
    }
}

