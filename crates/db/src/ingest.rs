//! The ingest API: row batches, typed ingest errors, compaction policy
//! and receipts — the front door of the write path.
//!
//! Rows enter the database either through SQL (`INSERT INTO t (cols)
//! VALUES (...)`, see [`crate::sql`]) or through the bulk
//! [`crate::Database::append_rows`] / [`crate::SharedCatalogue::append`]
//! API, both carrying a columnar [`RowBatch`]. The catalogue validates
//! the batch against the table schema (typed [`IngestError`]s), parks
//! the rows in the table's [`crate::delta::DeltaStore`], folds them
//! into the live [`crate::delta::TableStats`], bumps the table's *data*
//! version, and — when the [`CompactionPolicy`] threshold trips —
//! compacts the delta into a new base table. The returned
//! [`IngestReceipt`] reports what happened.

use std::error::Error;
use std::fmt;

/// A columnar batch of rows to append: equal-length value vectors for
/// (exactly) the target table's columns.
///
/// ```
/// use vagg_db::{Database, RowBatch, Table};
///
/// let mut db = Database::new();
/// db.register(
///     Table::new("r")
///         .with_column("g", vec![1, 2])
///         .with_column("v", vec![10, 20]),
/// );
/// let receipt = db.append_rows(
///     "r",
///     RowBatch::new()
///         .with_column("g", vec![3, 4])
///         .with_column("v", vec![30, 40]),
/// )?;
/// assert_eq!(receipt.rows, 2);
/// assert_eq!(db.table("r").unwrap().rows(), 4);
/// # Ok::<(), vagg_db::SqlError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RowBatch {
    columns: Vec<(String, Vec<u32>)>,
}

impl RowBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one column's values (builder style). Validation — unknown
    /// or missing columns, duplicate names, ragged lengths — happens
    /// against the target table's schema at append time, with typed
    /// [`IngestError`]s.
    pub fn with_column(mut self, name: impl Into<String>, values: Vec<u32>) -> Self {
        self.columns.push((name.into(), values));
        self
    }

    /// Builds a batch from row-major tuples (the `INSERT ... VALUES`
    /// shape): `columns` names the tuple positions, every row must have
    /// exactly `columns.len()` values.
    ///
    /// # Errors
    ///
    /// [`IngestError::TupleArity`] on the first row whose width
    /// disagrees with the column list — nothing is silently dropped or
    /// padded.
    pub fn from_rows(columns: &[String], rows: &[Vec<u32>]) -> Result<Self, IngestError> {
        let mut cols: Vec<(String, Vec<u32>)> = columns
            .iter()
            .map(|c| (c.clone(), Vec::with_capacity(rows.len())))
            .collect();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != columns.len() {
                return Err(IngestError::TupleArity {
                    row: i + 1,
                    expected: columns.len(),
                    got: row.len(),
                });
            }
            for (slot, &value) in cols.iter_mut().zip(row) {
                slot.1.push(value);
            }
        }
        Ok(Self { columns: cols })
    }

    /// Rows in the batch (the first column's length; ragged batches are
    /// rejected at append time).
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |(_, v)| v.len())
    }

    /// Columns in the batch.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The columns in insertion order.
    pub(crate) fn columns(&self) -> impl Iterator<Item = (&str, &[u32])> {
        self.columns.iter().map(|(n, v)| (n.as_str(), &v[..]))
    }

    /// Checks the batch against a table's column set: every table
    /// column present exactly once, no extras, all lengths equal.
    pub(crate) fn validate(&self, schema: &[&str]) -> Result<(), IngestError> {
        let rows = self.rows();
        let mut seen: Vec<&str> = Vec::with_capacity(self.columns.len());
        for (name, values) in self.columns() {
            if !schema.contains(&name) {
                return Err(IngestError::UnknownColumn(name.to_string()));
            }
            if seen.contains(&name) {
                return Err(IngestError::DuplicateColumn(name.to_string()));
            }
            if values.len() != rows {
                return Err(IngestError::RaggedBatch {
                    column: name.to_string(),
                    rows: values.len(),
                    expected: rows,
                });
            }
            seen.push(name);
        }
        for &col in schema {
            if !seen.contains(&col) {
                return Err(IngestError::MissingColumn(col.to_string()));
            }
        }
        Ok(())
    }
}

/// Why a [`RowBatch`] was rejected (see
/// [`crate::SharedCatalogue::append`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IngestError {
    /// The batch names a column the table does not have.
    UnknownColumn(String),
    /// A table column is absent from the batch (partial inserts are
    /// unsupported: the column store has no NULLs).
    MissingColumn(String),
    /// The batch names one column twice.
    DuplicateColumn(String),
    /// A column's value count disagrees with the rest of the batch.
    RaggedBatch {
        /// The offending column.
        column: String,
        /// Values that column carries.
        rows: usize,
        /// Values the other columns carry.
        expected: usize,
    },
    /// A row-major tuple ([`RowBatch::from_rows`]) whose width
    /// disagrees with the column list.
    TupleArity {
        /// 1-based row number.
        row: usize,
        /// Columns the batch names.
        expected: usize,
        /// Values the row carries.
        got: usize,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::UnknownColumn(c) => {
                write!(f, "batch column {c:?} is not in the table")
            }
            IngestError::MissingColumn(c) => write!(
                f,
                "table column {c:?} is missing from the batch (no NULLs: \
                 every column must be supplied)"
            ),
            IngestError::DuplicateColumn(c) => {
                write!(f, "batch names column {c:?} twice")
            }
            IngestError::RaggedBatch {
                column,
                rows,
                expected,
            } => write!(
                f,
                "column {column:?} carries {rows} value(s), the batch \
                 expects {expected}"
            ),
            IngestError::TupleArity { row, expected, got } => write!(
                f,
                "row {row} has {got} value(s), the column list names \
                 {expected}"
            ),
        }
    }
}

impl Error for IngestError {}

/// When the catalogue merges a table's delta into its base. The delta
/// keeps appends O(batch) and reads pay one base++delta merge per data
/// version; compaction bounds that merge (and the delta's memory) by
/// folding the delta into a new immutable base and re-seeding the
/// statistics from the merged columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Compact when the delta holds at least this many rows.
    pub max_delta_rows: usize,
    /// Compact when the delta reaches this fraction of the base row
    /// count (`1.0` = as large as the base).
    pub max_delta_fraction: f64,
}

impl Default for CompactionPolicy {
    /// Compact at 4096 delta rows, or when the delta grows as large as
    /// the base — whichever comes first.
    fn default() -> Self {
        Self {
            max_delta_rows: 4096,
            max_delta_fraction: 1.0,
        }
    }
}

impl CompactionPolicy {
    /// Never compact (deltas grow without bound; reads still merge).
    pub fn never() -> Self {
        Self {
            max_delta_rows: usize::MAX,
            max_delta_fraction: f64::INFINITY,
        }
    }

    /// Compact whenever the delta reaches `rows` rows.
    pub fn every(rows: usize) -> Self {
        Self {
            max_delta_rows: rows.max(1),
            max_delta_fraction: f64::INFINITY,
        }
    }

    /// Whether a table with `base_rows` base rows and `delta_rows`
    /// delta rows should compact now.
    pub fn should_compact(&self, base_rows: usize, delta_rows: usize) -> bool {
        delta_rows > 0
            && (delta_rows >= self.max_delta_rows
                || delta_rows as f64 >= self.max_delta_fraction * base_rows.max(1) as f64)
    }
}

/// What one append did (see [`crate::SharedCatalogue::append`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// Rows appended by this batch.
    pub rows: usize,
    /// Rows in the delta after this append (0 right after compaction).
    pub delta_rows: usize,
    /// Whether this append tripped the [`CompactionPolicy`] and the
    /// delta was merged into a new base.
    pub compacted: bool,
    /// The table's data version after this append (bumped per
    /// non-empty batch; the schema/registration version is untouched).
    pub data_version: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_transposes() {
        let b = RowBatch::from_rows(
            &["g".to_string(), "v".to_string()],
            &[vec![1, 10], vec![2, 20], vec![3, 30]],
        )
        .unwrap();
        assert_eq!(b.rows(), 3);
        assert_eq!(b.width(), 2);
        let cols: Vec<(&str, &[u32])> = b.columns().collect();
        assert_eq!(cols[0], ("g", &[1u32, 2, 3][..]));
        assert_eq!(cols[1], ("v", &[10u32, 20, 30][..]));
    }

    #[test]
    fn from_rows_rejects_ragged_tuples_instead_of_dropping_values() {
        let e = RowBatch::from_rows(&["g".to_string()], &[vec![1, 2]]).unwrap_err();
        assert_eq!(
            e,
            IngestError::TupleArity {
                row: 1,
                expected: 1,
                got: 2
            }
        );
        let e = RowBatch::from_rows(&["g".to_string(), "v".to_string()], &[vec![1, 2], vec![3]])
            .unwrap_err();
        assert_eq!(
            e,
            IngestError::TupleArity {
                row: 2,
                expected: 2,
                got: 1
            }
        );
        assert!(e.to_string().contains("row 2"));
    }

    #[test]
    fn validate_catches_every_mismatch() {
        let schema = ["g", "v"];
        let ok = RowBatch::new()
            .with_column("v", vec![1])
            .with_column("g", vec![2]);
        assert_eq!(ok.validate(&schema), Ok(()));

        let unknown = RowBatch::new()
            .with_column("g", vec![1])
            .with_column("v", vec![1])
            .with_column("x", vec![1]);
        assert_eq!(
            unknown.validate(&schema),
            Err(IngestError::UnknownColumn("x".into()))
        );

        let missing = RowBatch::new().with_column("g", vec![1]);
        assert_eq!(
            missing.validate(&schema),
            Err(IngestError::MissingColumn("v".into()))
        );

        let dup = RowBatch::new()
            .with_column("g", vec![1])
            .with_column("g", vec![2]);
        assert_eq!(
            dup.validate(&schema),
            Err(IngestError::DuplicateColumn("g".into()))
        );

        let ragged = RowBatch::new()
            .with_column("g", vec![1, 2])
            .with_column("v", vec![1]);
        assert_eq!(
            ragged.validate(&schema),
            Err(IngestError::RaggedBatch {
                column: "v".into(),
                rows: 1,
                expected: 2
            })
        );
    }

    #[test]
    fn errors_display_readably_and_implement_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<IngestError>();
        assert!(IngestError::MissingColumn("v".into())
            .to_string()
            .contains("NULL"));
        assert!(IngestError::RaggedBatch {
            column: "v".into(),
            rows: 1,
            expected: 2
        }
        .to_string()
        .contains("1 value(s)"));
    }

    #[test]
    fn compaction_policy_thresholds() {
        let p = CompactionPolicy::default();
        assert!(!p.should_compact(100, 0), "an empty delta never compacts");
        assert!(!p.should_compact(100, 99));
        assert!(p.should_compact(100, 100), "fraction 1.0 of the base");
        assert!(p.should_compact(1_000_000, 4096), "absolute threshold");
        assert!(!p.should_compact(1_000_000, 4095));

        assert!(!CompactionPolicy::never().should_compact(1, usize::MAX - 1));
        assert!(CompactionPolicy::every(3).should_compact(1_000_000, 3));
        assert!(!CompactionPolicy::every(3).should_compact(1_000_000, 2));
        // `every(0)` clamps to 1: compaction on every non-empty append.
        assert!(CompactionPolicy::every(0).should_compact(10, 1));
    }
}
