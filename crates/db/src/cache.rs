//! The plan cache: reusing planning work across queries of one *shape*.
//!
//! Planning a query costs a host-side statistics pass over the grouping
//! column (the §III-A metadata scan, mirrored at plan time) — wasted
//! work when traffic repeats the same query shape with different
//! literals. A [`PlanCache`] keys plans by normalized [`QueryShape`]
//! (table + catalogue version + column set + filter *structure* +
//! aggregate kinds — every literal constant masked to `?`), so
//! `WHERE v > 10` and `WHERE v > 99` share one entry: on a hit the
//! cached plan is [rebound](crate::QueryPlan) to the incoming literals,
//! which is sound because plan-time statistics are taken over the
//! unfiltered table and no literal feeds the §V-D algorithm choice.
//!
//! The cache is LRU-evicting and counts hits, misses, evictions and
//! invalidations; re-registering a table bumps its catalogue version
//! and purges that table's entries, so a stale plan (snapshotting the
//! *old* table's columns) can never serve the new data.

use crate::plan::QueryPlan;
use crate::query::{AggregateQuery, OrderKey};
use std::collections::HashMap;
use std::fmt;

/// The normalized shape of a query against one catalogue state: table
/// name, the table's registration version, and the query with every
/// literal constant masked to `?`.
///
/// Two queries with equal shapes are served by one plan modulo
/// rebinding the constants.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryShape(String);

impl QueryShape {
    /// Computes the shape key for `query` against `table` at catalogue
    /// `version`.
    pub fn of(table: &str, version: u64, query: &AggregateQuery) -> Self {
        use fmt::Write as _;
        let group_list = query.group_columns().join(", ");
        let aggs: Vec<String> = query
            .aggregates
            .iter()
            .map(|a| a.sql(&query.value))
            .collect();
        let mut s = format!(
            "{table}#v{version}: SELECT {group_list}, {}",
            aggs.join(", ")
        );
        if let Some((col, pred)) = &query.filter {
            let _ = write!(s, " WHERE {col} {}", masked(pred.sql()));
        }
        let _ = write!(s, " GROUP BY {group_list}");
        if let Some(h) = &query.having {
            let _ = write!(
                s,
                " HAVING {} {}",
                h.agg.sql(&query.value),
                masked(h.pred.sql())
            );
        }
        if let Some(ob) = &query.order_by {
            let key = match ob.key {
                OrderKey::Group => query.group_by.clone(),
                OrderKey::Agg(a) => a.sql(&query.value),
            };
            let _ = write!(s, " ORDER BY {key}");
            if ob.desc {
                s += " DESC";
            }
            if ob.limit.is_some() {
                s += " LIMIT ?";
            }
        }
        QueryShape(s)
    }
}

impl fmt::Display for QueryShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Masks the constant of a rendered comparison (`"<> 3"` → `"<> ?"`),
/// collapsing `NonZero` and `NotEqual` into one structural family.
fn masked(pred_sql: String) -> String {
    match pred_sql.split_once(' ') {
        Some((op, _)) => format!("{op} ?"),
        None => pred_sql,
    }
}

/// Hit/miss accounting for a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (after rebinding constants).
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
    /// Entries dropped to make room (LRU order).
    pub evictions: u64,
    /// Entries purged because their table was re-registered.
    pub invalidations: u64,
}

struct Entry {
    plan: QueryPlan,
    table: String,
    last_used: u64,
}

/// An LRU cache of [`QueryPlan`]s keyed by [`QueryShape`].
///
/// The cache itself is a passive map — [`crate::SharedCatalogue`] wires
/// it into planning (shape computation, rebinding, the algorithm
/// re-check) and invalidation (on table re-registration).
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<QueryShape, Entry>,
    stats: CacheStats,
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PlanCache {
    /// Plan shapes retained by default. Shapes are whole query
    /// templates, so even heavy dashboards rarely exceed a few dozen.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// An empty cache retaining at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Cached plans currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The running hit/miss/eviction/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up a shape, refreshing its recency and counting a hit.
    /// Counting the miss is [`PlanCache::insert`]'s job, so a lookup
    /// that the caller resolves by planning is charged exactly once.
    pub fn get(&mut self, shape: &QueryShape) -> Option<QueryPlan> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(shape) {
            Some(e) => {
                e.last_used = tick;
                self.stats.hits += 1;
                Some(e.plan.clone())
            }
            None => None,
        }
    }

    /// Inserts a freshly planned shape, counting the miss that caused
    /// it and evicting the least-recently-used entry when full.
    pub fn insert(&mut self, shape: QueryShape, plan: QueryPlan) {
        self.stats.misses += 1;
        self.tick += 1;
        if !self.entries.contains_key(&shape) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        let table = plan.table().to_string();
        self.entries.insert(
            shape,
            Entry {
                plan,
                table,
                last_used: self.tick,
            },
        );
    }

    /// Counts a planning pass whose result could not be cached (e.g.
    /// the table was re-registered between the version snapshot and
    /// the insert), keeping hit + miss == lookups exact.
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Purges every plan of `table` (on re-registration / statistics
    /// change), returning how many entries were dropped.
    pub fn invalidate_table(&mut self, table: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.table != table);
        let dropped = before - self.entries.len();
        self.stats.invalidations += dropped as u64;
        dropped
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::filter::Predicate;
    use crate::table::Table;

    fn plan_for(query: &AggregateQuery) -> QueryPlan {
        let t = Table::new("r")
            .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
            .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0]);
        Engine::new().plan(&t, query).unwrap()
    }

    #[test]
    fn shapes_mask_literals_but_keep_structure() {
        let q = |k| AggregateQuery::paper("g", "v").with_filter("v", Predicate::GreaterThan(k));
        assert_eq!(
            QueryShape::of("r", 0, &q(1)),
            QueryShape::of("r", 0, &q(99))
        );
        // NonZero and NotEqual share the structural `<>` family.
        let ne = AggregateQuery::paper("g", "v").with_filter("v", Predicate::NotEqual(7));
        let nz = AggregateQuery::paper("g", "v").with_filter("v", Predicate::NonZero);
        assert_eq!(QueryShape::of("r", 0, &ne), QueryShape::of("r", 0, &nz));
        // Different comparison structure → different shape.
        let lt = AggregateQuery::paper("g", "v").with_filter("v", Predicate::LessThan(7));
        assert_ne!(QueryShape::of("r", 0, &ne), QueryShape::of("r", 0, &lt));
        // Catalogue version and table are part of the key.
        assert_ne!(QueryShape::of("r", 0, &ne), QueryShape::of("r", 1, &ne));
        assert_ne!(QueryShape::of("r", 0, &ne), QueryShape::of("s", 0, &ne));
        // LIMIT is masked; its presence still shapes the key.
        let lim = AggregateQuery::paper("g", "v").with_limit(3);
        assert_eq!(
            QueryShape::of("r", 0, &lim),
            QueryShape::of("r", 0, &AggregateQuery::paper("g", "v").with_limit(9))
        );
        assert_ne!(
            QueryShape::of("r", 0, &lim),
            QueryShape::of("r", 0, &AggregateQuery::paper("g", "v"))
        );
    }

    #[test]
    fn shape_renders_readably() {
        let q = AggregateQuery::paper("g", "v").with_filter("v", Predicate::GreaterThan(10));
        assert_eq!(
            QueryShape::of("r", 2, &q).to_string(),
            "r#v2: SELECT g, COUNT(*), SUM(v) WHERE v > ? GROUP BY g"
        );
    }

    #[test]
    fn get_and_insert_count_hits_and_misses() {
        let mut cache = PlanCache::new(4);
        let q = AggregateQuery::paper("g", "v");
        let shape = QueryShape::of("r", 0, &q);
        assert!(cache.get(&shape).is_none());
        cache.insert(shape.clone(), plan_for(&q));
        assert!(cache.get(&shape).is_some());
        assert!(cache.get(&shape).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_shape() {
        let mut cache = PlanCache::new(2);
        let queries: Vec<AggregateQuery> = vec![
            AggregateQuery::paper("g", "v"),
            AggregateQuery::paper("g", "v").with_filter("v", Predicate::NonZero),
            AggregateQuery::paper("g", "v").with_limit(1),
        ];
        let shapes: Vec<QueryShape> = queries.iter().map(|q| QueryShape::of("r", 0, q)).collect();
        cache.insert(shapes[0].clone(), plan_for(&queries[0]));
        cache.insert(shapes[1].clone(), plan_for(&queries[1]));
        // Touch shape 0 so shape 1 is the LRU victim.
        assert!(cache.get(&shapes[0]).is_some());
        cache.insert(shapes[2].clone(), plan_for(&queries[2]));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&shapes[0]).is_some());
        assert!(cache.get(&shapes[1]).is_none(), "evicted");
        assert!(cache.get(&shapes[2]).is_some());
    }

    #[test]
    fn invalidation_purges_only_the_named_table() {
        let mut cache = PlanCache::new(8);
        let q = AggregateQuery::paper("g", "v");
        let mut plan_s = plan_for(&q);
        plan_s.table = "s".into();
        cache.insert(QueryShape::of("r", 0, &q), plan_for(&q));
        cache.insert(QueryShape::of("s", 0, &q), plan_s);
        assert_eq!(cache.invalidate_table("r"), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().invalidations, 1);
        assert!(cache.get(&QueryShape::of("s", 0, &q)).is_some());
    }
}
