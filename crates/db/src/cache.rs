//! The plan cache: reusing planning work across queries of one *shape*.
//!
//! Planning a query costs a host-side statistics pass over the grouping
//! column (the §III-A metadata scan, mirrored at plan time) — wasted
//! work when traffic repeats the same query shape with different
//! literals. A [`PlanCache`] keys plans by normalized [`QueryShape`]
//! (table + schema version + column set + filter *structure* +
//! aggregate kinds — every literal constant masked to `?`), so
//! `WHERE v > 10` and `WHERE v > 99` share one entry: on a hit the
//! cached plan is [rebound](crate::QueryPlan) to the incoming literals,
//! which is sound because plan-time statistics are taken over the
//! unfiltered table and no literal feeds the §V-D algorithm choice.
//!
//! The cache is LRU-evicting and counts hits, misses, evictions,
//! invalidations and rebases. Two kinds of staleness exist:
//!
//! * **schema change** (re-registration) bumps the version inside the
//!   shape key and purges the table's entries outright;
//! * **data change** (ingest through the write path) bumps the entry's
//!   *data version* tag. A stale-data entry is not dropped blindly: the
//!   catalogue tries to [rebase](PlanCache::rebase) it onto the new
//!   column snapshots using the incrementally maintained statistics —
//!   only *stats-sensitive* entries (the §V-D algorithm choice flipped,
//!   or the plan cannot be cheaply refreshed) are invalidated and
//!   re-planned from scratch.

use crate::plan::QueryPlan;
use crate::query::{AggregateQuery, OrderKey};
use std::collections::HashMap;
use std::fmt;

/// The normalized shape of a query against one catalogue state: table
/// name, the table's registration version, and the query with every
/// literal constant masked to `?`.
///
/// Two queries with equal shapes are served by one plan modulo
/// rebinding the constants.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryShape(String);

impl QueryShape {
    /// Computes the shape key for `query` against `table` at catalogue
    /// `version`.
    pub fn of(table: &str, version: u64, query: &AggregateQuery) -> Self {
        use fmt::Write as _;
        let group_list = query.group_columns().join(", ");
        let aggs: Vec<String> = query
            .aggregates
            .iter()
            .map(|a| a.sql(&query.value))
            .collect();
        let mut s = format!(
            "{table}#v{version}: SELECT {group_list}, {}",
            aggs.join(", ")
        );
        if let Some((col, pred)) = &query.filter {
            let _ = write!(s, " WHERE {col} {}", masked(pred.sql()));
        }
        let _ = write!(s, " GROUP BY {group_list}");
        if let Some(h) = &query.having {
            let _ = write!(
                s,
                " HAVING {} {}",
                h.agg.sql(&query.value),
                masked(h.pred.sql())
            );
        }
        if let Some(ob) = &query.order_by {
            let key = match ob.key {
                OrderKey::Group => query.group_by.clone(),
                OrderKey::Agg(a) => a.sql(&query.value),
            };
            let _ = write!(s, " ORDER BY {key}");
            if ob.desc {
                s += " DESC";
            }
            if ob.limit.is_some() {
                s += " LIMIT ?";
            }
        }
        QueryShape(s)
    }
}

impl fmt::Display for QueryShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Masks the constant of a rendered comparison (`"<> 3"` → `"<> ?"`),
/// collapsing `NonZero` and `NotEqual` into one structural family.
fn masked(pred_sql: String) -> String {
    match pred_sql.split_once(' ') {
        Some((op, _)) => format!("{op} ?"),
        None => pred_sql,
    }
}

/// Hit/miss accounting for a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (after rebinding constants),
    /// including stale-data entries served after a successful rebase.
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
    /// Entries dropped to make room (LRU order).
    pub evictions: u64,
    /// Entries purged as unusable: the table was re-registered, or an
    /// ingest drifted the statistics past the §V-D decision threshold
    /// (a *stats-sensitive* entry — see [`PlanCache::drop_stale`]).
    pub invalidations: u64,
    /// Stale-data entries refreshed in place: the data version moved
    /// but the statistics left the algorithm choice standing, so the
    /// plan was rebased onto the new column snapshots instead of being
    /// re-planned (see [`PlanCache::rebase`]).
    pub rebases: u64,
}

impl CacheStats {
    /// Folds these counters into a [`crate::MetricsSnapshot`] under
    /// `plan_cache_*` names — the plan cache's contribution to the
    /// unified registry view.
    pub(crate) fn export_into(&self, snap: &mut crate::metrics::MetricsSnapshot) {
        snap.add("plan_cache_hits", self.hits);
        snap.add("plan_cache_misses", self.misses);
        snap.add("plan_cache_evictions", self.evictions);
        snap.add("plan_cache_invalidations", self.invalidations);
        snap.add("plan_cache_rebases", self.rebases);
    }
}

/// What [`PlanCache::lookup`] found for a shape at a data version.
#[derive(Debug, Clone)]
pub enum Lookup {
    /// An entry planned against the current data version: a plain hit
    /// (already counted), ready to rebind and serve.
    Fresh(QueryPlan),
    /// An entry from an older data version. Nothing is counted yet:
    /// the caller decides between [`PlanCache::rebase`] (refresh in
    /// place) and [`PlanCache::drop_stale`] (stats-sensitive
    /// invalidation followed by a fresh plan).
    Stale(QueryPlan),
    /// No entry (the miss is counted by [`PlanCache::insert`]).
    Miss,
}

struct Entry {
    plan: QueryPlan,
    table: String,
    data_version: u64,
    last_used: u64,
}

/// An LRU cache of [`QueryPlan`]s keyed by [`QueryShape`].
///
/// The cache itself is a passive map — [`crate::SharedCatalogue`] wires
/// it into planning (shape computation, rebinding, the algorithm
/// re-check) and invalidation (on table re-registration).
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<QueryShape, Entry>,
    stats: CacheStats,
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("len", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PlanCache {
    /// Plan shapes retained by default. Shapes are whole query
    /// templates, so even heavy dashboards rarely exceed a few dozen.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// An empty cache retaining at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Cached plans currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The running hit/miss/eviction/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up a shape at the table's current `data_version`. A
    /// current-version entry is a counted hit ([`Lookup::Fresh`],
    /// recency refreshed); an older-version entry comes back as
    /// [`Lookup::Stale`] with nothing counted — the caller resolves it
    /// with [`PlanCache::rebase`] or [`PlanCache::drop_stale`].
    /// Counting the miss is [`PlanCache::insert`]'s job, so a lookup
    /// that the caller resolves by planning is charged exactly once.
    pub fn lookup(&mut self, shape: &QueryShape, data_version: u64) -> Lookup {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(shape) {
            Some(e) if e.data_version == data_version => {
                e.last_used = tick;
                self.stats.hits += 1;
                Lookup::Fresh(e.plan.clone())
            }
            Some(e) => Lookup::Stale(e.plan.clone()),
            None => Lookup::Miss,
        }
    }

    /// Replaces a stale entry's plan with one rebased onto the current
    /// data version, counting a hit plus a rebase. Skipped (returning
    /// `false`, nothing counted) if the entry vanished or was already
    /// refreshed past `data_version` by a concurrent caller.
    pub fn rebase(&mut self, shape: &QueryShape, plan: QueryPlan, data_version: u64) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(shape) {
            Some(e) if e.data_version <= data_version => {
                e.plan = plan;
                e.data_version = data_version;
                e.last_used = tick;
                self.stats.hits += 1;
                self.stats.rebases += 1;
                true
            }
            _ => false,
        }
    }

    /// Drops a stale entry whose plan could not be rebased — the
    /// *stats-sensitive* invalidation of the write path (the drifted
    /// statistics flipped the §V-D choice, or the plan needs a real
    /// statistics pass). Counted as an invalidation. Entries already
    /// at (or past) the caller's `data_version` are left alone: a
    /// reader holding an older snapshot must not tear down an entry a
    /// concurrent planner just refreshed.
    pub fn drop_stale(&mut self, shape: &QueryShape, data_version: u64) {
        if self
            .entries
            .get(shape)
            .is_some_and(|e| e.data_version < data_version)
        {
            self.entries.remove(shape);
            self.stats.invalidations += 1;
        }
    }

    /// Inserts a freshly planned shape at `data_version`, counting the
    /// miss that caused it and evicting the least-recently-used entry
    /// when full.
    pub fn insert(&mut self, shape: QueryShape, plan: QueryPlan, data_version: u64) {
        self.stats.misses += 1;
        self.tick += 1;
        if !self.entries.contains_key(&shape) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        let table = plan.table().to_string();
        self.entries.insert(
            shape,
            Entry {
                plan,
                table,
                data_version,
                last_used: self.tick,
            },
        );
    }

    /// Counts a planning pass whose result could not be cached (e.g.
    /// the table was re-registered between the version snapshot and
    /// the insert, or the plan was made at an old [`crate::Snapshot`]),
    /// keeping hit + miss == lookups exact.
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Counts a lookup served from a cached entry *without* touching
    /// the entry — a reader at an old [`crate::Snapshot`] rebasing a
    /// newer entry locally ([`PlanCache::rebase`] refuses to regress
    /// the entry itself), keeping hit + miss == lookups exact.
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Purges every plan of `table` (on re-registration / statistics
    /// change), returning how many entries were dropped.
    pub fn invalidate_table(&mut self, table: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.table != table);
        let dropped = before - self.entries.len();
        self.stats.invalidations += dropped as u64;
        dropped
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::filter::Predicate;
    use crate::table::Table;

    fn plan_for(query: &AggregateQuery) -> QueryPlan {
        let t = Table::new("r")
            .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
            .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0]);
        Engine::new().plan(&t, query).unwrap()
    }

    #[test]
    fn shapes_mask_literals_but_keep_structure() {
        let q = |k| AggregateQuery::paper("g", "v").with_filter("v", Predicate::GreaterThan(k));
        assert_eq!(
            QueryShape::of("r", 0, &q(1)),
            QueryShape::of("r", 0, &q(99))
        );
        // NonZero and NotEqual share the structural `<>` family.
        let ne = AggregateQuery::paper("g", "v").with_filter("v", Predicate::NotEqual(7));
        let nz = AggregateQuery::paper("g", "v").with_filter("v", Predicate::NonZero);
        assert_eq!(QueryShape::of("r", 0, &ne), QueryShape::of("r", 0, &nz));
        // Different comparison structure → different shape.
        let lt = AggregateQuery::paper("g", "v").with_filter("v", Predicate::LessThan(7));
        assert_ne!(QueryShape::of("r", 0, &ne), QueryShape::of("r", 0, &lt));
        // Catalogue version and table are part of the key.
        assert_ne!(QueryShape::of("r", 0, &ne), QueryShape::of("r", 1, &ne));
        assert_ne!(QueryShape::of("r", 0, &ne), QueryShape::of("s", 0, &ne));
        // LIMIT is masked; its presence still shapes the key.
        let lim = AggregateQuery::paper("g", "v").with_limit(3);
        assert_eq!(
            QueryShape::of("r", 0, &lim),
            QueryShape::of("r", 0, &AggregateQuery::paper("g", "v").with_limit(9))
        );
        assert_ne!(
            QueryShape::of("r", 0, &lim),
            QueryShape::of("r", 0, &AggregateQuery::paper("g", "v"))
        );
    }

    #[test]
    fn shape_renders_readably() {
        let q = AggregateQuery::paper("g", "v").with_filter("v", Predicate::GreaterThan(10));
        assert_eq!(
            QueryShape::of("r", 2, &q).to_string(),
            "r#v2: SELECT g, COUNT(*), SUM(v) WHERE v > ? GROUP BY g"
        );
    }

    #[test]
    fn lookup_and_insert_count_hits_and_misses() {
        let mut cache = PlanCache::new(4);
        let q = AggregateQuery::paper("g", "v");
        let shape = QueryShape::of("r", 0, &q);
        assert!(matches!(cache.lookup(&shape, 1), Lookup::Miss));
        cache.insert(shape.clone(), plan_for(&q), 1);
        assert!(matches!(cache.lookup(&shape, 1), Lookup::Fresh(_)));
        assert!(matches!(cache.lookup(&shape, 1), Lookup::Fresh(_)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn stale_data_versions_come_back_uncounted() {
        let mut cache = PlanCache::new(4);
        let q = AggregateQuery::paper("g", "v");
        let shape = QueryShape::of("r", 0, &q);
        cache.insert(shape.clone(), plan_for(&q), 1);
        // An append bumped the data version: the entry is stale, and
        // the lookup alone charges nothing.
        assert!(matches!(cache.lookup(&shape, 2), Lookup::Stale(_)));
        assert_eq!(cache.stats().hits, 0);

        // Rebasing refreshes it in place: hit + rebase, and the next
        // lookup at the new version is fresh.
        assert!(cache.rebase(&shape, plan_for(&q), 2));
        let s = cache.stats();
        assert_eq!((s.hits, s.rebases, s.invalidations), (1, 1, 0));
        assert!(matches!(cache.lookup(&shape, 2), Lookup::Fresh(_)));
    }

    #[test]
    fn drop_stale_counts_a_stats_sensitive_invalidation() {
        let mut cache = PlanCache::new(4);
        let q = AggregateQuery::paper("g", "v");
        let shape = QueryShape::of("r", 0, &q);
        cache.insert(shape.clone(), plan_for(&q), 1);
        assert!(matches!(cache.lookup(&shape, 2), Lookup::Stale(_)));
        cache.drop_stale(&shape, 2);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().invalidations, 1);
        // Dropping twice is a no-op.
        cache.drop_stale(&shape, 2);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn drop_stale_never_tears_down_a_current_or_newer_entry() {
        let mut cache = PlanCache::new(4);
        let q = AggregateQuery::paper("g", "v");
        let shape = QueryShape::of("r", 0, &q);
        // A concurrent planner refreshed the entry to data version 2;
        // a racer still holding the version-1 snapshot must not remove
        // it (same version: guarded; older caller: guarded).
        cache.insert(shape.clone(), plan_for(&q), 2);
        cache.drop_stale(&shape, 2);
        cache.drop_stale(&shape, 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().invalidations, 0);
        assert!(matches!(cache.lookup(&shape, 2), Lookup::Fresh(_)));
    }

    #[test]
    fn rebase_never_regresses_a_newer_entry() {
        let mut cache = PlanCache::new(4);
        let q = AggregateQuery::paper("g", "v");
        let shape = QueryShape::of("r", 0, &q);
        cache.insert(shape.clone(), plan_for(&q), 5);
        // A racer holding an older snapshot must not roll the entry
        // back to data version 3.
        assert!(!cache.rebase(&shape, plan_for(&q), 3));
        assert!(matches!(cache.lookup(&shape, 5), Lookup::Fresh(_)));
        // ...and rebasing a vanished entry is a counted no-op.
        assert!(!cache.rebase(&QueryShape::of("x", 0, &q), plan_for(&q), 1));
        assert_eq!(cache.stats().rebases, 0);
    }

    #[test]
    fn lru_evicts_the_coldest_shape() {
        let mut cache = PlanCache::new(2);
        let queries: Vec<AggregateQuery> = vec![
            AggregateQuery::paper("g", "v"),
            AggregateQuery::paper("g", "v").with_filter("v", Predicate::NonZero),
            AggregateQuery::paper("g", "v").with_limit(1),
        ];
        let shapes: Vec<QueryShape> = queries.iter().map(|q| QueryShape::of("r", 0, q)).collect();
        cache.insert(shapes[0].clone(), plan_for(&queries[0]), 1);
        cache.insert(shapes[1].clone(), plan_for(&queries[1]), 1);
        // Touch shape 0 so shape 1 is the LRU victim.
        assert!(matches!(cache.lookup(&shapes[0], 1), Lookup::Fresh(_)));
        cache.insert(shapes[2].clone(), plan_for(&queries[2]), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(matches!(cache.lookup(&shapes[0], 1), Lookup::Fresh(_)));
        assert!(
            matches!(cache.lookup(&shapes[1], 1), Lookup::Miss),
            "evicted"
        );
        assert!(matches!(cache.lookup(&shapes[2], 1), Lookup::Fresh(_)));
    }

    #[test]
    fn invalidation_purges_only_the_named_table() {
        let mut cache = PlanCache::new(8);
        let q = AggregateQuery::paper("g", "v");
        let mut plan_s = plan_for(&q);
        plan_s.table = "s".into();
        cache.insert(QueryShape::of("r", 0, &q), plan_for(&q), 1);
        cache.insert(QueryShape::of("s", 0, &q), plan_s, 1);
        assert_eq!(cache.invalidate_table("r"), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().invalidations, 1);
        assert!(matches!(
            cache.lookup(&QueryShape::of("s", 0, &q), 1),
            Lookup::Fresh(_)
        ));
    }
}
