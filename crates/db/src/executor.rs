//! Morsel-driven parallel execution: a persistent worker pool with
//! work stealing.
//!
//! The sharded path used to spawn one fresh OS thread per shard per
//! query and hand each thread a *whole* shard — so small cached queries
//! paid thread-creation latency every time, and one skewed partition
//! dictated the makespan while every other thread sat idle. The
//! [`Executor`] replaces both:
//!
//! * **Persistent workers.** A fixed pool of OS threads, each owning a
//!   long-lived [`Session`] (its own simulated machine, caches kept
//!   warm across queries), created once with the
//!   [`crate::ShardedDatabase`] and parked on a condvar between
//!   queries — submitting a query is a mutex/notify, not N `clone()`s
//!   of a thread stack.
//! * **Morsels.** A shard's plan is split into fixed-size row ranges
//!   (morsels) over its base++delta prefix view; each morsel runs the
//!   distributive slice via [`Session::run_partial_range`] and yields a
//!   mergeable [`vagg_core::PartialAggregate`]. The shard's §V-D
//!   algorithm choice rides on the plan, so every morsel of a shard
//!   still runs the algorithm *that shard's* statistics picked.
//! * **Work stealing.** Morsels are seeded onto per-worker deques
//!   (shard *i* → worker *i mod W*, preserving locality). A worker pops
//!   its own deque LIFO (hottest range first); when empty it scans the
//!   other deques and steals FIFO (the victim's coldest, oldest
//!   range) — so a skewed shard's tail is dismantled by idle workers
//!   instead of serialising the query.
//!
//! Merging is order-insensitive (the partial-aggregate merge-join is
//! associative and commutative), so stealing never changes results —
//! only the makespan. [`ExecutorStats`] exposes the steal traffic.

use crate::cancel::CancelToken;
use crate::join::{JoinMorsel, JoinOutcome};
use crate::plan::QueryPlan;
use crate::session::{PartialRun, Session};
use crate::trace::MorselTrace;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use vagg_sim::SimConfig;

/// How an [`Executor`] is shaped. The default — as many workers as
/// shards, 2048-row morsels, stealing on, zone-map pruning on,
/// adaptive sizing off — is what [`crate::ShardedDatabase::new`]
/// builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Worker threads in the pool. `0` means "match the shard count" —
    /// a sentinel [`crate::ShardedDatabase`] resolves before the pool
    /// is built; handing it straight to [`Executor::try_new`] is
    /// rejected with [`ExecutorError::ZeroWorkers`].
    pub workers: usize,
    /// Rows per morsel: the stealable unit of work. Smaller morsels
    /// steal finer (better skew absorption) at more scheduling
    /// overhead. `0` is rejected with
    /// [`ExecutorError::ZeroMorselRows`] — it would make the
    /// coordinator's morsel split loop spin forever.
    pub morsel_rows: usize,
    /// Whether idle workers steal from other workers' deques. Off, the
    /// pool degrades to static shard-to-worker assignment — kept as a
    /// switch so the bench can measure exactly what stealing buys.
    pub steal: bool,
    /// Whether coordinators consult [`Executor::morsel_rows_hint`] —
    /// a sizing hint retuned after every query from the observed
    /// per-morsel cost spread (high variance → smaller morsels so
    /// stealing can rebalance; flat costs → larger morsels to shed
    /// scheduling overhead). Off by default so morsel boundaries stay
    /// reproducible run-to-run.
    pub adaptive: bool,
    /// Whether coordinators prune morsels whose zone maps prove the
    /// WHERE predicate can match no row (see
    /// [`crate::QueryPlan::zone_maps`]). Pruning is result-invariant —
    /// a pruned morsel is exactly one the filter would have emptied —
    /// so this switch exists for the bench to measure what pruning
    /// buys, not for correctness.
    pub prune: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            morsel_rows: 2048,
            steal: true,
            adaptive: false,
            prune: true,
        }
    }
}

/// Why an [`ExecutorConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorError {
    /// `workers == 0` reached the pool unresolved. The sentinel means
    /// "match the shard count" and only [`crate::ShardedDatabase`]
    /// knows that count; a pool cannot be built from it.
    ZeroWorkers,
    /// `morsel_rows == 0`: no rows per morsel means the morsel split
    /// never advances.
    ZeroMorselRows,
}

impl fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutorError::ZeroWorkers => {
                write!(f, "executor config rejected: workers must be at least 1")
            }
            ExecutorError::ZeroMorselRows => {
                write!(f, "executor config rejected: morsel_rows must be at least 1")
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// Lifetime counters of one [`Executor`] (cumulative across queries),
/// plus two point-in-time gauges — [`ExecutorStats::queued`] and
/// [`ExecutorStats::inflight`] — sampled when the stats were taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Queries submitted to the pool.
    pub queries: u64,
    /// Morsels executed in total.
    pub morsels: u64,
    /// Morsels a worker stole from another worker's deque.
    pub steals: u64,
    /// Morsels popped but *not* executed because the query's
    /// [`CancelToken`] had tripped (cumulative).
    pub cancelled_morsels: u64,
    /// Morsels never dispatched: their zone maps proved the WHERE
    /// predicate matches no row in the range (see
    /// [`Executor::note_pruned`]).
    pub morsels_pruned: u64,
    /// Rows those pruned morsels covered.
    pub rows_pruned: u64,
    /// Times the affinity placement re-homed a shard to a different
    /// worker than its previous query used (load imbalance outweighed
    /// stickiness).
    pub affinity_moves: u64,
    /// Tasks seeded on the deques but not yet claimed, at sampling
    /// time.
    queued: u64,
    /// Tasks claimed and currently executing on a worker, at sampling
    /// time.
    inflight: u64,
}

impl ExecutorStats {
    /// Queue-depth gauge: tasks seeded on the per-worker deques that no
    /// worker has claimed yet, at the moment the stats were sampled.
    pub fn queued(&self) -> u64 {
        self.queued
    }

    /// Inflight gauge: tasks a worker had claimed and was executing at
    /// the moment the stats were sampled.
    pub fn inflight(&self) -> u64 {
        self.inflight
    }
}

/// One stealable unit of work: a row range of one shard's plan.
pub(crate) struct Morsel {
    pub(crate) shard: usize,
    pub(crate) plan: Arc<QueryPlan>,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
    /// Composite key domains forced onto the fusion (the coordinator's
    /// global per-column domains). `Some` puts every morsel of every
    /// shard in one shared fused key space — partials merge directly,
    /// no dictionary remap — and skips the per-column max scans (see
    /// [`Session::run_partial_range_forced`]). `None` measures domains
    /// locally, as a standalone session would.
    pub(crate) domains: Option<Arc<[u64]>>,
    /// Record a [`MorselTrace`] while running (`EXPLAIN ANALYZE`).
    /// Traced morsels produce bit-identical partials — tracing only
    /// reads the session's cycle counter (see
    /// [`Session::run_partial_range_traced`]).
    pub(crate) traced: bool,
}

/// What one morsel produced, tagged with where it ran.
pub(crate) struct MorselOutcome {
    pub(crate) shard: usize,
    pub(crate) lo: usize,
    /// Host thread that executed the morsel — placement telemetry
    /// (asserted by the pool's tests); simulated-time load accounting
    /// goes through [`virtual_schedule`] instead.
    #[allow(dead_code)]
    pub(crate) worker: usize,
    /// The worker the affinity placement seeded this morsel on —
    /// [`virtual_schedule`] replays from here.
    pub(crate) home: usize,
    pub(crate) stolen: bool,
    pub(crate) run: PartialRun,
    /// The span recorded when the morsel was traced.
    pub(crate) trace: Option<MorselTrace>,
}

/// Any unit of work the pool schedules: an aggregation morsel (a row
/// range of one shard's plan) or a join morsel (a build or probe row
/// range — see [`crate::join`]). Both are seeded, stolen and drained
/// identically; only the per-morsel execution differs.
pub(crate) enum Task {
    /// An aggregation morsel run on the worker's [`Session`].
    Agg(Morsel),
    /// A join build/probe morsel (no session needed).
    Join(JoinMorsel),
}

impl Task {
    fn shard(&self) -> usize {
        match self {
            Task::Agg(m) => m.shard,
            Task::Join(m) => m.shard,
        }
    }

    /// Rows the task covers — the affinity placement's load weight.
    fn rows(&self) -> u64 {
        match self {
            Task::Agg(m) => (m.hi - m.lo) as u64,
            Task::Join(m) => (m.hi - m.lo) as u64,
        }
    }
}

/// What one [`Task`] produced.
pub(crate) enum TaskOutcome {
    /// An aggregation morsel's partial (boxed: the partial's measured
    /// domains and optional trace dwarf a join outcome).
    Agg(Box<MorselOutcome>),
    /// A join morsel's matched pairs.
    Join(JoinOutcome),
}

impl TaskOutcome {
    fn stolen(&self) -> bool {
        match self {
            TaskOutcome::Agg(o) => o.stolen,
            TaskOutcome::Join(o) => o.stolen,
        }
    }
}

/// The result of [`virtual_schedule`]: deterministic per-worker
/// simulated loads and steal traffic.
pub(crate) struct VirtualSchedule {
    /// Per-worker simulated cycles; the max is the query's makespan.
    pub(crate) loads: Vec<u64>,
    /// Per-worker morsel counts.
    pub(crate) morsels: Vec<u64>,
    /// Per-worker counts of morsels taken from another deque.
    pub(crate) stolen: Vec<u64>,
    /// Total steals across the schedule.
    pub(crate) steals: u64,
}

/// Schedules measured morsel costs onto `workers` *virtual* workers —
/// the deterministic simulated-time counterpart of the pool's host-time
/// scheduling. Host threads race real wall time, and one morsel's wall
/// cost is microseconds while its *simulated* cost is thousands of
/// cycles — so the host assignment says nothing about what W parallel
/// machines would have done. This greedy schedule does: morsels sit on
/// their home worker's deque (the affinity placement's assignment,
/// recorded on each outcome, row order within a shard), the
/// least-loaded worker always acts next, drains its own deque
/// front-to-back, and — with stealing on — an idle worker takes the
/// *tail* morsel of the most-backlogged victim. Returns per-worker
/// simulated loads (their max is the query's makespan), per-worker
/// morsel/steal counts, and the number of steals the schedule needed.
pub(crate) fn virtual_schedule(
    outcomes: &[MorselOutcome],
    workers: usize,
    steal: bool,
) -> VirtualSchedule {
    let mut order: Vec<&MorselOutcome> = outcomes.iter().collect();
    order.sort_by_key(|o| (o.shard, o.lo));
    let mut deques: Vec<VecDeque<u64>> = vec![VecDeque::new(); workers];
    let mut backlog: Vec<u64> = vec![0; workers];
    for o in &order {
        let home = o.home.min(workers - 1);
        deques[home].push_back(o.run.report.cycles);
        backlog[home] += o.run.report.cycles;
    }
    let mut sched = VirtualSchedule {
        loads: vec![0u64; workers],
        morsels: vec![0u64; workers],
        stolen: vec![0u64; workers],
        steals: 0,
    };
    let mut live = vec![true; workers];
    while let Some(w) = (0..workers)
        .filter(|&w| live[w])
        .min_by_key(|&w| (sched.loads[w], w))
    {
        if let Some(cycles) = deques[w].pop_front() {
            backlog[w] -= cycles;
            sched.loads[w] += cycles;
            sched.morsels[w] += 1;
        } else if steal {
            let victim = (0..workers)
                .filter(|&v| !deques[v].is_empty())
                .max_by_key(|&v| (backlog[v], std::cmp::Reverse(v)));
            match victim {
                Some(v) => {
                    let cycles = deques[v].pop_back().expect("victim deque is non-empty");
                    backlog[v] -= cycles;
                    sched.loads[w] += cycles;
                    sched.morsels[w] += 1;
                    sched.stolen[w] += 1;
                    sched.steals += 1;
                }
                None => live[w] = false,
            }
        } else {
            live[w] = false;
        }
    }
    sched
}

/// One in-flight query: per-worker deques, a completion counter, and
/// the shard→worker placement the submission chose.
struct Job {
    deques: Vec<Mutex<VecDeque<Task>>>,
    remaining: AtomicUsize,
    results: Mutex<Vec<TaskOutcome>>,
    /// Home worker per shard id (the affinity placement), so outcomes
    /// and traces report where a morsel was seeded, not `shard mod W`.
    homes: Vec<usize>,
    steal: bool,
    /// The query's cancellation token: checked at every morsel pop —
    /// once tripped, popped tasks are drained *without executing*, so
    /// the workers come free within one morsel's latency while the
    /// coordinator still gets its completion wakeup.
    cancel: Option<CancelToken>,
    /// Set when a morsel panicked on its worker; the coordinator
    /// re-raises instead of merging a silently incomplete answer.
    failed: AtomicBool,
    /// When the job was seeded — traced morsels report their deque
    /// wait as the host time from here to their claim.
    submitted: std::time::Instant,
}

struct State {
    job: Option<Arc<Job>>,
    /// Bumped per submitted job so parked workers can tell a new job
    /// from the one they already drained.
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between queries.
    work: Condvar,
    /// The coordinator parks here while a query is in flight.
    done: Condvar,
    /// Queue-depth gauge: tasks seeded but not yet claimed.
    queued: AtomicU64,
    /// Inflight gauge: tasks claimed and currently executing.
    inflight: AtomicU64,
    /// Cumulative count of morsels drained unexecuted after their
    /// query's token tripped.
    cancelled_morsels: AtomicU64,
    /// Cumulative zone-map pruning counters (reported by coordinators
    /// via [`Executor::note_pruned`] — pruned morsels never reach the
    /// deques).
    morsels_pruned: AtomicU64,
    rows_pruned: AtomicU64,
    /// Cumulative count of shards the affinity placement re-homed.
    affinity_moves: AtomicU64,
}

/// A persistent pool of morsel workers (see the [module docs](self)).
/// Owned by [`crate::ShardedDatabase`]; the pool is created once and
/// reused by every query until the database drops.
pub struct Executor {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    config: ExecutorConfig,
    stats: Mutex<ExecutorStats>,
    /// Sticky shard→worker map fed into the per-query affinity
    /// placement (`usize::MAX` = never placed). Stickiness keeps a
    /// shard's morsels on the worker whose session caches are warm
    /// with that shard's ranges; the placement overrides it only when
    /// load balance demands (counted as an affinity move).
    affinity: Mutex<Vec<usize>>,
    /// Adaptive morsel sizing hint, retuned after every aggregation
    /// query from the observed per-morsel cost spread.
    morsel_hint: AtomicUsize,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.handles.len())
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// [`Executor::try_new`], panicking on a rejected configuration.
    /// Callers that resolved the config themselves (the
    /// [`crate::ShardedDatabase`] constructor) use this; anything
    /// accepting user-supplied configs wants the typed error instead.
    pub fn new(config: ExecutorConfig, sim: SimConfig) -> Self {
        Self::try_new(config, sim).expect("executor config accepted")
    }

    /// Spawns a pool of `config.workers` persistent workers, each
    /// owning a [`Session`] on `sim` (the shards' machine
    /// configuration, so morsel cycle accounting matches the sessions
    /// it replaced). Rejects `workers == 0` (the unresolved "match
    /// shard count" sentinel) and `morsel_rows == 0` with a typed
    /// [`ExecutorError`].
    pub fn try_new(config: ExecutorConfig, sim: SimConfig) -> Result<Self, ExecutorError> {
        if config.workers == 0 {
            return Err(ExecutorError::ZeroWorkers);
        }
        if config.morsel_rows == 0 {
            return Err(ExecutorError::ZeroMorselRows);
        }
        let workers = config.workers;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            queued: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            cancelled_morsels: AtomicU64::new(0),
            morsels_pruned: AtomicU64::new(0),
            rows_pruned: AtomicU64::new(0),
            affinity_moves: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                let sim = sim.clone();
                std::thread::Builder::new()
                    .name(format!("vagg-morsel-worker-{id}"))
                    .spawn(move || worker_loop(id, &shared, sim))
                    .expect("spawn morsel worker")
            })
            .collect();
        Ok(Self {
            shared,
            handles,
            config,
            stats: Mutex::new(ExecutorStats::default()),
            affinity: Mutex::new(Vec::new()),
            morsel_hint: AtomicUsize::new(config.morsel_rows),
        })
    }

    /// Worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// The resolved configuration the pool runs.
    pub fn config(&self) -> ExecutorConfig {
        self.config
    }

    /// Cumulative counters since the pool was built, with the
    /// queue-depth and inflight gauges sampled now.
    pub fn stats(&self) -> ExecutorStats {
        let mut stats = *self.stats.lock().expect("executor stats lock");
        stats.queued = self.shared.queued.load(Ordering::Relaxed);
        stats.inflight = self.shared.inflight.load(Ordering::Relaxed);
        stats.cancelled_morsels = self.shared.cancelled_morsels.load(Ordering::Relaxed);
        stats.morsels_pruned = self.shared.morsels_pruned.load(Ordering::Relaxed);
        stats.rows_pruned = self.shared.rows_pruned.load(Ordering::Relaxed);
        stats.affinity_moves = self.shared.affinity_moves.load(Ordering::Relaxed);
        stats
    }

    /// Records morsels a coordinator pruned by zone map before
    /// submission (they never reach the deques, so the pool can't
    /// count them itself).
    pub(crate) fn note_pruned(&self, morsels: u64, rows: u64) {
        self.shared.morsels_pruned.fetch_add(morsels, Ordering::Relaxed);
        self.shared.rows_pruned.fetch_add(rows, Ordering::Relaxed);
    }

    /// Rows per morsel a coordinator should split with right now: the
    /// configured size, or — with [`ExecutorConfig::adaptive`] on —
    /// the pool's retuned hint. The hint shrinks (half, floored at
    /// `max(256, configured/8)`) when the last query's per-morsel
    /// costs were skewed (max > 2× mean: finer morsels give stealing
    /// something to rebalance) and grows (double, capped at
    /// `configured × 8`) when costs were flat (max < 1.25× mean:
    /// scheduling overhead dominates).
    pub fn morsel_rows_hint(&self) -> usize {
        if self.config.adaptive {
            self.morsel_hint.load(Ordering::Relaxed)
        } else {
            self.config.morsel_rows
        }
    }

    /// Retunes the adaptive sizing hint from one query's observed
    /// per-morsel simulated costs.
    fn retune_morsels(&self, outcomes: &[MorselOutcome]) {
        if !self.config.adaptive || outcomes.len() < 2 {
            return;
        }
        let costs: Vec<u64> = outcomes.iter().map(|o| o.run.report.cycles).collect();
        let max = *costs.iter().max().expect("at least two outcomes");
        let mean = costs.iter().sum::<u64>() / costs.len() as u64;
        let hint = self.morsel_hint.load(Ordering::Relaxed);
        let floor = (self.config.morsel_rows / 8).max(256).min(self.config.morsel_rows);
        let ceil = self.config.morsel_rows.saturating_mul(8);
        let next = if max > mean.saturating_mul(2) {
            (hint / 2).max(floor)
        } else if max.saturating_mul(4) < mean.saturating_mul(5) {
            (hint.saturating_mul(2)).min(ceil)
        } else {
            hint
        };
        self.morsel_hint.store(next, Ordering::Relaxed);
    }

    /// Places each shard on a worker for one submission: shards are
    /// taken heaviest-first (total rows) and each goes to the
    /// least-loaded worker, preferring the worker it used last time
    /// when loads tie — so placement is sticky under stable load
    /// (warm session caches) and rebalances under skew, with stealing
    /// left as the escape valve for what the weights mispredict.
    /// Returns `homes[shard] = worker` and counts re-homings.
    fn place(&self, tasks: &[Task], workers: usize) -> Vec<usize> {
        let shards = tasks.iter().map(Task::shard).max().map_or(0, |s| s + 1);
        let mut weight = vec![0u64; shards];
        for task in tasks {
            weight[task.shard()] += task.rows().max(1);
        }
        let mut order: Vec<usize> = (0..shards).filter(|&s| weight[s] > 0).collect();
        order.sort_by_key(|&s| (std::cmp::Reverse(weight[s]), s));
        let mut sticky = self.affinity.lock().expect("affinity lock");
        if sticky.len() < shards {
            sticky.resize(shards, usize::MAX);
        }
        let mut homes = vec![0usize; shards];
        let mut load = vec![0u64; workers];
        let mut moves = 0u64;
        for s in order {
            let prev = sticky[s];
            let w = (0..workers)
                .min_by_key(|&w| (load[w], (w != prev) as u8, w))
                .expect("at least one worker");
            if prev != usize::MAX && prev != w {
                moves += 1;
            }
            sticky[s] = w;
            homes[s] = w;
            load[w] += weight[s];
        }
        if moves > 0 {
            self.shared.affinity_moves.fetch_add(moves, Ordering::Relaxed);
        }
        homes
    }

    /// Runs one query's morsels to completion on the pool and returns
    /// every morsel's outcome (in completion order). Blocks the
    /// calling coordinator; the workers run concurrently.
    pub(crate) fn execute(
        &self,
        morsels: Vec<Morsel>,
        cancel: Option<&CancelToken>,
    ) -> Vec<MorselOutcome> {
        let outcomes: Vec<MorselOutcome> = self
            .submit(morsels.into_iter().map(Task::Agg).collect(), cancel)
            .into_iter()
            .map(|o| match o {
                TaskOutcome::Agg(o) => *o,
                TaskOutcome::Join(_) => unreachable!("aggregation tasks yield Agg outcomes"),
            })
            .collect();
        self.retune_morsels(&outcomes);
        outcomes
    }

    /// Runs one join phase's morsels (all build, or all probe) to
    /// completion on the pool — the same seeding, stealing and parking
    /// as [`Executor::execute`]. The two phases are two submissions:
    /// the coordinator freezes the build indexes at the barrier in
    /// between, so probe morsels always see a complete build side.
    pub(crate) fn execute_join(
        &self,
        morsels: Vec<JoinMorsel>,
        cancel: Option<&CancelToken>,
    ) -> Vec<JoinOutcome> {
        self.submit(morsels.into_iter().map(Task::Join).collect(), cancel)
            .into_iter()
            .map(|o| match o {
                TaskOutcome::Join(o) => o,
                TaskOutcome::Agg(_) => unreachable!("join tasks yield Join outcomes"),
            })
            .collect()
    }

    /// The shared submission path: seeds the tasks, wakes the pool,
    /// parks until the last task completes, re-raises worker panics.
    /// With a `cancel` token, every morsel pop checks it first: a
    /// tripped token drains the remaining tasks unexecuted (see
    /// [`crate::CancelToken`]) — the caller is responsible for turning
    /// the tripped token into a typed error instead of merging the
    /// incomplete outcome set.
    fn submit(&self, tasks: Vec<Task>, cancel: Option<&CancelToken>) -> Vec<TaskOutcome> {
        if tasks.is_empty() {
            return Vec::new();
        }
        let workers = self.handles.len();
        let total = tasks.len();
        let homes = self.place(&tasks, workers);
        let job = Arc::new(Job {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicUsize::new(total),
            results: Mutex::new(Vec::with_capacity(total)),
            homes: homes.clone(),
            steal: self.config.steal,
            cancel: cancel.cloned(),
            failed: AtomicBool::new(false),
            submitted: std::time::Instant::now(),
        });
        self.shared
            .queued
            .fetch_add(total as u64, Ordering::Relaxed);
        // Seed locality-first: a shard's morsels land on its placed
        // home worker in row order (LIFO pop serves the newest range,
        // FIFO steal takes the oldest).
        for task in tasks {
            let home = homes[task.shard()];
            job.deques[home]
                .lock()
                .expect("morsel deque lock")
                .push_back(task);
        }
        {
            let mut st = self.shared.state.lock().expect("executor state lock");
            debug_assert!(st.job.is_none(), "one query in flight at a time");
            st.job = Some(Arc::clone(&job));
            st.epoch += 1;
            self.shared.work.notify_all();
        }
        // Park until the last morsel's worker clears the job slot.
        {
            let mut st = self.shared.state.lock().expect("executor state lock");
            while st.job.is_some() {
                st = self.shared.done.wait(st).expect("executor state lock");
            }
        }
        if job.failed.load(Ordering::Acquire) {
            panic!("a morsel worker panicked while executing this query");
        }
        let outcomes = std::mem::take(&mut *job.results.lock().expect("results lock"));
        let mut stats = self.stats.lock().expect("executor stats lock");
        stats.queries += 1;
        stats.morsels += outcomes.len() as u64;
        stats.steals += outcomes.iter().filter(|o| o.stolen()).count() as u64;
        outcomes
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("executor state lock");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            handle.join().expect("morsel worker exits cleanly");
        }
    }
}

/// Claims the next morsel for `id`: LIFO off its own deque, else — with
/// stealing on — FIFO off the first non-empty victim, scanning from its
/// right neighbour so steal pressure spreads instead of piling onto
/// worker 0.
fn claim(job: &Job, id: usize) -> Option<(Task, bool)> {
    if let Some(m) = job.deques[id].lock().expect("morsel deque lock").pop_back() {
        return Some((m, false));
    }
    if !job.steal {
        return None;
    }
    let n = job.deques.len();
    for k in 1..n {
        let victim = (id + k) % n;
        if let Some(m) = job.deques[victim]
            .lock()
            .expect("morsel deque lock")
            .pop_front()
        {
            return Some((m, true));
        }
    }
    None
}

fn worker_loop(id: usize, shared: &Shared, sim: SimConfig) {
    let mut session = Session::with_config(sim);
    let mut seen = 0u64;
    loop {
        // Park until a job with a fresh epoch arrives (or shutdown).
        let job = {
            let mut st = shared.state.lock().expect("executor state lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen {
                    seen = st.epoch;
                    if let Some(job) = &st.job {
                        break Arc::clone(job);
                    }
                    // The epoch's job was fully drained before this
                    // worker woke; keep waiting for the next one.
                }
                st = shared.work.wait(st).expect("executor state lock");
            }
        };
        while let Some((task, stolen)) = claim(&job, id) {
            shared.queued.fetch_sub(1, Ordering::Relaxed);
            // The morsel-pop cancellation point: a tripped token means
            // this task is drained unexecuted — counted as finished (so
            // the coordinator still gets its last-morsel wakeup) but
            // contributing no outcome, freeing the worker within one
            // morsel's latency.
            if let Some(cancel) = &job.cancel {
                if cancel.admit_morsel().is_err() {
                    shared.cancelled_morsels.fetch_add(1, Ordering::Relaxed);
                    finish_task(&job, shared);
                    continue;
                }
            }
            shared.inflight.fetch_add(1, Ordering::Relaxed);
            // A panic inside a morsel (the session, the dictionary, or
            // a join sink) must not strand the coordinator on the done
            // condvar: the morsel is still counted as finished, the job
            // is flagged failed, and the coordinator re-raises the
            // panic — while this worker survives to serve later
            // queries.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &task {
                Task::Agg(morsel) => {
                    let queue_wait_ns = morsel
                        .traced
                        .then(|| job.submitted.elapsed().as_nanos() as u64);
                    // Composite grouping rides the forced-domain fast
                    // path: the coordinator's global domains put every
                    // morsel in one shared fused key space, so partials
                    // merge directly — no per-morsel max scans, no
                    // dictionary remap.
                    let (run, steps) = match (&morsel.domains, morsel.traced) {
                        (Some(d), true) => {
                            let (run, steps) = session.run_partial_range_forced_traced(
                                &morsel.plan,
                                morsel.lo,
                                morsel.hi,
                                d,
                            );
                            (run, Some(steps))
                        }
                        (Some(d), false) => (
                            session.run_partial_range_forced(&morsel.plan, morsel.lo, morsel.hi, d),
                            None,
                        ),
                        (None, true) => {
                            let (run, steps) =
                                session.run_partial_range_traced(&morsel.plan, morsel.lo, morsel.hi);
                            (run, Some(steps))
                        }
                        (None, false) => (
                            session.run_partial_range(&morsel.plan, morsel.lo, morsel.hi),
                            None,
                        ),
                    };
                    let trace = steps.map(|steps| MorselTrace {
                        shard: morsel.shard,
                        lo: morsel.lo,
                        hi: morsel.hi,
                        home_worker: job.homes[morsel.shard],
                        worker: id,
                        stolen,
                        queue_wait_ns: queue_wait_ns.unwrap_or(0),
                        cycles: run.report.cycles,
                        steps,
                    });
                    TaskOutcome::Agg(Box::new(MorselOutcome {
                        shard: morsel.shard,
                        lo: morsel.lo,
                        worker: id,
                        home: job.homes[morsel.shard],
                        stolen,
                        run,
                        trace,
                    }))
                }
                Task::Join(morsel) => TaskOutcome::Join(morsel.run(stolen)),
            }));
            match outcome {
                Ok(done) => job.results.lock().expect("results lock").push(done),
                Err(_) => job.failed.store(true, Ordering::Release),
            }
            shared.inflight.fetch_sub(1, Ordering::Relaxed);
            finish_task(&job, shared);
        }
    }
}

/// Counts one task as finished; the last one clears the job slot and
/// wakes the coordinator.
fn finish_task(job: &Job, shared: &Shared) {
    if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut st = shared.state.lock().expect("executor state lock");
        st.job = None;
        shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::query::AggregateQuery;
    use crate::table::Table;
    use vagg_core::PartialAggregate;

    fn plan(n: usize) -> Arc<QueryPlan> {
        let t = Table::new("r")
            .with_column("g", (0..n).map(|i| (i % 7) as u32).collect())
            .with_column("v", (0..n).map(|i| (i % 10) as u32).collect());
        Arc::new(
            Engine::new()
                .plan(&t, &AggregateQuery::paper("g", "v"))
                .unwrap(),
        )
    }

    fn morselize(shard: usize, plan: &Arc<QueryPlan>, rows: usize) -> Vec<Morsel> {
        let mut out = Vec::new();
        let mut lo = 0;
        while lo < plan.rows() {
            let hi = (lo + rows).min(plan.rows());
            out.push(Morsel {
                shard,
                plan: Arc::clone(plan),
                lo,
                hi,
                domains: None,
                traced: false,
            });
            lo = hi;
        }
        out
    }

    fn merged_rows(outcomes: &[MorselOutcome]) -> PartialAggregate {
        PartialAggregate::merge_all(outcomes.iter().map(|o| o.run.partial.clone())).unwrap()
    }

    #[test]
    fn zero_sized_configs_are_rejected_with_typed_errors() {
        let err = Executor::try_new(
            ExecutorConfig {
                workers: 0,
                ..ExecutorConfig::default()
            },
            SimConfig::paper(),
        )
        .unwrap_err();
        assert_eq!(err, ExecutorError::ZeroWorkers);
        assert!(err.to_string().contains("workers"));

        let err = Executor::try_new(
            ExecutorConfig {
                workers: 1,
                morsel_rows: 0,
                ..ExecutorConfig::default()
            },
            SimConfig::paper(),
        )
        .unwrap_err();
        assert_eq!(err, ExecutorError::ZeroMorselRows);
        assert!(err.to_string().contains("morsel"));
    }

    #[test]
    fn pooled_morsels_reproduce_the_whole_answer() {
        let p = plan(500);
        let whole = Session::new().run_partial(&p);
        let exec = Executor::new(
            ExecutorConfig {
                workers: 3,
                morsel_rows: 64,
                ..ExecutorConfig::default()
            },
            SimConfig::paper(),
        );
        for round in 0..3 {
            let outcomes = exec.execute(morselize(0, &p, 64), None);
            assert_eq!(outcomes.len(), 8, "round {round}");
            assert_eq!(merged_rows(&outcomes), whole.partial);
        }
        let stats = exec.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.morsels, 24);
    }

    #[test]
    fn disabling_steal_pins_morsels_to_their_home_worker() {
        let p = plan(400);
        let exec = Executor::new(
            ExecutorConfig {
                workers: 2,
                morsel_rows: 50,
                steal: false,
                ..ExecutorConfig::default()
            },
            SimConfig::paper(),
        );
        // Everything seeded on worker 0 (shard 0); worker 1 must not
        // touch it.
        let outcomes = exec.execute(morselize(0, &p, 50), None);
        assert_eq!(outcomes.len(), 8);
        assert!(outcomes.iter().all(|o| o.worker == 0 && !o.stolen));
        assert_eq!(exec.stats().steals, 0);
    }

    #[test]
    fn stealing_spreads_one_skewed_shard_across_the_pool() {
        let p = plan(4000);
        let exec = Executor::new(
            ExecutorConfig {
                workers: 4,
                morsel_rows: 100,
                ..ExecutorConfig::default()
            },
            SimConfig::paper(),
        );
        // One hot shard, three idle workers: stealing must engage.
        let outcomes = exec.execute(morselize(0, &p, 100), None);
        assert_eq!(outcomes.len(), 40);
        let stolen = outcomes.iter().filter(|o| o.stolen).count();
        assert!(stolen > 0, "idle workers stole from the hot shard");
        assert_eq!(
            merged_rows(&outcomes),
            Session::new().run_partial(&p).partial
        );
        assert_eq!(exec.stats().steals, stolen as u64);
    }

    #[test]
    fn empty_submission_is_a_no_op() {
        let exec = Executor::new(
            ExecutorConfig {
                workers: 1,
                ..ExecutorConfig::default()
            },
            SimConfig::paper(),
        );
        assert!(exec.execute(Vec::new(), None).is_empty());
        assert_eq!(exec.stats().queries, 0);
    }

    #[test]
    fn a_tripped_token_drains_every_morsel_unexecuted() {
        let p = plan(800);
        let exec = Executor::new(
            ExecutorConfig {
                workers: 2,
                morsel_rows: 100,
                ..ExecutorConfig::default()
            },
            SimConfig::paper(),
        );
        let token = CancelToken::new();
        token.cancel();
        let outcomes = exec.execute(morselize(0, &p, 100), Some(&token));
        assert!(outcomes.is_empty(), "no morsel ran after the trip");
        let stats = exec.stats();
        assert_eq!(stats.cancelled_morsels, 8);
        assert_eq!(stats.queued(), 0, "the deques drained fully");
        assert_eq!(stats.inflight(), 0);
    }

    #[test]
    fn the_pool_survives_a_cancelled_query() {
        let p = plan(500);
        let exec = Executor::new(
            ExecutorConfig {
                workers: 3,
                morsel_rows: 64,
                ..ExecutorConfig::default()
            },
            SimConfig::paper(),
        );
        let token = CancelToken::with_morsel_budget(0);
        let drained = exec.execute(morselize(0, &p, 64), Some(&token));
        assert!(drained.is_empty());
        // The next (uncancelled) query on the same pool is whole.
        let outcomes = exec.execute(morselize(0, &p, 64), None);
        assert_eq!(outcomes.len(), 8);
        assert_eq!(
            merged_rows(&outcomes),
            Session::new().run_partial(&p).partial
        );
    }

    #[test]
    fn a_live_token_lets_every_morsel_through() {
        let p = plan(500);
        let exec = Executor::new(
            ExecutorConfig {
                workers: 2,
                morsel_rows: 64,
                ..ExecutorConfig::default()
            },
            SimConfig::paper(),
        );
        let token = CancelToken::new();
        let outcomes = exec.execute(morselize(0, &p, 64), Some(&token));
        assert_eq!(outcomes.len(), 8);
        assert_eq!(token.morsels(), 8, "every pop was counted on the token");
        assert_eq!(exec.stats().cancelled_morsels, 0);
    }
}
