//! The column-store table model.
//!
//! The paper "emulate\[s\] the behaviour of a column-oriented database
//! management system in which columns are stored contiguously as arrays in
//! memory" (§III-A). [`Table`] is that model: named `u32` columns of equal
//! length, with the per-column `sorted` metadata flag a real DBMS keeps
//! and the paper's algorithms consult to skip sorting.

use std::collections::BTreeMap;
use std::sync::Arc;

/// Metadata for one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Column name (unique within the table).
    pub name: String,
    /// DBMS metadata: the column is known to be sorted ascending.
    pub sorted: bool,
}

/// An in-memory column-store table.
///
/// Column data is reference-counted (`Arc`), so planning a query
/// ([`crate::Engine::plan`]) snapshots the columns it needs into the
/// [`crate::QueryPlan`] without copying them.
#[derive(Debug, Clone, Default)]
pub struct Table {
    name: String,
    columns: BTreeMap<String, (ColumnMeta, Arc<[u32]>)>,
    rows: usize,
}

impl Table {
    /// An empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Adds a column; the first column fixes the row count.
    ///
    /// # Panics
    ///
    /// Panics if the name is taken or the length disagrees with existing
    /// columns.
    pub fn with_column(mut self, name: impl Into<String>, data: Vec<u32>) -> Self {
        let name = name.into();
        assert!(
            !self.columns.contains_key(&name),
            "duplicate column {name:?}"
        );
        if self.columns.is_empty() {
            self.rows = data.len();
        } else {
            assert_eq!(data.len(), self.rows, "column {name:?} length mismatch");
        }
        let sorted = data.windows(2).all(|w| w[0] <= w[1]);
        self.columns
            .insert(name.clone(), (ColumnMeta { name, sorted }, Arc::from(data)));
        self
    }

    /// Looks up a column's data.
    pub fn column(&self, name: &str) -> Option<&[u32]> {
        self.columns.get(name).map(|(_, d)| &d[..])
    }

    /// Looks up a column as a shared (`Arc`) slice, for zero-copy
    /// snapshots into a [`crate::QueryPlan`].
    pub fn column_shared(&self, name: &str) -> Option<Arc<[u32]>> {
        self.columns.get(name).map(|(_, d)| Arc::clone(d))
    }

    /// Looks up a column's metadata.
    pub fn meta(&self, name: &str) -> Option<&ColumnMeta> {
        self.columns.get(name).map(|(m, _)| m)
    }

    /// All column names, sorted.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.keys().map(String::as_str).collect()
    }

    /// Loads a table from CSV text: a header row of column names
    /// followed by rows of unsigned 32-bit integers. Empty lines are
    /// skipped; surrounding whitespace in cells is ignored. Sortedness
    /// metadata is detected per column, as in [`Table::with_column`].
    ///
    /// ```
    /// use vagg_db::Table;
    ///
    /// # fn main() -> Result<(), vagg_db::ParseCsvError> {
    /// let t = Table::from_csv("people", "age,earnings\n46,24000\n39,11000")?;
    /// assert_eq!(t.rows(), 2);
    /// assert_eq!(t.column("age"), Some(&[46u32, 39][..]));
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ParseCsvError`] on a missing header, duplicate column
    /// names, ragged rows, or cells that do not parse as `u32`.
    pub fn from_csv(name: impl Into<String>, csv: &str) -> Result<Table, ParseCsvError> {
        let mut lines = csv.lines().map(str::trim).filter(|l| !l.is_empty());
        let header = lines.next().ok_or(ParseCsvError::MissingHeader)?;
        let names: Vec<&str> = header.split(',').map(str::trim).collect();
        if names.iter().any(|n| n.is_empty()) {
            return Err(ParseCsvError::MissingHeader);
        }
        {
            let mut seen = names.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != names.len() {
                return Err(ParseCsvError::DuplicateColumn);
            }
        }
        let mut cols: Vec<Vec<u32>> = vec![Vec::new(); names.len()];
        for (row, line) in lines.enumerate() {
            let cells: Vec<&str> = line.split(',').map(str::trim).collect();
            if cells.len() != names.len() {
                return Err(ParseCsvError::RaggedRow {
                    row: row + 1,
                    cells: cells.len(),
                    expected: names.len(),
                });
            }
            for (col, cell) in cols.iter_mut().zip(cells) {
                col.push(cell.parse().map_err(|_| ParseCsvError::BadCell {
                    row: row + 1,
                    cell: cell.to_string(),
                })?);
            }
        }
        let mut t = Table::new(name);
        for (n, data) in names.into_iter().zip(cols) {
            t = t.with_column(n, data);
        }
        Ok(t)
    }
}

/// Why a CSV document failed to load (see [`Table::from_csv`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseCsvError {
    /// The document has no header row (or an empty column name).
    MissingHeader,
    /// Two header columns share a name.
    DuplicateColumn,
    /// A data row's cell count disagrees with the header.
    RaggedRow {
        /// 1-based data-row number.
        row: usize,
        /// Cells found.
        cells: usize,
        /// Cells expected (header width).
        expected: usize,
    },
    /// A cell is not an unsigned 32-bit integer.
    BadCell {
        /// 1-based data-row number.
        row: usize,
        /// The offending cell text.
        cell: String,
    },
}

impl std::fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseCsvError::MissingHeader => {
                write!(f, "missing or invalid CSV header row")
            }
            ParseCsvError::DuplicateColumn => {
                write!(f, "duplicate column name in CSV header")
            }
            ParseCsvError::RaggedRow {
                row,
                cells,
                expected,
            } => write!(f, "row {row} has {cells} cells, header declares {expected}"),
            ParseCsvError::BadCell { row, cell } => {
                write!(f, "row {row}: cell {cell:?} is not a u32")
            }
        }
    }
}

impl std::error::Error for ParseCsvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_detects_sortedness() {
        let t = Table::new("r")
            .with_column("g", vec![5, 1, 3])
            .with_column("v", vec![1, 2, 3]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.width(), 2);
        assert!(!t.meta("g").unwrap().sorted);
        assert!(t.meta("v").unwrap().sorted);
        assert_eq!(t.column("g"), Some(&[5u32, 1, 3][..]));
        assert!(t.column("nope").is_none());
    }

    #[test]
    fn column_names_sorted() {
        let t = Table::new("r")
            .with_column("b", vec![1])
            .with_column("a", vec![2]);
        assert_eq!(t.column_names(), vec!["a", "b"]);
    }

    #[test]
    fn from_csv_happy_path() {
        let t = Table::from_csv(
            "people",
            "age, earnings\n46, 24000\n\n39, 11000\n58, 24000\n",
        )
        .unwrap();
        assert_eq!(t.name(), "people");
        assert_eq!(t.rows(), 3);
        assert_eq!(t.column("age"), Some(&[46u32, 39, 58][..]));
        assert_eq!(t.column("earnings"), Some(&[24000u32, 11000, 24000][..]));
        assert!(!t.meta("age").unwrap().sorted);
    }

    #[test]
    fn from_csv_detects_sorted_columns() {
        let t = Table::from_csv("r", "g,v\n1,9\n2,8\n3,7").unwrap();
        assert!(t.meta("g").unwrap().sorted);
        assert!(!t.meta("v").unwrap().sorted);
    }

    #[test]
    fn from_csv_errors() {
        assert_eq!(
            Table::from_csv("r", "").unwrap_err(),
            ParseCsvError::MissingHeader
        );
        assert_eq!(
            Table::from_csv("r", "a,a\n1,2").unwrap_err(),
            ParseCsvError::DuplicateColumn
        );
        assert_eq!(
            Table::from_csv("r", "a,b\n1").unwrap_err(),
            ParseCsvError::RaggedRow {
                row: 1,
                cells: 1,
                expected: 2
            }
        );
        assert_eq!(
            Table::from_csv("r", "a\nx").unwrap_err(),
            ParseCsvError::BadCell {
                row: 1,
                cell: "x".into()
            }
        );
        assert!(Table::from_csv("r", "a\n-1").is_err());
        // Errors display readably.
        let e = Table::from_csv("r", "a\nx").unwrap_err();
        assert!(e.to_string().contains("not a u32"));
    }

    #[test]
    fn from_csv_header_only_is_an_empty_table() {
        let t = Table::from_csv("r", "a,b").unwrap();
        assert_eq!(t.rows(), 0);
        assert_eq!(t.width(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = Table::new("r")
            .with_column("a", vec![1, 2])
            .with_column("b", vec![1]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        let _ = Table::new("r")
            .with_column("a", vec![1])
            .with_column("a", vec![2]);
    }
}
