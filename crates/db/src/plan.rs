//! Typed physical plans — the planning half of the plan/execute split.
//!
//! [`crate::Engine::plan`] turns an [`AggregateQuery`] plus a
//! [`crate::Table`]'s
//! DBMS metadata (sortedness, host-visible statistics) into a
//! [`QueryPlan`]: an ordered list of [`PlanStep`]s with the §V-D adaptive
//! algorithm decision resolved up front. The plan is a self-contained,
//! inspectable artifact — render it with [`QueryPlan::explain`], or hand
//! it to a [`crate::Session`] to execute on the simulated vector machine.
//!
//! Planning never touches the machine: cardinality statistics come from
//! host-side scans of the column data the planner would read from DBMS
//! metadata (charged scans are replayed by the session at execution time,
//! exactly as the paper charges the metadata step to the query).

use crate::engine::CardinalityEstimation;
use crate::filter::Predicate;
use crate::query::{AggFn, AggregateQuery, OrderKey};
use crate::table::Table;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use vagg_core::Algorithm;

/// Why a query could not be planned.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// The query names a column the table does not have.
    UnknownColumn(String),
    /// The table has no rows (nothing to stage on the machine).
    EmptyTable,
    /// The query requests no aggregate functions.
    NoAggregates,
    /// A composite GROUP BY whose fused key domain exceeds the 32-bit
    /// key space of the vector machine.
    CompositeKeyOverflow {
        /// The product of the grouping columns' key domains.
        domain: u64,
    },
    /// A `HAVING` or `ORDER BY` predicate over `AVG`, which is computed
    /// on readback and never materialised as a machine column.
    UnsupportedAvgPredicate {
        /// The offending clause (`"HAVING"` or `"ORDER BY"`).
        clause: &'static str,
    },
    /// A bare column reference in a join query names a column both
    /// joined tables have; qualify it (`table.column`).
    AmbiguousColumn(String),
    /// A prepared statement was executed with the wrong number of
    /// parameters.
    BindArity {
        /// Parameter slots the statement declares (`?` placeholders).
        expected: usize,
        /// Parameters actually supplied.
        got: usize,
    },
    /// A bound parameter does not fit its slot's type: comparison
    /// constants are 32-bit column values.
    BindType {
        /// Zero-based position of the offending parameter.
        index: usize,
        /// The value that was supplied.
        value: u64,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownColumn(name) => {
                write!(f, "unknown column {name:?}")
            }
            PlanError::EmptyTable => write!(f, "the table has no rows"),
            PlanError::NoAggregates => write!(f, "no aggregates requested"),
            PlanError::CompositeKeyOverflow { domain } => write!(
                f,
                "composite key domain {domain} exceeds the 32-bit key space; \
                 drop a grouping column or pre-filter"
            ),
            PlanError::UnsupportedAvgPredicate { clause } => write!(
                f,
                "{clause} on AVG is unsupported: AVG is computed on \
                 readback, not materialised as a machine column"
            ),
            PlanError::AmbiguousColumn(name) => write!(
                f,
                "column {name:?} exists on both joined tables; qualify it \
                 as table.column"
            ),
            PlanError::BindArity { expected, got } => write!(
                f,
                "wrong parameter count: the statement has {expected} \
                 placeholder(s), {got} parameter(s) were bound"
            ),
            PlanError::BindType { index, value } => write!(
                f,
                "parameter {index} = {value} does not fit a 32-bit \
                 comparison constant"
            ),
        }
    }
}

impl Error for PlanError {}

/// How the cardinality estimate in a plan was (and will be) obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// O(1) last-element lookup, available on presorted input.
    Presorted,
    /// The exact vectorised max-key scan of the whole column.
    Exact,
    /// The sampled scan: one MVL-wide chunk in every `stride`.
    Sampled {
        /// Chunk stride of the sample.
        stride: usize,
    },
}

impl ScanMode {
    pub(crate) fn of(presorted: bool, estimation: CardinalityEstimation) -> Self {
        if presorted {
            ScanMode::Presorted
        } else {
            match estimation {
                CardinalityEstimation::ExactScan => ScanMode::Exact,
                CardinalityEstimation::Sampled { stride } => ScanMode::Sampled { stride },
            }
        }
    }
}

impl fmt::Display for ScanMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanMode::Presorted => write!(f, "presorted"),
            ScanMode::Exact => write!(f, "exact"),
            ScanMode::Sampled { stride } => write!(f, "sampled/{stride}"),
        }
    }
}

/// One step of a physical plan (or of an execution report).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanStep {
    /// Fuse the grouping columns into one key per row on the machine.
    FuseKeys {
        /// Grouping column names, primary first.
        columns: Vec<String>,
    },
    /// Vectorised WHERE selection compacting every live column.
    VectorFilter {
        /// The filtered column.
        column: String,
        /// The comparison.
        pred: Predicate,
    },
    /// The planning-metadata scan establishing the cardinality estimate.
    CardinalityScan {
        /// How the scan reads the column.
        mode: ScanMode,
        /// The cardinality the planner acts on.
        estimate: u64,
    },
    /// Run the selected aggregation algorithm.
    Aggregate(
        /// The §V-D adaptive choice.
        Algorithm,
    ),
    /// Run the extended VGAmin/VGAmax kernel (queries with MIN/MAX).
    MinMaxKernel,
    /// Recorded at execution time when the WHERE clause removed every
    /// row, so no aggregation algorithm ran at all.
    AggregateSkipped,
    /// Vectorised HAVING selection over the output table.
    VectorHaving {
        /// The aggregate the predicate inspects.
        agg: AggFn,
        /// The query's value column (for rendering `SUM(v)` etc.).
        value: String,
        /// The comparison.
        pred: Predicate,
    },
    /// Stable vectorised radix sort of the output rows.
    VectorOrderBy {
        /// The sort key.
        key: OrderKey,
        /// The primary grouping column name (for rendering).
        group: String,
        /// The value column name (for rendering).
        value: String,
        /// Descending order.
        desc: bool,
    },
    /// Keep only the first `rows` output rows.
    Limit(
        /// Row budget.
        usize,
    ),
    /// Hash-join build phase: the chosen build side's key tuples are
    /// interned through a [`crate::KeyDictionary`] into dense-id
    /// buckets (cooperatively, when run on the morsel executor).
    JoinBuild {
        /// The build-side table.
        table: String,
        /// The build side's join key columns, in ON order.
        keys: Vec<String>,
        /// Build-side input rows.
        rows: usize,
        /// The planner's KMV distinct estimate of the build key.
        distinct: u64,
    },
    /// Hash-join probe phase: probe-side morsels stream through the
    /// built dictionary, emitting matched row pairs.
    JoinProbe {
        /// The probe-side table.
        table: String,
        /// The probe side's join key columns, in ON order.
        keys: Vec<String>,
        /// Probe-side input rows.
        rows: usize,
    },
}

impl fmt::Display for PlanStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanStep::FuseKeys { columns } => {
                write!(f, "FuseKeys({})", columns.join("×"))
            }
            PlanStep::VectorFilter { column, pred } => {
                write!(f, "VectorFilter({column} {})", pred.sql())
            }
            PlanStep::CardinalityScan { mode, estimate } => {
                write!(f, "CardinalityScan[{mode}](cardinality≈{estimate})")
            }
            PlanStep::Aggregate(algorithm) => {
                write!(f, "Aggregate[{}]", algorithm.short_name())
            }
            PlanStep::MinMaxKernel => write!(f, "MinMaxKernel[VGAmin/VGAmax]"),
            PlanStep::AggregateSkipped => {
                write!(f, "AggregateSkipped(WHERE removed every row)")
            }
            PlanStep::VectorHaving { agg, value, pred } => {
                write!(f, "VectorHaving({} {})", agg.sql(value), pred.sql())
            }
            PlanStep::VectorOrderBy {
                key,
                group,
                value,
                desc,
            } => {
                write!(
                    f,
                    "VectorOrderBy[radix]({}{})",
                    match key {
                        OrderKey::Group => group.clone(),
                        OrderKey::Agg(a) => a.sql(value),
                    },
                    if *desc { " DESC" } else { "" }
                )
            }
            PlanStep::Limit(rows) => write!(f, "Limit({rows})"),
            PlanStep::JoinBuild {
                table,
                keys,
                rows,
                distinct,
            } => {
                write!(
                    f,
                    "JoinBuild({table}[{}] rows={rows} distinct≈{distinct})",
                    keys.join("×")
                )
            }
            PlanStep::JoinProbe { table, keys, rows } => {
                write!(f, "JoinProbe({table}[{}] rows={rows})", keys.join("×"))
            }
        }
    }
}

impl PlanStep {
    /// The planner's estimate of this step's output rows, where the
    /// step itself carries one: the `LIMIT` budget, the join build
    /// side's KMV distinct estimate, the join probe side's input rows.
    /// `None` for steps whose estimate lives on the plan (aggregate
    /// cardinality) or that the planner does not estimate at all
    /// (WHERE/HAVING selectivity). `EXPLAIN ANALYZE` renders these
    /// against the observed actuals (see [`crate::StepRollup`]).
    pub fn estimated_rows(&self) -> Option<u64> {
        match self {
            PlanStep::Limit(rows) => Some(*rows as u64),
            PlanStep::JoinBuild { distinct, .. } => Some(*distinct),
            PlanStep::JoinProbe { rows, .. } => Some(*rows as u64),
            _ => None,
        }
    }
}

/// A planned query: the typed steps, the resolved algorithm decision,
/// and shared (`Arc`) snapshots of the columns the session will stage.
///
/// Produced by [`crate::Engine::plan`], executed by
/// [`crate::Session::run`], rendered by [`QueryPlan::explain`].
#[derive(Debug, Clone)]
pub struct QueryPlan {
    pub(crate) table: String,
    pub(crate) query: AggregateQuery,
    pub(crate) steps: Vec<PlanStep>,
    pub(crate) algorithm: Algorithm,
    pub(crate) scan_mode: ScanMode,
    pub(crate) cardinality: u64,
    pub(crate) presorted: bool,
    pub(crate) rows: usize,
    /// The table data version this plan was produced against — the
    /// snapshot cut for catalogue-planned queries, `None` for plans
    /// built directly by [`crate::Engine::plan`] (no catalogue, no
    /// versions). Rendered by [`QueryPlan::explain`] so a stale plan
    /// is debuggable from its output alone.
    pub(crate) data_version: Option<u64>,
    /// Time-travel provenance (`name@version`, `snapshot@version` or
    /// `data_version@N`) when the plan was made at an explicit
    /// snapshot, a named version or an `AS OF` clause — `None` for
    /// live-of-now plans. Rendered by [`QueryPlan::explain`]; never
    /// present on shared-plan-cache entries.
    pub(crate) as_of: Option<String>,
    /// Column snapshots (shared with the table, not copied): the primary
    /// grouping column, further grouping columns, the value column, and
    /// the WHERE column.
    pub(crate) group: Arc<[u32]>,
    pub(crate) rest: Vec<Arc<[u32]>>,
    pub(crate) value: Arc<[u32]>,
    pub(crate) filter_col: Option<Arc<[u32]>>,
    /// Composite GROUP BY per-column key domains (primary first),
    /// exactly as the overflow check computed them — empty for
    /// single-column plans. Coordinators force the elementwise maximum
    /// of these across shard plans into every morsel's key fusion, so
    /// partials land in one shared key space and merge directly (no
    /// dictionary remap).
    pub(crate) domains: Arc<[u64]>,
    /// The WHERE column's zone maps as `(lo, hi, min, max)` row ranges
    /// aligned with this plan's staged view — stamped by the catalogue
    /// from [`crate::TableStats`], `None` for engine-direct or frozen
    /// plans. Morsel generators prune ranges the predicate provably
    /// fails (see [`crate::Predicate::excludes_range`]).
    pub(crate) zones: Option<Arc<[(usize, usize, u32, u32)]>>,
    /// How many zone maps the planned table kept at plan time (0 = no
    /// zone maps, e.g. engine-direct plans); rendered by
    /// [`QueryPlan::explain`].
    pub(crate) zone_maps: usize,
}

impl QueryPlan {
    /// The planned steps in execution order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// The aggregation algorithm the §V-D policy selected.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The cardinality estimate the selection acted on.
    pub fn cardinality_estimate(&self) -> u64 {
        self.cardinality
    }

    /// Whether the grouping column is known sorted (DBMS metadata).
    pub fn presorted(&self) -> bool {
        self.presorted
    }

    /// The table data version this plan was produced against: the
    /// pinned [`crate::Snapshot`] cut for snapshot reads, the
    /// version-of-now for live reads, `None` for plans built directly
    /// by [`crate::Engine::plan`] outside any catalogue.
    pub fn data_version(&self) -> Option<u64> {
        self.data_version
    }

    /// The time-travel provenance of an `AS OF` / explicit-snapshot
    /// plan (`name@version`, `snapshot@version`, `data_version@N`), or
    /// `None` for a live plan.
    pub fn as_of(&self) -> Option<&str> {
        self.as_of.as_deref()
    }

    /// Input rows the plan will stage.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The planned query, rendered as SQL.
    pub fn sql(&self) -> String {
        self.query.sql(&self.table)
    }

    /// The query this plan serves.
    pub fn query(&self) -> &AggregateQuery {
        &self.query
    }

    /// The `FROM` table name.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// How many zone maps the planned table kept at plan time (0 for
    /// plans made outside a catalogue, or frozen time-travel views).
    pub fn zone_maps(&self) -> usize {
        self.zone_maps
    }

    /// The composite grouping columns' exact key domains (`max + 1`,
    /// primary first), computed host-side at plan time for the
    /// overflow check; empty for single-column grouping. The sharded
    /// coordinator maxes these across shard plans to force one global
    /// fused key space onto every morsel.
    pub(crate) fn key_domains(&self) -> &[u64] {
        &self.domains
    }

    /// The WHERE column's zone ranges, when the plan carries both a
    /// filter and stamped zone maps.
    pub(crate) fn filter_zones(&self) -> Option<&[(usize, usize, u32, u32)]> {
        match (&self.zones, &self.query.filter) {
            (Some(z), Some(_)) => Some(z),
            _ => None,
        }
    }

    /// Whether the morsel `[lo, hi)` of this plan's staged view
    /// provably fails the WHERE predicate — every zone overlapping the
    /// range excludes it — and can be skipped without running. `false`
    /// whenever the plan has no filter, no zones, or the zones do not
    /// fully cover the range (conservative: never prune on partial
    /// information).
    pub(crate) fn prunes_range(&self, lo: usize, hi: usize) -> bool {
        let Some((_, pred)) = &self.query.filter else {
            return false;
        };
        let Some(zones) = self.filter_zones() else {
            return false;
        };
        let mut covered = lo;
        for &(zlo, zhi, min, max) in zones {
            if zhi <= covered || zlo >= hi {
                continue;
            }
            if zlo > covered || !pred.excludes_range(min, max) {
                return false;
            }
            covered = zhi;
            if covered >= hi {
                return true;
            }
        }
        false
    }

    /// Rebinds this plan to a query of the same *shape* that differs
    /// only in its literal constants (WHERE/HAVING comparison values,
    /// LIMIT budget): the constants are patched into the cloned steps
    /// while every planning decision — cardinality estimate, scan mode,
    /// the §V-D algorithm choice — is reused unchanged.
    ///
    /// Sound because plan-time statistics are taken over the
    /// *unfiltered* table (classic optimizer shape, see
    /// [`crate::Engine::plan`]): no literal constant feeds the adaptive
    /// decision. The plan cache and prepared statements still re-verify
    /// the algorithm choice after rebinding and fall back to a full
    /// re-plan if a future policy ever disagrees.
    pub(crate) fn rebind(&self, query: &AggregateQuery) -> QueryPlan {
        let mut plan = self.clone();
        for step in &mut plan.steps {
            match step {
                PlanStep::VectorFilter { pred, .. } => {
                    if let Some((_, p)) = &query.filter {
                        *pred = *p;
                    }
                }
                PlanStep::VectorHaving { pred, .. } => {
                    if let Some(h) = &query.having {
                        *pred = h.pred;
                    }
                }
                PlanStep::Limit(rows) => {
                    if let Some(k) = query.order_by.as_ref().and_then(|ob| ob.limit) {
                        *rows = k;
                    }
                }
                _ => {}
            }
        }
        plan.query = query.clone();
        plan
    }

    /// Rebases this plan onto a newer snapshot of its table — the
    /// write path's cheap plan refresh. The column snapshots, row
    /// count, sortedness and cardinality estimate are replaced with the
    /// ingested view's (the estimate comes from the incrementally
    /// maintained statistics, so no column is re-scanned), while the
    /// query, the step structure and the §V-D algorithm choice are kept
    /// — the caller re-verifies the choice against the new statistics
    /// and falls back to a full re-plan when it flipped.
    ///
    /// Returns `None` for plans this shortcut cannot refresh: composite
    /// `GROUP BY` (the fused-key domain needs a real statistics pass)
    /// and vanished columns (impossible short of a re-registration).
    pub(crate) fn rebase_onto(
        &self,
        view: &Table,
        presorted: bool,
        scan_mode: ScanMode,
        cardinality: u64,
    ) -> Option<QueryPlan> {
        if !self.query.group_by_rest.is_empty() {
            return None;
        }
        let mut plan = self.clone();
        plan.group = view.column_shared(&self.query.group_by)?;
        plan.value = view.column_shared(&self.query.value)?;
        plan.filter_col = match &self.query.filter {
            Some((col, _)) => Some(view.column_shared(col)?),
            None => None,
        };
        plan.rows = view.rows();
        plan.presorted = presorted;
        plan.scan_mode = scan_mode;
        plan.cardinality = cardinality;
        // The old view's zone ranges say nothing about the new view;
        // the catalogue restamps them from the live statistics.
        plan.zones = None;
        plan.zone_maps = 0;
        for step in &mut plan.steps {
            if let PlanStep::CardinalityScan { mode, estimate } = step {
                *mode = scan_mode;
                *estimate = cardinality;
            }
        }
        Some(plan)
    }

    /// Renders the plan in `EXPLAIN` form: the SQL, one header line of
    /// planner facts, then the numbered steps.
    ///
    /// ```
    /// use vagg_db::{AggregateQuery, Engine, Table};
    ///
    /// let t = Table::new("r")
    ///     .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
    ///     .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0]);
    /// let plan = Engine::new().plan(&t, &AggregateQuery::paper("g", "v"))?;
    /// assert_eq!(
    ///     plan.explain(),
    ///     "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g\n\
    ///      \x20 rows=8 presorted=false algorithm=monotable cardinality≈6\n\
    ///      \x20 1. CardinalityScan[exact](cardinality≈6)\n\
    ///      \x20 2. Aggregate[mono]"
    /// );
    /// # Ok::<(), vagg_db::PlanError>(())
    /// ```
    pub fn explain(&self) -> String {
        use fmt::Write as _;
        let mut out = self.sql();
        let _ = write!(
            out,
            "\n  rows={} presorted={} algorithm={} cardinality≈{}",
            self.rows,
            self.presorted,
            self.algorithm.name().replace(' ', "-"),
            self.cardinality
        );
        if let Some(v) = self.data_version {
            // Catalogue-planned queries record the data version (the
            // snapshot cut) the plan was produced against, so a
            // stale-plan investigation needs no counters.
            let _ = write!(out, " data_version={v}");
        }
        if self.zone_maps > 0 {
            let _ = write!(out, " zone_maps={}", self.zone_maps);
        }
        if let Some(label) = &self.as_of {
            let _ = write!(out, " as_of={label}");
        }
        for (i, step) in self.steps.iter().enumerate() {
            let _ = write!(out, "\n  {}. {step}", i + 1);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_error_display_is_stable() {
        assert_eq!(
            PlanError::UnknownColumn("x".into()).to_string(),
            "unknown column \"x\""
        );
        assert_eq!(PlanError::EmptyTable.to_string(), "the table has no rows");
        assert_eq!(
            PlanError::NoAggregates.to_string(),
            "no aggregates requested"
        );
        assert!(PlanError::CompositeKeyOverflow { domain: 1 << 40 }
            .to_string()
            .contains("32-bit key space"));
        let e = PlanError::UnsupportedAvgPredicate { clause: "HAVING" };
        assert!(e.to_string().contains("HAVING on AVG"));
        assert_eq!(
            PlanError::BindArity {
                expected: 2,
                got: 1
            }
            .to_string(),
            "wrong parameter count: the statement has 2 placeholder(s), \
             1 parameter(s) were bound"
        );
        assert!(PlanError::BindType {
            index: 0,
            value: u64::MAX
        }
        .to_string()
        .contains("32-bit"));
    }

    #[test]
    fn plan_errors_implement_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<PlanError>();
    }

    #[test]
    fn step_rendering() {
        assert_eq!(
            PlanStep::FuseKeys {
                columns: vec!["a".into(), "b".into()]
            }
            .to_string(),
            "FuseKeys(a×b)"
        );
        assert_eq!(
            PlanStep::VectorFilter {
                column: "w".into(),
                pred: Predicate::GreaterThan(2)
            }
            .to_string(),
            "VectorFilter(w > 2)"
        );
        assert_eq!(
            PlanStep::CardinalityScan {
                mode: ScanMode::Sampled { stride: 8 },
                estimate: 625
            }
            .to_string(),
            "CardinalityScan[sampled/8](cardinality≈625)"
        );
        assert_eq!(
            PlanStep::Aggregate(Algorithm::Monotable).to_string(),
            "Aggregate[mono]"
        );
        assert_eq!(
            PlanStep::VectorHaving {
                agg: AggFn::Count,
                value: "v".into(),
                pred: Predicate::GreaterThan(1)
            }
            .to_string(),
            "VectorHaving(COUNT(*) > 1)"
        );
        assert_eq!(
            PlanStep::VectorOrderBy {
                key: OrderKey::Agg(AggFn::Sum),
                group: "g".into(),
                value: "v".into(),
                desc: true
            }
            .to_string(),
            "VectorOrderBy[radix](SUM(v) DESC)"
        );
        assert_eq!(PlanStep::Limit(5).to_string(), "Limit(5)");
    }
}
