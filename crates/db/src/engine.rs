//! The execution engine: plans and runs [`AggregateQuery`]s on the
//! simulated vector machine, choosing the aggregation algorithm with the
//! paper's §V-D adaptive policy.

use crate::filter::vector_filter;
use crate::query::{AggFn, AggregateQuery, OrderKey};
use crate::table::Table;
use vagg_core::input::vector_max_scan;
use vagg_core::{
    minmax_aggregate, select_algorithm, AdaptiveMode, Algorithm, PlannerInputs,
    StagedInput,
};
use vagg_sim::{Machine, SimConfig};

/// One output row of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The group key (the fused composite key for multi-column GROUP BY).
    pub group: u32,
    /// The key decomposed per grouping column, primary first (one entry
    /// for single-column queries).
    pub group_parts: Vec<u32>,
    /// One value per requested aggregate, in query order. `AVG` is an
    /// `f64`; everything else is integral.
    pub values: Vec<f64>,
}

/// Query output plus the execution report.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Result rows ordered by group key.
    pub rows: Vec<Row>,
    /// What the planner decided and what it cost.
    pub report: ExecutionReport,
}

/// Planner decision + measured cost.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The algorithm the adaptive policy selected.
    pub algorithm: Algorithm,
    /// Rows surviving the WHERE clause (= input rows when no filter).
    pub rows_aggregated: usize,
    /// Total simulated cycles (filter + aggregation).
    pub cycles: u64,
    /// Simulated cycles per *input* tuple.
    pub cpt: f64,
    /// Human-readable plan description.
    pub plan: String,
}

/// How the planner estimates cardinality (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CardinalityEstimation {
    /// The exact vectorised max-key scan of the whole column (the
    /// paper's default).
    #[default]
    ExactScan,
    /// The sampled scan the paper sketches ("could be replaced with
    /// sampling and some additional checks"): read one chunk in every
    /// `stride`, inflate the estimate by the planner margin.
    Sampled {
        /// Read one MVL-wide chunk out of every `stride` chunks.
        stride: usize,
    },
}

/// The engine: owns the machine configuration and planner options.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    cfg: SimConfig,
    estimation: CardinalityEstimation,
}

impl Engine {
    /// An engine with the paper's machine configuration.
    pub fn new() -> Self {
        Self { cfg: SimConfig::paper(), estimation: CardinalityEstimation::ExactScan }
    }

    /// An engine with a custom configuration.
    pub fn with_config(cfg: SimConfig) -> Self {
        Self { cfg, estimation: CardinalityEstimation::ExactScan }
    }

    /// Selects how the planner estimates cardinality.
    pub fn with_estimation(mut self, estimation: CardinalityEstimation) -> Self {
        self.estimation = estimation;
        self
    }

    /// Plans and executes a query against a table.
    ///
    /// # Errors
    ///
    /// Returns a description of the first planning problem found
    /// (unknown columns, empty aggregate list, empty table).
    pub fn execute(
        &self,
        table: &Table,
        query: &AggregateQuery,
    ) -> Result<QueryOutput, String> {
        let g = table
            .column(&query.group_by)
            .ok_or_else(|| format!("unknown column {:?}", query.group_by))?;
        let v = table
            .column(&query.value)
            .ok_or_else(|| format!("unknown column {:?}", query.value))?;
        if query.aggregates.is_empty() {
            return Err("no aggregates requested".into());
        }
        if table.rows() == 0 {
            return Err("empty table".into());
        }
        let presorted = table
            .meta(&query.group_by)
            .map(|m| m.sorted)
            .unwrap_or(false)
            // Fused composite keys have no sortedness guarantee even when
            // the primary column does.
            && query.group_by_rest.is_empty();

        let mut m = Machine::new(self.cfg.clone());
        let n = table.rows();
        let mut plan = Vec::new();

        // Composite GROUP BY: fuse the grouping columns into one key per
        // row on the machine; the fused column then flows through the
        // unchanged single-key pipeline. `rest_domains` drives readback
        // decomposition.
        let (g_fused, rest_domains): (Option<Vec<u32>>, Vec<u32>) =
            if query.group_by_rest.is_empty() {
                (None, Vec::new())
            } else {
                let mut cols: Vec<&[u32]> = vec![g];
                for name in &query.group_by_rest {
                    cols.push(table.column(name).ok_or_else(|| {
                        format!("unknown column {name:?}")
                    })?);
                }
                plan.push(format!(
                    "FuseKeys({})",
                    query.group_columns().join("×")
                ));
                let (fused, domains) = fuse_group_columns(&mut m, &cols)?;
                (Some(fused), domains)
            };
        let g: &[u32] = g_fused.as_deref().unwrap_or(g);

        // WHERE: vectorised selection into fresh compacted columns.
        let (input, rows_aggregated) = if let Some((col, pred)) = &query.filter {
            let w = table
                .column(col)
                .ok_or_else(|| format!("unknown column {col:?}"))?;
            let ws = m.space_mut().alloc_slice_u32(w);
            let gs = m.space_mut().alloc_slice_u32(g);
            let vs = m.space_mut().alloc_slice_u32(v);
            let gd = m.space_mut().alloc(4 * n as u64, 64);
            let vd = m.space_mut().alloc(4 * n as u64, 64);
            plan.push(format!("VectorFilter({col} {})", pred.sql()));
            let kept =
                vector_filter(&mut m, ws, n, *pred, &[(gs, gd), (vs, vd)]);
            if kept == 0 {
                return Ok(QueryOutput {
                    rows: Vec::new(),
                    report: ExecutionReport {
                        algorithm: Algorithm::Monotable,
                        rows_aggregated: 0,
                        cycles: m.cycles(),
                        cpt: m.cycles() as f64 / n as f64,
                        plan: plan.join(" -> "),
                    },
                });
            }
            // Filtering destroys sortedness guarantees? No: compaction
            // preserves relative order, so a sorted column stays sorted.
            let staged = StagedInput {
                g: gd,
                v: vd,
                aux_g: m.space_mut().alloc(4 * kept as u64, 64),
                aux_v: m.space_mut().alloc(4 * kept as u64, 64),
                n: kept,
                presorted,
            };
            (staged, kept)
        } else {
            (StagedInput::stage_raw(&mut m, g, v, presorted), n)
        };

        // Plan: cardinality estimate (exact or sampled, §III-A) feeds the
        // §V-D policy. The scan here is the engine's planning cost;
        // algorithms still run their own metadata step, exactly as the
        // paper charges it.
        let cardinality = if presorted {
            let (maxg, _tok) = vagg_core::input::presorted_max(&mut m, &input);
            maxg as u64 + 1
        } else {
            match self.estimation {
                CardinalityEstimation::ExactScan => {
                    let (maxg, _tok) = vector_max_scan(&mut m, &input);
                    maxg as u64 + 1
                }
                CardinalityEstimation::Sampled { stride } => {
                    let (est, _tok) =
                        vagg_core::sampling::sampled_max_scan(&mut m, &input, stride);
                    est.planning_cardinality()
                }
            }
        };
        let algorithm = select_algorithm(
            &PlannerInputs {
                presorted,
                cardinality,
                rows: input.n,
                mvl: m.mvl(),
            },
            None,
            AdaptiveMode::Realistic,
        );
        plan.push(format!(
            "AdaptiveAggregate[{}](cardinality≈{cardinality})",
            algorithm.short_name()
        ));

        // Execute.
        let (mut base, mut mm) = if query.needs_minmax() {
            plan.push("VGAx(min/max) kernel".into());
            let r = minmax_aggregate(&mut m, &input);
            (r.base, Some((r.mins, r.maxs)))
        } else {
            let (result, _) = algorithm.execute(&mut m, &input);
            (result, None)
        };

        // HAVING: vectorised selection over the output table, compacting
        // every output column behind the aggregate's mask.
        if let Some(h) = &query.having {
            plan.push(format!(
                "VectorHaving({} {})",
                h.agg.sql(&query.value),
                h.pred.sql()
            ));
            (base, mm) = apply_having(&mut m, h, base, mm)?;
        }

        // ORDER BY: stable vectorised radix sort of the output rows by
        // the requested key (complement key for DESC), then LIMIT.
        if let Some(ob) = &query.order_by {
            plan.push(format!(
                "VectorOrderBy[radix]({}{}{})",
                match ob.key {
                    OrderKey::Group => query.group_by.clone(),
                    OrderKey::Agg(a) => a.sql(&query.value),
                },
                if ob.desc { " DESC" } else { "" },
                ob.limit.map(|k| format!(" LIMIT {k}")).unwrap_or_default()
            ));
            (base, mm) = apply_order_by(&mut m, ob, base, mm)?;
        }

        let rows = assemble_rows(
            query,
            &base,
            mm.as_ref().map(|(a, b)| (&a[..], &b[..])),
            &rest_domains,
        );

        let cycles = m.cycles();
        Ok(QueryOutput {
            rows,
            report: ExecutionReport {
                algorithm,
                rows_aggregated,
                cycles,
                cpt: cycles as f64 / n as f64,
                plan: plan.join(" -> "),
            },
        })
    }
}

type Columns = (vagg_core::AggResult, Option<(Vec<u32>, Vec<u32>)>);

// The integral column a HAVING / ORDER BY key refers to.
fn agg_column<'a>(
    agg: AggFn,
    base: &'a vagg_core::AggResult,
    mm: &'a Option<(Vec<u32>, Vec<u32>)>,
) -> Result<&'a [u32], String> {
    match agg {
        AggFn::Count => Ok(&base.counts),
        AggFn::Sum => Ok(&base.sums),
        AggFn::Min => Ok(&mm.as_ref().expect("minmax kernel ran").0),
        AggFn::Max => Ok(&mm.as_ref().expect("minmax kernel ran").1),
        AggFn::Avg => Err(
            "HAVING/ORDER BY on AVG is unsupported: AVG is computed on \
             readback, not materialised as a machine column"
                .into(),
        ),
    }
}

// HAVING: stage the output columns back onto the machine and run the
// same vectorised select/compress kernel the WHERE clause uses, with the
// aggregate column as the predicate source.
fn apply_having(
    m: &mut Machine,
    h: &crate::query::Having,
    base: vagg_core::AggResult,
    mm: Option<(Vec<u32>, Vec<u32>)>,
) -> Result<Columns, String> {
    let n = base.len();
    if n == 0 {
        return Ok((base, mm));
    }
    let pred_col = agg_column(h.agg, &base, &mm)?.to_vec();

    let stage = |m: &mut Machine, col: &[u32]| {
        let src = m.space_mut().alloc_slice_u32(col);
        let dst = m.space_mut().alloc(4 * col.len() as u64, 64);
        (src, dst)
    };
    let ps = stage(m, &pred_col);
    let gs = stage(m, &base.groups);
    let cs = stage(m, &base.counts);
    let ss = stage(m, &base.sums);
    let mms = mm.as_ref().map(|(mins, maxs)| (stage(m, mins), stage(m, maxs)));

    let mut cols = vec![gs, cs, ss];
    if let Some((mins, maxs)) = mms {
        cols.push(mins);
        cols.push(maxs);
    }
    let kept = vector_filter(m, ps.0, n, h.pred, &cols);

    let read = |m: &Machine, (_, dst): (u64, u64)| m.space().read_slice_u32(dst, kept);
    let base = vagg_core::AggResult {
        groups: read(m, cols[0]),
        counts: read(m, cols[1]),
        sums: read(m, cols[2]),
    };
    let mm = (cols.len() == 5).then(|| (read(m, cols[3]), read(m, cols[4])));
    Ok((base, mm))
}

// ORDER BY: a stable vectorised LSD radix sort over (key, row-index)
// pairs; the returned permutation is applied to every output column and
// LIMIT truncates. DESC sorts the complement key so the same ascending
// kernel serves both directions.
fn apply_order_by(
    m: &mut Machine,
    ob: &crate::query::OrderBy,
    base: vagg_core::AggResult,
    mm: Option<(Vec<u32>, Vec<u32>)>,
) -> Result<Columns, String> {
    let n = base.len();
    let keep = ob.limit.unwrap_or(n).min(n);
    let (mut base, mut mm) = (base, mm);
    if n > 1 {
        let mut keys: Vec<u32> = match ob.key {
            OrderKey::Group => base.groups.clone(),
            OrderKey::Agg(a) => agg_column(a, &base, &mm)?.to_vec(),
        };
        if ob.desc {
            for k in &mut keys {
                *k = u32::MAX - *k;
            }
        }
        let idx: Vec<u32> = (0..n as u32).collect();
        let arrays = vagg_sort::SortArrays::stage(m, &keys, &idx);
        let max_key = keys.iter().copied().max().unwrap_or(0);
        let passes = vagg_sort::radix_sort(m, &arrays, max_key);
        let (_, perm) = arrays.read_result(m, passes);

        let permute =
            |col: &[u32]| perm.iter().map(|&i| col[i as usize]).collect::<Vec<u32>>();
        base = vagg_core::AggResult {
            groups: permute(&base.groups),
            counts: permute(&base.counts),
            sums: permute(&base.sums),
        };
        mm = mm.map(|(mins, maxs)| (permute(&mins), permute(&maxs)));
    }
    base.groups.truncate(keep);
    base.counts.truncate(keep);
    base.sums.truncate(keep);
    if let Some((mins, maxs)) = &mut mm {
        mins.truncate(keep);
        maxs.truncate(keep);
    }
    Ok((base, mm))
}

// Fuses the grouping columns into one key per row on the machine:
// key = ((g₀·d₁ + g₁)·d₂ + g₂)… where dᵢ is column i's key domain
// (maxᵢ + 1, measured by the vectorised max scan — a planning step
// charged to the query like the §III-A metadata scan). Returns the
// fused host column and the rest columns' domains.
fn fuse_group_columns(
    m: &mut Machine,
    cols: &[&[u32]],
) -> Result<(Vec<u32>, Vec<u32>), String> {
    use vagg_isa::{BinOp, Vreg};
    const VK: Vreg = Vreg(12); // running fused keys
    const VN: Vreg = Vreg(13); // next column's keys

    let n = cols[0].len();
    if cols.iter().any(|c| c.len() != n) {
        return Err("grouping columns differ in length".into());
    }

    // Stage the columns and measure each domain with the machine's
    // vectorised max scan.
    let mut staged = Vec::with_capacity(cols.len());
    let mut domains: Vec<u64> = Vec::with_capacity(cols.len());
    for col in cols {
        let addr = m.space_mut().alloc_slice_u32(col);
        let input = StagedInput {
            g: addr,
            v: addr,
            aux_g: addr,
            aux_v: addr,
            n,
            presorted: false,
        };
        let (maxk, _tok) = vector_max_scan(m, &input);
        staged.push(addr);
        domains.push(maxk as u64 + 1);
    }
    let total: u64 = domains.iter().product();
    if total > u32::MAX as u64 + 1 {
        return Err(format!(
            "composite key domain {total} exceeds the 32-bit key space; \
             drop a grouping column or pre-filter"
        ));
    }

    // Fuse chunk by chunk: k = ((c₀·d₁) + c₁)·d₂ + c₂ …
    let fused = m.space_mut().alloc(4 * n as u64, 64);
    let mvl = m.mvl();
    for start in (0..n).step_by(mvl) {
        let vl = (n - start).min(mvl);
        m.set_vl(vl);
        let t = m.s_op(0);
        m.vload_unit(VK, staged[0] + 4 * start as u64, 4, t);
        for (i, &addr) in staged.iter().enumerate().skip(1) {
            m.vbinop_vs(BinOp::Mul, VK, VK, domains[i], None);
            m.vload_unit(VN, addr + 4 * start as u64, 4, t);
            m.vbinop_vv(BinOp::Add, VK, VK, VN, None);
        }
        m.vstore_unit(VK, fused + 4 * start as u64, 4, t);
    }
    let fused_host = m.space().read_slice_u32(fused, n);
    let rest = domains[1..].iter().map(|&d| d as u32).collect();
    Ok((fused_host, rest))
}

// Splits a fused composite key back into its per-column parts
// (primary part first). `rest_domains` are d₁… in fusion order.
fn decompose_key(key: u32, rest_domains: &[u32]) -> Vec<u32> {
    let mut parts = vec![0u32; rest_domains.len() + 1];
    let mut k = key;
    for (i, &d) in rest_domains.iter().enumerate().rev() {
        parts[i + 1] = k % d;
        k /= d;
    }
    parts[0] = k;
    parts
}

fn assemble_rows(
    query: &AggregateQuery,
    base: &vagg_core::AggResult,
    minmax: Option<(&[u32], &[u32])>,
    rest_domains: &[u32],
) -> Vec<Row> {
    (0..base.len())
        .map(|i| {
            let values = query
                .aggregates
                .iter()
                .map(|agg| match agg {
                    AggFn::Count => base.counts[i] as f64,
                    AggFn::Sum => base.sums[i] as f64,
                    AggFn::Avg => base.sums[i] as f64 / base.counts[i] as f64,
                    AggFn::Min => {
                        minmax.expect("minmax kernel ran").0[i] as f64
                    }
                    AggFn::Max => {
                        minmax.expect("minmax kernel ran").1[i] as f64
                    }
                })
                .collect();
            Row {
                group: base.groups[i],
                group_parts: decompose_key(base.groups[i], rest_domains),
                values,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Predicate;

    #[test]
    fn composite_group_by_matches_host_oracle() {
        // GROUP BY (a, b): fuse on the machine, decompose on readback.
        let a = vec![1u32, 2, 1, 2, 1, 1];
        let b = vec![0u32, 0, 1, 1, 0, 1];
        let v = vec![10u32, 20, 30, 40, 50, 60];
        let t = Table::new("r")
            .with_column("a", a.clone())
            .with_column("b", b.clone())
            .with_column("v", v.clone());
        let q = AggregateQuery::paper("a", "v").with_group_by_also("b");
        let out = Engine::new().execute(&t, &q).unwrap();

        let mut expect: std::collections::BTreeMap<(u32, u32), (u32, u32)> =
            std::collections::BTreeMap::new();
        for i in 0..a.len() {
            let e = expect.entry((a[i], b[i])).or_insert((0, 0));
            e.0 += 1;
            e.1 += v[i];
        }
        assert_eq!(out.rows.len(), expect.len());
        for r in &out.rows {
            assert_eq!(r.group_parts.len(), 2);
            let key = (r.group_parts[0], r.group_parts[1]);
            let (count, sum) = expect[&key];
            assert_eq!(r.values[0] as u32, count, "count of {key:?}");
            assert_eq!(r.values[1] as u32, sum, "sum of {key:?}");
        }
        assert!(out.report.plan.contains("FuseKeys(a×b)"));
    }

    #[test]
    fn three_column_group_by() {
        let t = Table::new("r")
            .with_column("a", vec![0, 1, 0, 1])
            .with_column("b", vec![2, 2, 3, 3])
            .with_column("c", vec![5, 5, 5, 6])
            .with_column("v", vec![1, 2, 3, 4]);
        let q = AggregateQuery::paper("a", "v")
            .with_group_by_also("b")
            .with_group_by_also("c");
        let out = Engine::new().execute(&t, &q).unwrap();
        // All four rows are distinct (a, b, c) triples.
        assert_eq!(out.rows.len(), 4);
        let parts: Vec<Vec<u32>> =
            out.rows.iter().map(|r| r.group_parts.clone()).collect();
        assert!(parts.contains(&vec![0, 2, 5]));
        assert!(parts.contains(&vec![1, 3, 6]));
        for r in &out.rows {
            assert_eq!(r.values[0], 1.0);
        }
    }

    #[test]
    fn composite_group_by_with_filter() {
        let t = Table::new("r")
            .with_column("a", vec![1, 1, 2, 2, 1])
            .with_column("b", vec![0, 1, 0, 1, 0])
            .with_column("v", vec![5, 6, 7, 8, 9]);
        let q = AggregateQuery::paper("a", "v")
            .with_group_by_also("b")
            .with_filter("v", Predicate::NotEqual(7));
        let out = Engine::new().execute(&t, &q).unwrap();
        // (2, 0) is filtered out entirely.
        assert!(!out
            .rows
            .iter()
            .any(|r| r.group_parts == vec![2, 0]));
        let r10 = out
            .rows
            .iter()
            .find(|r| r.group_parts == vec![1, 0])
            .unwrap();
        assert_eq!(r10.values[0], 2.0); // rows 0 and 4
        assert_eq!(r10.values[1], 14.0);
    }

    #[test]
    fn composite_key_domain_overflow_is_an_error() {
        let t = Table::new("r")
            .with_column("a", vec![0, 100_000])
            .with_column("b", vec![0, 100_000])
            .with_column("v", vec![1, 2]);
        let q = AggregateQuery::paper("a", "v").with_group_by_also("b");
        let err = Engine::new().execute(&t, &q).unwrap_err();
        assert!(err.contains("32-bit key space"), "{err}");
    }

    #[test]
    fn single_column_rows_have_one_part() {
        let t = people();
        let out = Engine::new()
            .execute(&t, &AggregateQuery::paper("g", "v"))
            .unwrap();
        for r in &out.rows {
            assert_eq!(r.group_parts, vec![r.group]);
        }
    }

    #[test]
    fn decompose_key_roundtrips() {
        let rest = [7u32, 13];
        for g0 in 0..4u32 {
            for g1 in 0..7 {
                for g2 in 0..13 {
                    let key = (g0 * 7 + g1) * 13 + g2;
                    assert_eq!(
                        decompose_key(key, &rest),
                        vec![g0, g1, g2]
                    );
                }
            }
        }
        assert_eq!(decompose_key(42, &[]), vec![42]);
    }

    fn people() -> Table {
        Table::new("r")
            .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
            .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0])
    }

    #[test]
    fn paper_query_end_to_end() {
        let out = Engine::new()
            .execute(&people(), &AggregateQuery::paper("g", "v"))
            .unwrap();
        assert_eq!(out.rows.len(), 6);
        // Group 3: COUNT 2, SUM 7.
        let r3 = out.rows.iter().find(|r| r.group == 3).unwrap();
        assert_eq!(r3.values, vec![2.0, 7.0]);
        assert!(out.report.cycles > 0);
        assert!(out.report.plan.contains("AdaptiveAggregate"));
    }

    #[test]
    fn filter_then_aggregate() {
        let q = AggregateQuery::paper("g", "v")
            .with_filter("g", Predicate::NotEqual(0));
        let out = Engine::new().execute(&people(), &q).unwrap();
        assert_eq!(out.report.rows_aggregated, 6);
        assert!(out.rows.iter().all(|r| r.group != 0));
        assert!(out.report.plan.contains("VectorFilter"));
    }

    #[test]
    fn min_max_avg() {
        let q = AggregateQuery::paper("g", "v")
            .with_aggregate(AggFn::Min)
            .with_aggregate(AggFn::Max)
            .with_aggregate(AggFn::Avg);
        let out = Engine::new().execute(&people(), &q).unwrap();
        let r0 = out.rows.iter().find(|r| r.group == 0).unwrap();
        // count, sum, min, max, avg of values {4, 1}.
        assert_eq!(r0.values, vec![2.0, 5.0, 1.0, 4.0, 2.5]);
    }

    #[test]
    fn having_filters_output_groups() {
        // people(): group 0 {4,1}, 3 {5,2} have COUNT 2; others COUNT 1.
        let q = AggregateQuery::paper("g", "v")
            .with_having(AggFn::Count, Predicate::GreaterThan(1));
        let out = Engine::new().execute(&people(), &q).unwrap();
        let groups: Vec<u32> = out.rows.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![0, 3]);
        assert!(out.report.plan.contains("VectorHaving(COUNT(*) > 1)"));
    }

    #[test]
    fn having_on_sum_with_minmax_columns_in_flight() {
        // HAVING must compact the min/max columns too.
        let q = AggregateQuery::paper("g", "v")
            .with_aggregate(AggFn::Min)
            .with_aggregate(AggFn::Max)
            .with_having(AggFn::Sum, Predicate::GreaterThan(3));
        let out = Engine::new().execute(&people(), &q).unwrap();
        // Sums per group: 0→5, 1→0, 2→3, 3→7, 4→0, 5→3 → keep {0, 3}.
        let groups: Vec<u32> = out.rows.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![0, 3]);
        let r0 = &out.rows[0];
        assert_eq!(r0.values, vec![2.0, 5.0, 1.0, 4.0]);
    }

    #[test]
    fn having_removing_everything_yields_empty_output() {
        let q = AggregateQuery::paper("g", "v")
            .with_having(AggFn::Count, Predicate::GreaterThan(100));
        let out = Engine::new().execute(&people(), &q).unwrap();
        assert!(out.rows.is_empty());
    }

    #[test]
    fn having_on_avg_is_a_plan_error() {
        let q = AggregateQuery::paper("g", "v")
            .with_having(AggFn::Avg, Predicate::GreaterThan(1));
        let e = Engine::new().execute(&people(), &q).unwrap_err();
        assert!(e.contains("AVG"), "{e}");
    }

    #[test]
    fn order_by_aggregate_desc_with_limit() {
        // Top-2 groups by SUM(v): 3 (7), 0 (5).
        let q = AggregateQuery::paper("g", "v")
            .with_order_by(crate::query::OrderKey::Agg(AggFn::Sum), true)
            .with_limit(2);
        let out = Engine::new().execute(&people(), &q).unwrap();
        let groups: Vec<u32> = out.rows.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![3, 0]);
        assert!(out.report.plan.contains("VectorOrderBy"));
    }

    #[test]
    fn order_by_is_stable_on_ties() {
        // Groups 2 and 5 both sum to 3; radix sort is stable, so the
        // lower group key (already in group order) comes first.
        let q = AggregateQuery::paper("g", "v")
            .with_order_by(crate::query::OrderKey::Agg(AggFn::Sum), false);
        let out = Engine::new().execute(&people(), &q).unwrap();
        let sums: Vec<f64> = out.rows.iter().map(|r| r.values[1]).collect();
        let mut sorted = sums.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sums, sorted);
        let pos2 = out.rows.iter().position(|r| r.group == 2).unwrap();
        let pos5 = out.rows.iter().position(|r| r.group == 5).unwrap();
        assert!(pos2 < pos5, "stability: group 2 before 5 on equal sums");
    }

    #[test]
    fn bare_limit_truncates_group_order() {
        let q = AggregateQuery::paper("g", "v").with_limit(3);
        let out = Engine::new().execute(&people(), &q).unwrap();
        let groups: Vec<u32> = out.rows.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![0, 1, 2]);
    }

    #[test]
    fn full_sql_pipeline_via_database() {
        use crate::database::Database;
        let mut db = Database::new();
        db.register(people());
        let out = db
            .execute_sql(
                "SELECT g, COUNT(*), SUM(v) FROM r WHERE v > 0 GROUP BY g \
                 HAVING SUM(v) > 2 ORDER BY SUM(v) DESC LIMIT 2",
            )
            .unwrap();
        // After WHERE v > 0: group sums 0→5, 2→3, 3→7, 5→3; HAVING > 2
        // keeps all of those; top-2 by sum: 3 (7), 0 (5).
        let groups: Vec<u32> = out.rows.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![3, 0]);
    }

    #[test]
    fn sorted_metadata_drives_the_planner() {
        // Sorted, low cardinality, long runs (128 per group) → polytable
        // per Table IX.
        let n = 512usize;
        let t = Table::new("r")
            .with_column("g", (0..n).map(|i| (i / 128) as u32).collect())
            .with_column("v", (0..n).map(|i| (i % 10) as u32).collect());
        let out = Engine::new()
            .execute(&t, &AggregateQuery::paper("g", "v"))
            .unwrap();
        assert_eq!(out.report.algorithm, Algorithm::Polytable);
    }

    #[test]
    fn short_runs_steer_the_planner_away_from_polytable() {
        // Sorted but nearly-unique keys: run locality is absent, so the
        // run-length-aware policy falls back to monotable.
        let n = 512usize;
        let t = Table::new("r")
            .with_column("g", (0..n).map(|i| (i / 2) as u32).collect())
            .with_column("v", (0..n).map(|i| (i % 10) as u32).collect());
        let out = Engine::new()
            .execute(&t, &AggregateQuery::paper("g", "v"))
            .unwrap();
        assert_eq!(out.report.algorithm, Algorithm::Monotable);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let e = Engine::new()
            .execute(&people(), &AggregateQuery::paper("nope", "v"))
            .unwrap_err();
        assert!(e.contains("unknown column"));
    }

    #[test]
    fn filter_that_drops_everything() {
        let t = Table::new("r")
            .with_column("g", vec![1, 1])
            .with_column("v", vec![2, 2]);
        let q = AggregateQuery::paper("g", "v")
            .with_filter("v", Predicate::NotEqual(2));
        let out = Engine::new().execute(&t, &q).unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(out.report.rows_aggregated, 0);
    }

    #[test]
    fn sampled_estimation_plans_cheaper_and_answers_identically() {
        let n = 64 * 400;
        let g: Vec<u32> = (0..n).map(|i| ((i as u64 * 2654435761) % 500) as u32).collect();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();
        let t = Table::new("r").with_column("g", g).with_column("v", v);
        let q = AggregateQuery::paper("g", "v");

        let exact = Engine::new().execute(&t, &q).unwrap();
        let sampled = Engine::new()
            .with_estimation(CardinalityEstimation::Sampled { stride: 8 })
            .execute(&t, &q)
            .unwrap();
        assert_eq!(exact.rows, sampled.rows);
        assert_eq!(exact.report.algorithm, sampled.report.algorithm);
        assert!(
            sampled.report.cycles < exact.report.cycles,
            "sampled planning ({}) should cost less than exact ({})",
            sampled.report.cycles,
            exact.report.cycles
        );
    }

    #[test]
    fn matches_oracle_on_random_data() {
        let n = 2000;
        let g: Vec<u32> = (0..n).map(|i| (i * 7919) % 97).collect();
        let v: Vec<u32> = (0..n).map(|i| i % 10).collect();
        let t = Table::new("r")
            .with_column("g", g.clone())
            .with_column("v", v.clone());
        let out = Engine::new()
            .execute(&t, &AggregateQuery::paper("g", "v"))
            .unwrap();
        let expect = vagg_core::reference(&g, &v);
        assert_eq!(out.rows.len(), expect.len());
        for (row, i) in out.rows.iter().zip(0..) {
            assert_eq!(row.group, expect.groups[i]);
            assert_eq!(row.values[0] as u32, expect.counts[i]);
            assert_eq!(row.values[1] as u32, expect.sums[i]);
        }
    }
}
