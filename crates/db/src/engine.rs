//! The planner: turns queries into typed [`QueryPlan`]s with the paper's
//! §V-D adaptive policy, using DBMS metadata (sortedness, cardinality
//! estimate) — plus the thin compatibility wrapper that plans and
//! executes in one call.

use crate::plan::{PlanError, PlanStep, QueryPlan, ScanMode};
use crate::query::{AggFn, AggregateQuery, OrderKey};
use crate::session::Session;
use crate::table::Table;
use std::sync::Arc;
use vagg_core::sampling::SampledEstimate;
use vagg_core::{select_algorithm, AdaptiveMode, Algorithm, PlannerInputs};
use vagg_sim::SimConfig;

/// One output row of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The group key (the fused composite key for multi-column GROUP BY).
    pub group: u32,
    /// The key decomposed per grouping column, primary first (one entry
    /// for single-column queries).
    pub group_parts: Vec<u32>,
    /// One value per requested aggregate, in query order. `AVG` is an
    /// `f64`; everything else is integral.
    pub values: Vec<f64>,
}

/// Query output plus the execution report.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Result rows ordered by group key.
    pub rows: Vec<Row>,
    /// What the planner decided and what it cost.
    pub report: ExecutionReport,
}

/// Planner decision + measured cost, as typed steps.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The algorithm the adaptive policy selected, or `None` when the
    /// WHERE clause removed every row and aggregation was skipped.
    pub algorithm: Option<Algorithm>,
    /// Rows surviving the WHERE clause (= input rows when no filter).
    pub rows_aggregated: usize,
    /// Total simulated cycles (filter + aggregation).
    pub cycles: u64,
    /// Simulated cycles per *input* tuple.
    pub cpt: f64,
    /// The steps that actually executed, in order.
    pub steps: Vec<PlanStep>,
}

impl ExecutionReport {
    /// Renders the executed steps as a one-line pipeline description.
    pub fn describe(&self) -> String {
        self.steps
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// How the planner estimates cardinality (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CardinalityEstimation {
    /// The exact vectorised max-key scan of the whole column (the
    /// paper's default).
    #[default]
    ExactScan,
    /// The sampled scan the paper sketches ("could be replaced with
    /// sampling and some additional checks"): read one chunk in every
    /// `stride`, inflate the estimate by the planner margin.
    Sampled {
        /// Read one MVL-wide chunk out of every `stride` chunks.
        stride: usize,
    },
}

/// The planner: owns the machine configuration and planner options.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    cfg: SimConfig,
    estimation: CardinalityEstimation,
}

impl Engine {
    /// An engine with the paper's machine configuration.
    pub fn new() -> Self {
        Self {
            cfg: SimConfig::paper(),
            estimation: CardinalityEstimation::ExactScan,
        }
    }

    /// An engine with a custom configuration.
    pub fn with_config(cfg: SimConfig) -> Self {
        Self {
            cfg,
            estimation: CardinalityEstimation::ExactScan,
        }
    }

    /// Selects how the planner estimates cardinality.
    pub fn with_estimation(mut self, estimation: CardinalityEstimation) -> Self {
        self.estimation = estimation;
        self
    }

    /// The machine configuration this engine plans for.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// How this engine estimates cardinality (see
    /// [`Engine::with_estimation`]).
    pub fn estimation(&self) -> CardinalityEstimation {
        self.estimation
    }

    /// Plans a query against a table: resolves columns, validates the
    /// predicates, estimates cardinality from host-visible statistics,
    /// and fixes the §V-D algorithm choice into a typed [`QueryPlan`].
    ///
    /// Planning never runs the machine. The estimate here is taken over
    /// the *unfiltered* column, as a real optimizer plans from table
    /// statistics rather than post-selection data; [`Session::run`]
    /// still charges the §III-A metadata scan at execution time (over
    /// the post-WHERE input), so the billed cost matches the paper even
    /// though the decision was made from plan-time statistics.
    ///
    /// # Errors
    ///
    /// A typed [`PlanError`] for the first problem found: unknown
    /// columns, an empty table or aggregate list, composite-key domain
    /// overflow, or `HAVING`/`ORDER BY` over `AVG`.
    pub fn plan(&self, table: &Table, query: &AggregateQuery) -> Result<QueryPlan, PlanError> {
        let unknown = |name: &str| PlanError::UnknownColumn(name.to_string());
        let group = table
            .column_shared(&query.group_by)
            .ok_or_else(|| unknown(&query.group_by))?;
        let value = table
            .column_shared(&query.value)
            .ok_or_else(|| unknown(&query.value))?;
        if query.aggregates.is_empty() {
            return Err(PlanError::NoAggregates);
        }
        if table.rows() == 0 {
            return Err(PlanError::EmptyTable);
        }
        if let Some(h) = &query.having {
            if h.agg == AggFn::Avg {
                return Err(PlanError::UnsupportedAvgPredicate { clause: "HAVING" });
            }
        }
        if let Some(ob) = &query.order_by {
            if ob.key == OrderKey::Agg(AggFn::Avg) {
                return Err(PlanError::UnsupportedAvgPredicate { clause: "ORDER BY" });
            }
        }
        let mut rest: Vec<Arc<[u32]>> = Vec::with_capacity(query.group_by_rest.len());
        for name in &query.group_by_rest {
            rest.push(table.column_shared(name).ok_or_else(|| unknown(name))?);
        }
        let filter_col = match &query.filter {
            Some((col, _)) => Some(table.column_shared(col).ok_or_else(|| unknown(col))?),
            None => None,
        };

        let n = table.rows();
        // Fused composite keys have no sortedness guarantee even when
        // the primary column does.
        let presorted = table
            .meta(&query.group_by)
            .map(|m| m.sorted)
            .unwrap_or(false)
            && query.group_by_rest.is_empty();

        let mut steps = Vec::new();

        // Composite GROUP BY: check the fused key domain fits the 32-bit
        // key space, from host-side per-column maxima (the session
        // replays the charged machine scans at execution time).
        // `domains` is empty for single-column queries.
        let domains: Vec<u64> = if rest.is_empty() {
            Vec::new()
        } else {
            let domains: Vec<u64> = std::iter::once(&group)
                .chain(rest.iter())
                .map(|col| *col.iter().max().expect("non-empty table") as u64 + 1)
                .collect();
            let total: u128 = domains.iter().map(|&d| d as u128).product();
            if total > u32::MAX as u128 + 1 {
                return Err(PlanError::CompositeKeyOverflow {
                    domain: total.min(u64::MAX as u128) as u64,
                });
            }
            steps.push(PlanStep::FuseKeys {
                columns: query
                    .group_columns()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            });
            domains
        };
        // The effective group key of row `i` (the fused key for
        // composite queries).
        let key_at = |i: usize| -> u32 {
            let mut k = group[i] as u64;
            for (col, &d) in rest.iter().zip(domains.iter().skip(1)) {
                k = k * d + col[i] as u64;
            }
            k as u32
        };

        if let Some((col, pred)) = &query.filter {
            steps.push(PlanStep::VectorFilter {
                column: col.clone(),
                pred: *pred,
            });
        }

        // Cardinality estimate over the effective (fused) group column,
        // host-side and pre-filter (table statistics). The session's
        // scan at execution time charges the §III-A metadata cost but
        // runs over the post-WHERE input, so it may see different data;
        // the algorithm choice is fixed here, from this estimate.
        let scan_mode = ScanMode::of(presorted, self.estimation);
        let cardinality = match scan_mode {
            ScanMode::Presorted => group[n - 1] as u64 + 1,
            ScanMode::Exact => (0..n).map(key_at).max().expect("non-empty table") as u64 + 1,
            ScanMode::Sampled { stride } => {
                host_sampled_estimate(n, self.cfg.mvl, stride, key_at).planning_cardinality()
            }
        };
        steps.push(PlanStep::CardinalityScan {
            mode: scan_mode,
            estimate: cardinality,
        });

        let algorithm = select_algorithm(
            &PlannerInputs {
                presorted,
                cardinality,
                rows: n,
                mvl: self.cfg.mvl,
            },
            None,
            AdaptiveMode::Realistic,
        );
        if query.needs_minmax() {
            steps.push(PlanStep::MinMaxKernel);
        } else {
            steps.push(PlanStep::Aggregate(algorithm));
        }

        if let Some(h) = &query.having {
            steps.push(PlanStep::VectorHaving {
                agg: h.agg,
                value: query.value.clone(),
                pred: h.pred,
            });
        }
        if let Some(ob) = &query.order_by {
            steps.push(PlanStep::VectorOrderBy {
                key: ob.key,
                group: query.group_by.clone(),
                value: query.value.clone(),
                desc: ob.desc,
            });
            if let Some(k) = ob.limit {
                steps.push(PlanStep::Limit(k));
            }
        }

        Ok(QueryPlan {
            table: table.name().to_string(),
            query: query.clone(),
            steps,
            algorithm,
            scan_mode,
            cardinality,
            presorted,
            rows: n,
            // Engine-direct plans have no catalogue, hence no data
            // version; the catalogue stamps it on its plans.
            data_version: None,
            as_of: None,
            group,
            rest,
            value,
            filter_col,
            domains: domains.into(),
            // Zone maps come from catalogue statistics; the catalogue
            // stamps them after planning.
            zones: None,
            zone_maps: 0,
        })
    }

    /// Plans and executes a query on a fresh one-query [`Session`] — the
    /// pre-plan-split API, kept as a thin compatibility wrapper. Serving
    /// query traffic should plan once and reuse a session instead.
    ///
    /// # Errors
    ///
    /// The typed [`PlanError`] of the first planning problem found.
    pub fn execute(&self, table: &Table, query: &AggregateQuery) -> Result<QueryOutput, PlanError> {
        let plan = self.plan(table, query)?;
        Ok(Session::with_config(self.cfg.clone()).run(&plan))
    }
}

/// Host-side mirror of [`vagg_core::sampling::sampled_max_scan`]: reads
/// the same [`vagg_core::sampling::sampled_windows`] chunks (the shared
/// sampling rule), producing the same estimate without a machine.
fn host_sampled_estimate(
    n: usize,
    mvl: usize,
    stride: usize,
    key_at: impl Fn(usize) -> u32,
) -> SampledEstimate {
    let mut sampled_max = 0u32;
    let mut rows_sampled = 0usize;
    for (start, vl) in vagg_core::sampling::sampled_windows(n, mvl, stride) {
        for i in start..start + vl {
            sampled_max = sampled_max.max(key_at(i));
        }
        rows_sampled += vl;
    }
    SampledEstimate {
        sampled_max,
        rows_sampled,
        stride,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Predicate;

    #[test]
    fn composite_group_by_matches_host_oracle() {
        // GROUP BY (a, b): fuse on the machine, decompose on readback.
        let a = vec![1u32, 2, 1, 2, 1, 1];
        let b = vec![0u32, 0, 1, 1, 0, 1];
        let v = vec![10u32, 20, 30, 40, 50, 60];
        let t = Table::new("r")
            .with_column("a", a.clone())
            .with_column("b", b.clone())
            .with_column("v", v.clone());
        let q = AggregateQuery::paper("a", "v").with_group_by_also("b");
        let out = Engine::new().execute(&t, &q).unwrap();

        let mut expect: std::collections::BTreeMap<(u32, u32), (u32, u32)> =
            std::collections::BTreeMap::new();
        for i in 0..a.len() {
            let e = expect.entry((a[i], b[i])).or_insert((0, 0));
            e.0 += 1;
            e.1 += v[i];
        }
        assert_eq!(out.rows.len(), expect.len());
        for r in &out.rows {
            assert_eq!(r.group_parts.len(), 2);
            let key = (r.group_parts[0], r.group_parts[1]);
            let (count, sum) = expect[&key];
            assert_eq!(r.values[0] as u32, count, "count of {key:?}");
            assert_eq!(r.values[1] as u32, sum, "sum of {key:?}");
        }
        assert!(out.report.describe().contains("FuseKeys(a×b)"));
    }

    #[test]
    fn three_column_group_by() {
        let t = Table::new("r")
            .with_column("a", vec![0, 1, 0, 1])
            .with_column("b", vec![2, 2, 3, 3])
            .with_column("c", vec![5, 5, 5, 6])
            .with_column("v", vec![1, 2, 3, 4]);
        let q = AggregateQuery::paper("a", "v")
            .with_group_by_also("b")
            .with_group_by_also("c");
        let out = Engine::new().execute(&t, &q).unwrap();
        // All four rows are distinct (a, b, c) triples.
        assert_eq!(out.rows.len(), 4);
        let parts: Vec<Vec<u32>> = out.rows.iter().map(|r| r.group_parts.clone()).collect();
        assert!(parts.contains(&vec![0, 2, 5]));
        assert!(parts.contains(&vec![1, 3, 6]));
        for r in &out.rows {
            assert_eq!(r.values[0], 1.0);
        }
    }

    #[test]
    fn composite_group_by_with_filter() {
        let t = Table::new("r")
            .with_column("a", vec![1, 1, 2, 2, 1])
            .with_column("b", vec![0, 1, 0, 1, 0])
            .with_column("v", vec![5, 6, 7, 8, 9]);
        let q = AggregateQuery::paper("a", "v")
            .with_group_by_also("b")
            .with_filter("v", Predicate::NotEqual(7));
        let out = Engine::new().execute(&t, &q).unwrap();
        // (2, 0) is filtered out entirely.
        assert!(!out.rows.iter().any(|r| r.group_parts == vec![2, 0]));
        let r10 = out
            .rows
            .iter()
            .find(|r| r.group_parts == vec![1, 0])
            .unwrap();
        assert_eq!(r10.values[0], 2.0); // rows 0 and 4
        assert_eq!(r10.values[1], 14.0);
    }

    #[test]
    fn composite_key_domain_overflow_is_an_error() {
        let t = Table::new("r")
            .with_column("a", vec![0, 100_000])
            .with_column("b", vec![0, 100_000])
            .with_column("v", vec![1, 2]);
        let q = AggregateQuery::paper("a", "v").with_group_by_also("b");
        let err = Engine::new().execute(&t, &q).unwrap_err();
        assert!(
            matches!(err, PlanError::CompositeKeyOverflow { domain } if domain > u32::MAX as u64),
            "{err:?}"
        );
        assert!(err.to_string().contains("32-bit key space"), "{err}");
    }

    #[test]
    fn single_column_rows_have_one_part() {
        let t = people();
        let out = Engine::new()
            .execute(&t, &AggregateQuery::paper("g", "v"))
            .unwrap();
        for r in &out.rows {
            assert_eq!(r.group_parts, vec![r.group]);
        }
    }

    fn people() -> Table {
        Table::new("r")
            .with_column("g", vec![1, 3, 3, 0, 0, 5, 2, 4])
            .with_column("v", vec![0, 5, 2, 4, 1, 3, 3, 0])
    }

    #[test]
    fn paper_query_end_to_end() {
        let out = Engine::new()
            .execute(&people(), &AggregateQuery::paper("g", "v"))
            .unwrap();
        assert_eq!(out.rows.len(), 6);
        // Group 3: COUNT 2, SUM 7.
        let r3 = out.rows.iter().find(|r| r.group == 3).unwrap();
        assert_eq!(r3.values, vec![2.0, 7.0]);
        assert!(out.report.cycles > 0);
        assert!(out.report.describe().contains("CardinalityScan"));
        assert!(out.report.describe().contains("Aggregate["));
    }

    #[test]
    fn filter_then_aggregate() {
        let q = AggregateQuery::paper("g", "v").with_filter("g", Predicate::NotEqual(0));
        let out = Engine::new().execute(&people(), &q).unwrap();
        assert_eq!(out.report.rows_aggregated, 6);
        assert!(out.rows.iter().all(|r| r.group != 0));
        assert!(out.report.describe().contains("VectorFilter"));
    }

    #[test]
    fn min_max_avg() {
        let q = AggregateQuery::paper("g", "v")
            .with_aggregate(AggFn::Min)
            .with_aggregate(AggFn::Max)
            .with_aggregate(AggFn::Avg);
        let out = Engine::new().execute(&people(), &q).unwrap();
        let r0 = out.rows.iter().find(|r| r.group == 0).unwrap();
        // count, sum, min, max, avg of values {4, 1}.
        assert_eq!(r0.values, vec![2.0, 5.0, 1.0, 4.0, 2.5]);
        assert!(out.report.describe().contains("MinMaxKernel"));
    }

    #[test]
    fn having_filters_output_groups() {
        // people(): group 0 {4,1}, 3 {5,2} have COUNT 2; others COUNT 1.
        let q =
            AggregateQuery::paper("g", "v").with_having(AggFn::Count, Predicate::GreaterThan(1));
        let out = Engine::new().execute(&people(), &q).unwrap();
        let groups: Vec<u32> = out.rows.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![0, 3]);
        assert!(out.report.describe().contains("VectorHaving(COUNT(*) > 1)"));
    }

    #[test]
    fn having_on_sum_with_minmax_columns_in_flight() {
        // HAVING must compact the min/max columns too.
        let q = AggregateQuery::paper("g", "v")
            .with_aggregate(AggFn::Min)
            .with_aggregate(AggFn::Max)
            .with_having(AggFn::Sum, Predicate::GreaterThan(3));
        let out = Engine::new().execute(&people(), &q).unwrap();
        // Sums per group: 0→5, 1→0, 2→3, 3→7, 4→0, 5→3 → keep {0, 3}.
        let groups: Vec<u32> = out.rows.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![0, 3]);
        let r0 = &out.rows[0];
        assert_eq!(r0.values, vec![2.0, 5.0, 1.0, 4.0]);
    }

    #[test]
    fn having_removing_everything_yields_empty_output() {
        let q =
            AggregateQuery::paper("g", "v").with_having(AggFn::Count, Predicate::GreaterThan(100));
        let out = Engine::new().execute(&people(), &q).unwrap();
        assert!(out.rows.is_empty());
    }

    #[test]
    fn having_on_avg_is_a_typed_plan_error() {
        let q = AggregateQuery::paper("g", "v").with_having(AggFn::Avg, Predicate::GreaterThan(1));
        let e = Engine::new().execute(&people(), &q).unwrap_err();
        assert_eq!(e, PlanError::UnsupportedAvgPredicate { clause: "HAVING" });
        assert!(e.to_string().contains("AVG"), "{e}");
    }

    #[test]
    fn order_by_on_avg_is_a_typed_plan_error() {
        let q = AggregateQuery::paper("g", "v")
            .with_aggregate(AggFn::Avg)
            .with_order_by(crate::query::OrderKey::Agg(AggFn::Avg), false);
        let e = Engine::new().plan(&people(), &q).unwrap_err();
        assert_eq!(e, PlanError::UnsupportedAvgPredicate { clause: "ORDER BY" });
    }

    #[test]
    fn order_by_aggregate_desc_with_limit() {
        // Top-2 groups by SUM(v): 3 (7), 0 (5).
        let q = AggregateQuery::paper("g", "v")
            .with_order_by(crate::query::OrderKey::Agg(AggFn::Sum), true)
            .with_limit(2);
        let out = Engine::new().execute(&people(), &q).unwrap();
        let groups: Vec<u32> = out.rows.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![3, 0]);
        assert!(out.report.describe().contains("VectorOrderBy"));
        assert!(out.report.describe().contains("Limit(2)"));
    }

    #[test]
    fn order_by_is_stable_on_ties() {
        // Groups 2 and 5 both sum to 3; radix sort is stable, so the
        // lower group key (already in group order) comes first.
        let q = AggregateQuery::paper("g", "v")
            .with_order_by(crate::query::OrderKey::Agg(AggFn::Sum), false);
        let out = Engine::new().execute(&people(), &q).unwrap();
        let sums: Vec<f64> = out.rows.iter().map(|r| r.values[1]).collect();
        let mut sorted = sums.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sums, sorted);
        let pos2 = out.rows.iter().position(|r| r.group == 2).unwrap();
        let pos5 = out.rows.iter().position(|r| r.group == 5).unwrap();
        assert!(pos2 < pos5, "stability: group 2 before 5 on equal sums");
    }

    #[test]
    fn bare_limit_truncates_group_order() {
        let q = AggregateQuery::paper("g", "v").with_limit(3);
        let out = Engine::new().execute(&people(), &q).unwrap();
        let groups: Vec<u32> = out.rows.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![0, 1, 2]);
    }

    #[test]
    fn full_sql_pipeline_via_database() {
        use crate::database::Database;
        let mut db = Database::new();
        db.register(people());
        let out = db
            .execute_sql(
                "SELECT g, COUNT(*), SUM(v) FROM r WHERE v > 0 GROUP BY g \
                 HAVING SUM(v) > 2 ORDER BY SUM(v) DESC LIMIT 2",
            )
            .unwrap();
        // After WHERE v > 0: group sums 0→5, 2→3, 3→7, 5→3; HAVING > 2
        // keeps all of those; top-2 by sum: 3 (7), 0 (5).
        let groups: Vec<u32> = out.rows.iter().map(|r| r.group).collect();
        assert_eq!(groups, vec![3, 0]);
    }

    #[test]
    fn sorted_metadata_drives_the_planner() {
        // Sorted, low cardinality, long runs (128 per group) → polytable
        // per Table IX.
        let n = 512usize;
        let t = Table::new("r")
            .with_column("g", (0..n).map(|i| (i / 128) as u32).collect())
            .with_column("v", (0..n).map(|i| (i % 10) as u32).collect());
        let plan = Engine::new()
            .plan(&t, &AggregateQuery::paper("g", "v"))
            .unwrap();
        assert_eq!(plan.algorithm(), Algorithm::Polytable);
        assert!(plan.presorted());
        let out = Engine::new()
            .execute(&t, &AggregateQuery::paper("g", "v"))
            .unwrap();
        assert_eq!(out.report.algorithm, Some(Algorithm::Polytable));
    }

    #[test]
    fn short_runs_steer_the_planner_away_from_polytable() {
        // Sorted but nearly-unique keys: run locality is absent, so the
        // run-length-aware policy falls back to monotable.
        let n = 512usize;
        let t = Table::new("r")
            .with_column("g", (0..n).map(|i| (i / 2) as u32).collect())
            .with_column("v", (0..n).map(|i| (i % 10) as u32).collect());
        let out = Engine::new()
            .execute(&t, &AggregateQuery::paper("g", "v"))
            .unwrap();
        assert_eq!(out.report.algorithm, Some(Algorithm::Monotable));
    }

    #[test]
    fn unknown_column_is_a_typed_error() {
        let e = Engine::new()
            .execute(&people(), &AggregateQuery::paper("nope", "v"))
            .unwrap_err();
        assert_eq!(e, PlanError::UnknownColumn("nope".into()));
        assert!(e.to_string().contains("unknown column"));
    }

    #[test]
    fn empty_table_and_no_aggregates_are_typed_errors() {
        let empty = Table::new("r")
            .with_column("g", vec![])
            .with_column("v", vec![]);
        let e = Engine::new()
            .plan(&empty, &AggregateQuery::paper("g", "v"))
            .unwrap_err();
        assert_eq!(e, PlanError::EmptyTable);

        let mut q = AggregateQuery::paper("g", "v");
        q.aggregates.clear();
        let e = Engine::new().plan(&people(), &q).unwrap_err();
        assert_eq!(e, PlanError::NoAggregates);
    }

    #[test]
    fn filter_that_drops_everything_reports_skipped_aggregation() {
        let t = Table::new("r")
            .with_column("g", vec![1, 1])
            .with_column("v", vec![2, 2]);
        let q = AggregateQuery::paper("g", "v").with_filter("v", Predicate::NotEqual(2));
        let out = Engine::new().execute(&t, &q).unwrap();
        assert!(out.rows.is_empty());
        assert_eq!(out.report.rows_aggregated, 0);
        // No aggregation ran, and the report says so instead of claiming
        // an algorithm.
        assert_eq!(out.report.algorithm, None);
        assert!(out
            .report
            .steps
            .contains(&crate::plan::PlanStep::AggregateSkipped));
        assert!(out.report.describe().contains("AggregateSkipped"));
    }

    #[test]
    fn sampled_estimation_plans_cheaper_and_answers_identically() {
        let n = 64 * 400;
        let g: Vec<u32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 500) as u32)
            .collect();
        let v: Vec<u32> = (0..n).map(|i| (i % 10) as u32).collect();
        let t = Table::new("r").with_column("g", g).with_column("v", v);
        let q = AggregateQuery::paper("g", "v");

        let exact = Engine::new().execute(&t, &q).unwrap();
        let sampled = Engine::new()
            .with_estimation(CardinalityEstimation::Sampled { stride: 8 })
            .execute(&t, &q)
            .unwrap();
        assert_eq!(exact.rows, sampled.rows);
        assert_eq!(exact.report.algorithm, sampled.report.algorithm);
        assert!(
            sampled.report.cycles < exact.report.cycles,
            "sampled planning ({}) should cost less than exact ({})",
            sampled.report.cycles,
            exact.report.cycles
        );
    }

    #[test]
    fn plan_matches_machine_estimate_under_sampling() {
        // The plan-time host mirror of the sampled scan must agree with
        // the machine's own sampled estimate on unfiltered input.
        let n = 64 * 37 + 13;
        let g: Vec<u32> = (0..n).map(|i| ((i as u64 * 48271) % 997) as u32).collect();
        let v = vec![0u32; n];
        let t = Table::new("r")
            .with_column("g", g.clone())
            .with_column("v", v.clone());
        for stride in [1usize, 2, 8, 64] {
            let plan = Engine::new()
                .with_estimation(CardinalityEstimation::Sampled { stride })
                .plan(&t, &AggregateQuery::paper("g", "v"))
                .unwrap();
            let mut m = vagg_sim::Machine::paper();
            let staged = vagg_core::StagedInput::stage_raw(&mut m, &g, &v, false);
            let (est, _) = vagg_core::sampling::sampled_max_scan(&mut m, &staged, stride);
            assert_eq!(
                plan.cardinality_estimate(),
                est.planning_cardinality(),
                "stride {stride}"
            );
        }
    }

    #[test]
    fn matches_oracle_on_random_data() {
        let n = 2000;
        let g: Vec<u32> = (0..n).map(|i| (i * 7919) % 97).collect();
        let v: Vec<u32> = (0..n).map(|i| i % 10).collect();
        let t = Table::new("r")
            .with_column("g", g.clone())
            .with_column("v", v.clone());
        let out = Engine::new()
            .execute(&t, &AggregateQuery::paper("g", "v"))
            .unwrap();
        let expect = vagg_core::reference(&g, &v);
        assert_eq!(out.rows.len(), expect.len());
        for (row, i) in out.rows.iter().zip(0..) {
            assert_eq!(row.group, expect.groups[i]);
            assert_eq!(row.values[0] as u32, expect.counts[i]);
            assert_eq!(row.values[1] as u32, expect.sums[i]);
        }
    }

    #[test]
    fn explain_renders_without_executing() {
        let q = AggregateQuery::paper("g", "v")
            .with_filter("v", Predicate::GreaterThan(0))
            .with_having(AggFn::Sum, Predicate::GreaterThan(2))
            .with_order_by(crate::query::OrderKey::Agg(AggFn::Sum), true)
            .with_limit(2);
        let plan = Engine::new().plan(&people(), &q).unwrap();
        let text = plan.explain();
        assert_eq!(
            text,
            "SELECT g, COUNT(*), SUM(v) FROM r WHERE v > 0 GROUP BY g \
             HAVING SUM(v) > 2 ORDER BY SUM(v) DESC LIMIT 2\n\
             \x20 rows=8 presorted=false algorithm=monotable cardinality≈6\n\
             \x20 1. VectorFilter(v > 0)\n\
             \x20 2. CardinalityScan[exact](cardinality≈6)\n\
             \x20 3. Aggregate[mono]\n\
             \x20 4. VectorHaving(SUM(v) > 2)\n\
             \x20 5. VectorOrderBy[radix](SUM(v) DESC)\n\
             \x20 6. Limit(2)"
        );
    }
}
