//! Equi-joins: hash build/probe on the [`crate::KeyDictionary`], with a
//! §V-D-style adaptive choice of build side and sharded exchange
//! strategy.
//!
//! A two-table `SELECT ... FROM a JOIN b ON a.k = b.k [AND ...]` runs
//! in three phases:
//!
//! 1. **Build.** The planner picks a *build side* from live
//!    [`TableStats`] — fewer rows wins, ties broken by the smaller KMV
//!    distinct estimate of the join key, then by key sortedness — and
//!    its key tuples are interned through a [`KeyDictionary`] into
//!    dense-id buckets of row ids (`JoinBuildSink`). On the sharded
//!    path the build is *cooperative*: build-side row ranges are
//!    morsels on the persistent [`crate::Executor`], and every worker
//!    interns into the same shared dictionary.
//! 2. **Probe.** Probe-side morsels stream through the frozen
//!    `JoinIndex`: each row's key tuple is looked up (no interning —
//!    a miss is simply a dropped row) and matched build rows emit
//!    `(probe row, build row)` pairs.
//! 3. **Aggregate.** The pairs gather a *derived table* whose columns
//!    are exactly the query's references (`l.g`, `r.v`, …), and the
//!    ordinary single-table engine plans and executes the GROUP
//!    BY/HAVING/ORDER BY/LIMIT tail over it — so every aggregation
//!    algorithm, the morsel executor and the coordinator tail run
//!    unchanged.
//!
//! The sharded exchange picks between two strategies
//! ([`JoinStrategy`]): **broadcast** builds one global index over the
//! (small) build side and every shard probes its own partition against
//! it; **partition** splits the build side into one dictionary per
//! shard by a hash of the join key, and each probe row is routed to
//! the partition its key hashes to — both sides partitioned by join
//! key, no probe row ever visits more than one dictionary. Both
//! strategies produce identical pairs; the choice only moves work.
//!
//! Determinism: build buckets are sorted by row id when the index
//! freezes, probe rows are scanned in order per shard, and the
//! aggregation tail is order-insensitive — so single-session, sharded
//! broadcast and sharded partition answers are bit-identical (the
//! differential tests in `tests/join.rs` hold all of them against a
//! nested-loop oracle).

use crate::catalogue::{CatalogueId, SharedCatalogue};
use crate::database::{Database, SqlError};
use crate::delta::TableStats;
use crate::engine::QueryOutput;
use crate::keydict::KeyDictionary;
use crate::plan::{PlanError, PlanStep};
use crate::query::AggregateQuery;
use crate::snapshot::Snapshot;
use crate::sql::{parse_template, JoinClause, SqlTemplate};
use crate::table::Table;
use std::fmt;
use std::sync::{Arc, Mutex};

/// How a sharded join moves the build side to the probe side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Single-session execution: one build, one probe, no exchange.
    Local,
    /// The (small) build side is interned into **one** global
    /// dictionary and every shard probes its partition against it.
    Broadcast,
    /// Both sides are partitioned by a hash of the join key: the build
    /// side is split into one dictionary per shard, and each probe row
    /// is routed to the partition its key hashes to.
    Partition,
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinStrategy::Local => write!(f, "local"),
            JoinStrategy::Broadcast => write!(f, "broadcast"),
            JoinStrategy::Partition => write!(f, "partition"),
        }
    }
}

/// One column the query references, resolved against the joined pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ColumnRef {
    /// The name as the query spells it (`l.g`, or bare `g` when
    /// unambiguous) — the derived table's column name.
    pub(crate) name: String,
    /// Whether the column lives on the `FROM` (left) table.
    pub(crate) left: bool,
    /// The actual column name on that table.
    pub(crate) column: String,
}

/// A planned equi-join: the adaptive build-side and strategy decision,
/// the resolved column references, and the aggregation the derived
/// table feeds. Produced by the join planner behind
/// [`crate::Database::run_sql`] / [`crate::ShardedDatabase::run_sql`],
/// rendered by [`JoinPlan::explain`], returned typed by
/// [`crate::Database::explain_join_sql`].
#[derive(Debug, Clone)]
pub struct JoinPlan {
    pub(crate) left: String,
    pub(crate) right: String,
    pub(crate) on: Vec<(String, String)>,
    pub(crate) agg: AggregateQuery,
    pub(crate) refs: Vec<ColumnRef>,
    pub(crate) build_right: bool,
    pub(crate) strategy: JoinStrategy,
    pub(crate) steps: Vec<PlanStep>,
    pub(crate) build_rows: usize,
    pub(crate) probe_rows: usize,
    pub(crate) build_distinct: u64,
    pub(crate) build_sorted: bool,
    pub(crate) left_version: u64,
    pub(crate) right_version: u64,
    pub(crate) as_of: Option<String>,
}

impl JoinPlan {
    /// The `FROM` (left) table name.
    pub fn left_table(&self) -> &str {
        &self.left
    }

    /// The joined (right) table name.
    pub fn right_table(&self) -> &str {
        &self.right
    }

    /// The equi-key pairs as `(left column, right column)`.
    pub fn on(&self) -> &[(String, String)] {
        &self.on
    }

    /// The table the hash build runs over (the §V-D-style choice:
    /// fewer rows, ties broken by KMV distinct estimate, then by key
    /// sortedness).
    pub fn build_table(&self) -> &str {
        if self.build_right {
            &self.right
        } else {
            &self.left
        }
    }

    /// The table whose rows stream through the built index.
    pub fn probe_table(&self) -> &str {
        if self.build_right {
            &self.left
        } else {
            &self.right
        }
    }

    /// Whether the joined (right) table was chosen as the build side.
    pub fn build_right(&self) -> bool {
        self.build_right
    }

    /// The sharded exchange strategy the planner picked.
    pub fn strategy(&self) -> JoinStrategy {
        self.strategy
    }

    /// The join steps ([`PlanStep::JoinBuild`], [`PlanStep::JoinProbe`])
    /// in execution order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Build-side input rows.
    pub fn build_rows(&self) -> usize {
        self.build_rows
    }

    /// Probe-side input rows.
    pub fn probe_rows(&self) -> usize {
        self.probe_rows
    }

    /// The KMV distinct estimate of the build key the decision used.
    pub fn build_distinct(&self) -> u64 {
        self.build_distinct
    }

    /// Whether every build key column is known sorted.
    pub fn build_sorted(&self) -> bool {
        self.build_sorted
    }

    /// The left table's data version the plan was made against.
    pub fn left_data_version(&self) -> u64 {
        self.left_version
    }

    /// The right table's data version the plan was made against.
    pub fn right_data_version(&self) -> u64 {
        self.right_version
    }

    /// Time-travel provenance (`name` or `data_version@N`) when the
    /// plan reads a frozen state, `None` for live plans.
    pub fn as_of(&self) -> Option<&str> {
        self.as_of.as_deref()
    }

    /// The aggregation the derived (joined) table feeds.
    pub fn query(&self) -> &AggregateQuery {
        &self.agg
    }

    /// The planned statement rendered as SQL.
    pub fn sql(&self) -> String {
        let on = self
            .on
            .iter()
            .map(|(l, r)| format!("{}.{l} = {}.{r}", self.left, self.right))
            .collect::<Vec<_>>()
            .join(" AND ");
        self.agg
            .sql(&format!("{} JOIN {} ON {on}", self.left, self.right))
    }

    /// The build side's join key columns, in ON order.
    pub(crate) fn build_keys(&self) -> Vec<&str> {
        self.on
            .iter()
            .map(|(l, r)| {
                if self.build_right {
                    r.as_str()
                } else {
                    l.as_str()
                }
            })
            .collect()
    }

    /// The probe side's join key columns, in ON order.
    pub(crate) fn probe_keys(&self) -> Vec<&str> {
        self.on
            .iter()
            .map(|(l, r)| {
                if self.build_right {
                    l.as_str()
                } else {
                    r.as_str()
                }
            })
            .collect()
    }

    /// The referenced columns living on the build / probe side.
    pub(crate) fn side_refs(&self, build: bool) -> Vec<&ColumnRef> {
        self.refs
            .iter()
            .filter(|r| (r.left != self.build_right) == build)
            .collect()
    }

    /// Renders the join decision in `EXPLAIN` form: the SQL, the
    /// build/probe/strategy header, both tables' data versions, then
    /// the numbered join steps.
    pub fn explain(&self) -> String {
        use fmt::Write as _;
        let mut out = self.sql();
        let _ = write!(
            out,
            "\n  join=hash build={} probe={} strategy={} build_rows={} \
             probe_rows={} build_distinct≈{} build_sorted={}",
            self.build_table(),
            self.probe_table(),
            self.strategy,
            self.build_rows,
            self.probe_rows,
            self.build_distinct,
            self.build_sorted,
        );
        let _ = write!(
            out,
            "\n  left={} data_version={} right={} data_version={}",
            self.left, self.left_version, self.right, self.right_version
        );
        if let Some(label) = &self.as_of {
            let _ = write!(out, " as_of={label}");
        }
        for (i, step) in self.steps.iter().enumerate() {
            let _ = write!(out, "\n  {}. {step}", i + 1);
        }
        out
    }
}

/// The row-count threshold under which a sharded build side is always
/// broadcast (one global dictionary) rather than partitioned.
const BROADCAST_ROWS: usize = 1024;

/// Plans an equi-join: validates the ON columns, resolves every column
/// the query references against the joined pair, picks the build side
/// and the sharded exchange strategy from the two tables' live
/// statistics. `shards <= 1` plans [`JoinStrategy::Local`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_join(
    agg: &AggregateQuery,
    join: &JoinClause,
    left_name: &str,
    left_schema: &Table,
    left_stats: &TableStats,
    left_version: u64,
    right_schema: &Table,
    right_stats: &TableStats,
    right_version: u64,
    shards: usize,
    as_of: Option<String>,
) -> Result<JoinPlan, PlanError> {
    let right_name = join.table.as_str();
    if left_stats.rows() == 0 || right_stats.rows() == 0 {
        return Err(PlanError::EmptyTable);
    }
    for (lc, rc) in &join.on {
        if left_schema.column(lc).is_none() {
            return Err(PlanError::UnknownColumn(format!("{left_name}.{lc}")));
        }
        if right_schema.column(rc).is_none() {
            return Err(PlanError::UnknownColumn(format!("{right_name}.{rc}")));
        }
    }
    // Resolve every column the aggregation references; the derived
    // table's columns carry the reference spellings verbatim.
    let mut refs: Vec<ColumnRef> = Vec::new();
    let mut referenced: Vec<&str> = agg.group_columns();
    referenced.push(&agg.value);
    if let Some((col, _)) = &agg.filter {
        referenced.push(col);
    }
    for name in referenced {
        if refs.iter().any(|r| r.name == name) {
            continue;
        }
        let (left, column) = match name.split_once('.') {
            Some((t, c)) if t == left_name => {
                if left_schema.column(c).is_none() {
                    return Err(PlanError::UnknownColumn(name.to_string()));
                }
                (true, c)
            }
            Some((t, c)) if t == right_name => {
                if right_schema.column(c).is_none() {
                    return Err(PlanError::UnknownColumn(name.to_string()));
                }
                (false, c)
            }
            Some(_) => return Err(PlanError::UnknownColumn(name.to_string())),
            None => match (
                left_schema.column(name).is_some(),
                right_schema.column(name).is_some(),
            ) {
                (true, true) => return Err(PlanError::AmbiguousColumn(name.to_string())),
                (true, false) => (true, name),
                (false, true) => (false, name),
                (false, false) => return Err(PlanError::UnknownColumn(name.to_string())),
            },
        };
        refs.push(ColumnRef {
            name: name.to_string(),
            left,
            column: column.to_string(),
        });
    }
    // §V-D-style build-side choice from live statistics.
    let key_facts = |stats: &TableStats, keys: &[&String]| {
        let mut distinct: u64 = 1;
        let mut sorted = true;
        for key in keys {
            if let Some(col) = stats.column(key) {
                distinct = distinct.saturating_mul(col.distinct_estimate().max(1));
                sorted &= col.sorted;
            } else {
                sorted = false;
            }
        }
        (distinct.min(stats.rows() as u64), sorted)
    };
    let lkeys: Vec<&String> = join.on.iter().map(|(l, _)| l).collect();
    let rkeys: Vec<&String> = join.on.iter().map(|(_, r)| r).collect();
    let (ldistinct, lsorted) = key_facts(left_stats, &lkeys);
    let (rdistinct, rsorted) = key_facts(right_stats, &rkeys);
    let (lrows, rrows) = (left_stats.rows(), right_stats.rows());
    let build_right = if rrows != lrows {
        rrows < lrows
    } else if rdistinct != ldistinct {
        rdistinct < ldistinct
    } else if rsorted != lsorted {
        rsorted
    } else {
        true
    };
    let (build_rows, probe_rows) = if build_right {
        (rrows, lrows)
    } else {
        (lrows, rrows)
    };
    let (build_distinct, build_sorted) = if build_right {
        (rdistinct, rsorted)
    } else {
        (ldistinct, lsorted)
    };
    let strategy = if shards <= 1 {
        JoinStrategy::Local
    } else if build_rows <= BROADCAST_ROWS.max(probe_rows / shards) {
        JoinStrategy::Broadcast
    } else {
        JoinStrategy::Partition
    };
    let key_names = |side_right: bool| -> Vec<String> {
        join.on
            .iter()
            .map(|(l, r)| if side_right { r.clone() } else { l.clone() })
            .collect()
    };
    let steps = vec![
        PlanStep::JoinBuild {
            table: if build_right { right_name } else { left_name }.to_string(),
            keys: key_names(build_right),
            rows: build_rows,
            distinct: build_distinct,
        },
        PlanStep::JoinProbe {
            table: if build_right { left_name } else { right_name }.to_string(),
            keys: key_names(!build_right),
            rows: probe_rows,
        },
    ];
    Ok(JoinPlan {
        left: left_name.to_string(),
        right: right_name.to_string(),
        on: join.on.clone(),
        agg: agg.clone(),
        refs,
        build_right,
        strategy,
        steps,
        build_rows,
        probe_rows,
        build_distinct,
        build_sorted,
        left_version,
        right_version,
        as_of,
    })
}

/// Routes a key tuple to one of `parts` hash partitions (FNV-1a).
pub(crate) fn route(tuple: &[u32], parts: usize) -> usize {
    if parts <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &x in tuple {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (h % parts as u64) as usize
}

/// One partition of the hash-join build phase: a shared
/// [`KeyDictionary`] interning key tuples to dense ids, plus dense-id
/// buckets of build row ids. Workers insert concurrently
/// ([`build_range`]); freezing sorts every bucket so the index is
/// deterministic however morsels interleaved.
#[derive(Debug, Default)]
pub(crate) struct JoinBuildSink {
    dict: Arc<KeyDictionary>,
    buckets: Mutex<Vec<Vec<u32>>>,
}

impl JoinBuildSink {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Interns staged `(dense id, build row)` entries under one lock.
    fn push(&self, staged: &[(usize, u32)]) {
        let mut buckets = self.buckets.lock().expect("join bucket lock");
        for &(id, row) in staged {
            if buckets.len() <= id {
                buckets.resize(id + 1, Vec::new());
            }
            buckets[id].push(row);
        }
    }

    /// The frozen, deterministic probe index: every bucket sorted by
    /// build row id (concurrent morsels insert in completion order).
    pub(crate) fn freeze(&self) -> JoinIndex {
        let mut buckets = self.buckets.lock().expect("join bucket lock").clone();
        for bucket in &mut buckets {
            bucket.sort_unstable();
        }
        JoinIndex {
            dict: Arc::clone(&self.dict),
            buckets,
        }
    }
}

/// The frozen build side of a hash join: lookup a probe tuple in the
/// dictionary (no interning), then emit its bucket's build rows.
#[derive(Debug)]
pub(crate) struct JoinIndex {
    dict: Arc<KeyDictionary>,
    buckets: Vec<Vec<u32>>,
}

impl JoinIndex {
    /// Distinct build key tuples interned into this partition.
    pub(crate) fn entries(&self) -> usize {
        self.dict.len()
    }

    /// Intern calls answered by an existing entry (duplicate build
    /// keys).
    pub(crate) fn dict_hits(&self) -> u64 {
        self.dict.hits()
    }
}

/// Interns build rows `lo..hi` of `keys` into `sinks` — one sink
/// broadcasts, several partition by [`route`] of the key tuple.
pub(crate) fn build_range(sinks: &[JoinBuildSink], keys: &[Arc<[u32]>], lo: usize, hi: usize) {
    let mut tuple = vec![0u32; keys.len()];
    let mut staged: Vec<Vec<(usize, u32)>> = vec![Vec::new(); sinks.len()];
    for row in lo..hi {
        for (t, k) in tuple.iter_mut().zip(keys) {
            *t = k[row];
        }
        let part = route(&tuple, sinks.len());
        let id = sinks[part].dict.intern(&tuple) as usize;
        let row = u32::try_from(row).expect("build rows fit the 32-bit row id space");
        staged[part].push((id, row));
    }
    for (sink, staged) in sinks.iter().zip(&staged) {
        if !staged.is_empty() {
            sink.push(staged);
        }
    }
}

/// Probes rows `lo..hi` of `keys` against `indexes` (routing each row
/// by [`route`] when partitioned), returning matched
/// `(probe row, build row)` pairs in probe-row order.
pub(crate) fn probe_range(
    indexes: &[JoinIndex],
    keys: &[Arc<[u32]>],
    lo: usize,
    hi: usize,
) -> Vec<(u32, u32)> {
    let mut tuple = vec![0u32; keys.len()];
    let mut pairs = Vec::new();
    for row in lo..hi {
        for (t, k) in tuple.iter_mut().zip(keys) {
            *t = k[row];
        }
        let index = &indexes[route(&tuple, indexes.len())];
        if let Some(id) = index.dict.lookup(&tuple) {
            if let Some(bucket) = index.buckets.get(id as usize) {
                let row = u32::try_from(row).expect("probe rows fit the 32-bit row id space");
                pairs.extend(bucket.iter().map(|&b| (row, b)));
            }
        }
    }
    pairs
}

/// The columns one join side contributes, by actual column name —
/// straight `Arc` shares for a single table, concatenated across
/// partitions for the sharded build side (global row ids).
#[derive(Debug)]
pub(crate) struct ColumnSet {
    cols: Vec<(String, Arc<[u32]>)>,
}

impl ColumnSet {
    /// Zero-copy column shares from one table.
    pub(crate) fn from_table(table: &Table, names: &[&str]) -> Self {
        Self {
            cols: names
                .iter()
                .map(|&n| {
                    (
                        n.to_string(),
                        table.column_shared(n).expect("resolved column exists"),
                    )
                })
                .collect(),
        }
    }

    /// Columns concatenated across partitions, in partition order —
    /// the sharded build side's global row id space.
    pub(crate) fn concat(parts: &[Table], names: &[&str]) -> Self {
        Self {
            cols: names
                .iter()
                .map(|&n| {
                    let mut data = Vec::new();
                    for part in parts {
                        data.extend_from_slice(part.column(n).expect("resolved column exists"));
                    }
                    (n.to_string(), Arc::from(data))
                })
                .collect(),
        }
    }

    /// One column's data by actual column name.
    pub(crate) fn get(&self, name: &str) -> &Arc<[u32]> {
        self.cols
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d)
            .expect("requested column was collected")
    }

    /// The key columns named by `names`, in order (shared, cheap).
    pub(crate) fn keys(&self, names: &[&str]) -> Vec<Arc<[u32]>> {
        names.iter().map(|&n| Arc::clone(self.get(n))).collect()
    }
}

/// The actual column names a side must contribute: its join keys plus
/// every referenced column, deduplicated.
pub(crate) fn side_columns(plan: &JoinPlan, build: bool) -> Vec<&str> {
    let mut names: Vec<&str> = if build {
        plan.build_keys()
    } else {
        plan.probe_keys()
    };
    for r in plan.side_refs(build) {
        if !names.contains(&r.column.as_str()) {
            names.push(&r.column);
        }
    }
    names
}

/// Gathers the matched pairs into the derived table the aggregation
/// runs over: one column per reference, named as the query spells it.
pub(crate) fn derived_table(
    plan: &JoinPlan,
    pairs: &[(u32, u32)],
    probe: &ColumnSet,
    build: &ColumnSet,
) -> Table {
    let mut out = Table::new(format!("{}⋈{}", plan.left, plan.right));
    for r in &plan.refs {
        let on_build = r.left != plan.build_right;
        let src = if on_build {
            build.get(&r.column)
        } else {
            probe.get(&r.column)
        };
        let data: Vec<u32> = pairs
            .iter()
            .map(|&(p, b)| src[if on_build { b } else { p } as usize])
            .collect();
        out = out.with_column(&r.name, data);
    }
    out
}

/// Runs a planned join start to finish on the calling thread (the
/// single-session [`JoinStrategy::Local`] path): build, probe, gather
/// the derived table.
pub(crate) fn join_local(plan: &JoinPlan, left: &Table, right: &Table) -> Table {
    join_local_traced(plan, left, right).0
}

/// Host-side observations of one local join execution, recorded for
/// `EXPLAIN ANALYZE`. The join runs entirely on the host (no simulated
/// machine work), so recording them cannot perturb any result.
pub(crate) struct LocalJoinObs {
    /// Build-side input rows interned.
    pub(crate) build_rows: usize,
    /// Distinct key tuples the build dictionary holds.
    pub(crate) entries: usize,
    /// Intern calls answered by an existing entry.
    pub(crate) dict_hits: u64,
    /// Probe-side input rows streamed.
    pub(crate) probe_rows: usize,
    /// Matched `(probe, build)` pairs emitted.
    pub(crate) pairs: usize,
    /// Host nanoseconds spent freezing the build index (the barrier
    /// between the phases). Wall-clock; diagnostic only.
    pub(crate) freeze_ns: u64,
}

/// [`join_local`] plus the [`LocalJoinObs`] the run produced. The
/// untraced path calls this too and drops the observations — they are
/// a handful of host-side reads, not measurable work.
pub(crate) fn join_local_traced(
    plan: &JoinPlan,
    left: &Table,
    right: &Table,
) -> (Table, LocalJoinObs) {
    let (build_t, probe_t) = if plan.build_right {
        (right, left)
    } else {
        (left, right)
    };
    let build = ColumnSet::from_table(build_t, &side_columns(plan, true));
    let probe = ColumnSet::from_table(probe_t, &side_columns(plan, false));
    let sinks = [JoinBuildSink::new()];
    build_range(&sinks, &build.keys(&plan.build_keys()), 0, build_t.rows());
    let freeze_start = std::time::Instant::now();
    let indexes = [sinks[0].freeze()];
    let freeze_ns = freeze_start.elapsed().as_nanos() as u64;
    let pairs = probe_range(&indexes, &probe.keys(&plan.probe_keys()), 0, probe_t.rows());
    let obs = LocalJoinObs {
        build_rows: build_t.rows(),
        entries: indexes[0].entries(),
        dict_hits: indexes[0].dict_hits(),
        probe_rows: probe_t.rows(),
        pairs: pairs.len(),
        freeze_ns,
    };
    (derived_table(plan, &pairs, &probe, &build), obs)
}

/// What a join morsel does: cooperatively intern a build row range, or
/// stream a probe row range through the frozen indexes.
pub(crate) enum JoinWork {
    /// Intern rows into the shared build sinks.
    Build {
        /// One sink broadcasts; several partition by key hash.
        sinks: Arc<Vec<JoinBuildSink>>,
    },
    /// Probe rows against the frozen indexes.
    Probe {
        /// One index broadcasts; several partition by key hash.
        indexes: Arc<Vec<JoinIndex>>,
    },
}

/// One stealable unit of join work: a row range of one side's key
/// columns (see [`crate::Executor`]).
pub(crate) struct JoinMorsel {
    /// Home shard (probe morsels) or spread tag (build morsels) — the
    /// executor seeds deques by `shard % workers`.
    pub(crate) shard: usize,
    /// The key columns this morsel reads.
    pub(crate) keys: Arc<Vec<Arc<[u32]>>>,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
    pub(crate) work: JoinWork,
}

/// What one join morsel produced.
pub(crate) struct JoinOutcome {
    pub(crate) shard: usize,
    pub(crate) lo: usize,
    /// Matched `(probe row, build row)` pairs (empty for build
    /// morsels).
    pub(crate) pairs: Vec<(u32, u32)>,
    /// Whether a worker stole this morsel from another deque.
    pub(crate) stolen: bool,
}

impl JoinMorsel {
    /// Executes the morsel (on a pool worker).
    pub(crate) fn run(&self, stolen: bool) -> JoinOutcome {
        let pairs = match &self.work {
            JoinWork::Build { sinks } => {
                build_range(sinks, &self.keys, self.lo, self.hi);
                Vec::new()
            }
            JoinWork::Probe { indexes } => probe_range(indexes, &self.keys, self.lo, self.hi),
        };
        JoinOutcome {
            shard: self.shard,
            lo: self.lo,
            pairs,
            stolen,
        }
    }
}

/// A two-table statement prepared once and executed many times:
/// produced by [`crate::Database::prepare_join`]. The join (build +
/// probe + derived-table gather) is cached keyed on both tables'
/// schema and data versions — re-executing against unchanged tables
/// re-plans only the (cheap) aggregation over the cached derived
/// table; any version drift on either side rebuilds the join
/// (counted by [`PreparedJoin::rejoins`]).
#[derive(Debug)]
pub struct PreparedJoin {
    template: Arc<SqlTemplate>,
    cached: Option<CachedJoin>,
    executions: u64,
    rejoins: u64,
}

/// The cached join materialisation, tagged with the catalogue identity
/// and both tables' versions it was built against.
#[derive(Debug)]
struct CachedJoin {
    catalogue: CatalogueId,
    left: (u64, u64),
    right: (u64, u64),
    plan: JoinPlan,
    derived: Table,
}

impl PreparedJoin {
    /// Parses and eagerly plans a join template (what
    /// [`crate::Database::prepare_join`] calls).
    pub(crate) fn prepare(catalogue: &SharedCatalogue, sql: &str) -> Result<Self, SqlError> {
        let template = Arc::new(parse_template(sql)?);
        if template.join.is_none() {
            return Err(SqlError::JoinStatement);
        }
        let stmt = Self {
            template,
            cached: None,
            executions: 0,
            rejoins: 0,
        };
        // Plan the sentinel query now: prepare-time errors (unknown
        // tables, unresolvable columns) beat first-execution surprises.
        let snap = catalogue.snapshot();
        let query = stmt.template.query.clone();
        stmt.plan_at(&snap, &query)?;
        Ok(stmt)
    }

    /// `?` placeholders this statement declares.
    pub fn parameter_count(&self) -> usize {
        self.template.slots.len()
    }

    /// Successful executions so far.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Times execution had to rebuild the join (first execution, a
    /// version drift on either table, or a catalogue change) instead
    /// of reusing the cached derived table.
    pub fn rejoins(&self) -> u64 {
        self.rejoins
    }

    /// Binds `params` and executes on `db`'s session. Reads at the
    /// open read-only transaction's snapshot when one is pinned, else
    /// at a snapshot-of-now — the same two-table consistent cut
    /// [`crate::Database::run_sql`] uses for joins.
    ///
    /// # Errors
    ///
    /// Bind errors ([`PlanError::BindArity`] / [`PlanError::BindType`]
    /// wrapped in [`SqlError::Plan`]), plus the usual join planning
    /// errors when the join must be rebuilt.
    pub fn execute(&mut self, db: &mut Database, params: &[u64]) -> Result<QueryOutput, SqlError> {
        let agg = crate::prepared::bind_slots(&self.template, params).map_err(SqlError::Plan)?;
        {
            let owned;
            let snap = match db.txn_snapshot() {
                Some(snap) => snap,
                None => {
                    owned = db.catalogue().snapshot();
                    &owned
                }
            };
            self.refresh(db.catalogue(), snap, &agg)?;
        }
        self.run_tail(db, &agg)
    }

    /// Binds `params` and executes **at a pinned snapshot**: both
    /// tables read the snapshot's cut, so the answer reproduces the
    /// pinned state however much ingest landed since.
    ///
    /// # Errors
    ///
    /// As [`PreparedJoin::execute`], plus [`SqlError::ForeignSnapshot`]
    /// if the snapshot was cut from a catalogue other than `db`'s.
    pub fn execute_at(
        &mut self,
        db: &mut Database,
        snap: &Snapshot,
        params: &[u64],
    ) -> Result<QueryOutput, SqlError> {
        if !snap.catalogue().is_same(db.catalogue()) {
            return Err(SqlError::ForeignSnapshot);
        }
        let agg = crate::prepared::bind_slots(&self.template, params).map_err(SqlError::Plan)?;
        self.refresh(db.catalogue(), snap, &agg)?;
        self.run_tail(db, &agg)
    }

    /// Runs the (cheap) aggregation tail over the cached derived table.
    fn run_tail(
        &mut self,
        db: &mut Database,
        agg: &AggregateQuery,
    ) -> Result<QueryOutput, SqlError> {
        let cached = self.cached.as_ref().expect("refresh filled the cache");
        let out = db.run_join_tail(&cached.plan.steps, agg, &cached.derived)?;
        self.executions += 1;
        Ok(out)
    }

    /// Reuses the cached join when both tables still sit at the cached
    /// versions under the same catalogue; otherwise re-plans and
    /// re-materialises the join at `snap`'s cut. Binding only patches
    /// comparison constants — column references never change between
    /// binds — so a version-stable cache stays valid across executions.
    fn refresh(
        &mut self,
        catalogue: &SharedCatalogue,
        snap: &Snapshot,
        agg: &AggregateQuery,
    ) -> Result<(), SqlError> {
        let versions = |table: &str| -> Result<(u64, u64), SqlError> {
            match (snap.schema_version(table), snap.data_version(table)) {
                (Some(s), Some(d)) => Ok((s, d)),
                _ => Err(SqlError::UnknownTable(table.to_string())),
            }
        };
        let left = versions(&self.template.table)?;
        let join = self.template.join.as_ref().expect("join template");
        let right = versions(&join.table)?;
        let hit = self
            .cached
            .as_ref()
            .is_some_and(|c| c.catalogue.matches(catalogue) && c.left == left && c.right == right);
        if !hit {
            let plan = self.plan_at(snap, agg)?;
            let ltab = snap.table(&plan.left).expect("version implies table");
            let rtab = snap.table(&plan.right).expect("version implies table");
            let derived = join_local(&plan, &ltab, &rtab);
            self.cached = Some(CachedJoin {
                catalogue: catalogue.id(),
                left,
                right,
                plan,
                derived,
            });
            self.rejoins += 1;
        }
        Ok(())
    }

    /// Plans the join at a snapshot cut (no execution).
    fn plan_at(&self, snap: &Snapshot, agg: &AggregateQuery) -> Result<JoinPlan, SqlError> {
        let join = self.template.join.as_ref().expect("join template");
        let fetch = |table: &str| -> Result<(Table, TableStats, u64), SqlError> {
            let t = snap
                .table(table)
                .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
            let stats = snap
                .table_stats(table)
                .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
            let version = snap
                .data_version(table)
                .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
            Ok((t, stats, version))
        };
        let (ltab, lstats, lver) = fetch(&self.template.table)?;
        let (rtab, rstats, rver) = fetch(&join.table)?;
        plan_join(
            agg,
            join,
            &self.template.table,
            &ltab,
            &lstats,
            lver,
            &rtab,
            &rstats,
            rver,
            1,
            None,
        )
        .map_err(SqlError::Plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AggregateQuery;
    use crate::sql::JoinClause;

    fn tables() -> (Table, Table) {
        let l = Table::new("l")
            .with_column("k", vec![1, 2, 3, 1, 9])
            .with_column("v", vec![10, 20, 30, 40, 50]);
        let r = Table::new("r")
            .with_column("k", vec![1, 2, 2])
            .with_column("w", vec![7, 8, 9]);
        (l, r)
    }

    fn plan(l: &Table, r: &Table, shards: usize) -> JoinPlan {
        let agg = AggregateQuery::paper("l.k", "l.v");
        let join = JoinClause {
            table: "r".into(),
            on: vec![("k".into(), "k".into())],
        };
        plan_join(
            &agg,
            &join,
            "l",
            l,
            &TableStats::seed(l),
            1,
            r,
            &TableStats::seed(r),
            1,
            shards,
            None,
        )
        .unwrap()
    }

    #[test]
    fn build_side_is_the_smaller_table() {
        let (l, r) = tables();
        let p = plan(&l, &r, 1);
        assert!(p.build_right(), "r has fewer rows");
        assert_eq!(p.build_table(), "r");
        assert_eq!(p.probe_table(), "l");
        assert_eq!(p.strategy(), JoinStrategy::Local);
        assert_eq!(p.build_rows(), 3);
        assert_eq!(p.probe_rows(), 5);
        assert_eq!(p.build_distinct(), 2);
    }

    #[test]
    fn local_join_produces_the_nested_loop_pairs() {
        let (l, r) = tables();
        let p = plan(&l, &r, 1);
        let derived = join_local(&p, &l, &r);
        // Nested loop: l rows with k ∈ {1, 2} match; k=2 matches two
        // r rows.
        assert_eq!(derived.rows(), 4);
        assert_eq!(derived.column("l.k"), Some(&[1u32, 2, 2, 1][..]));
        assert_eq!(derived.column("l.v"), Some(&[10u32, 20, 20, 40][..]));
    }

    #[test]
    fn partitioned_probe_matches_broadcast() {
        let (l, r) = tables();
        let p = plan(&l, &r, 1);
        let build = ColumnSet::from_table(&r, &side_columns(&p, true));
        let probe = ColumnSet::from_table(&l, &side_columns(&p, false));
        let pairs_for = |parts: usize| {
            let sinks: Vec<JoinBuildSink> = (0..parts).map(|_| JoinBuildSink::new()).collect();
            build_range(&sinks, &build.keys(&p.build_keys()), 0, r.rows());
            let indexes: Vec<JoinIndex> = sinks.iter().map(JoinBuildSink::freeze).collect();
            probe_range(&indexes, &probe.keys(&p.probe_keys()), 0, l.rows())
        };
        assert_eq!(pairs_for(1), pairs_for(4));
    }

    #[test]
    fn ambiguous_and_unknown_references_are_typed_errors() {
        let (l, r) = tables();
        let join = JoinClause {
            table: "r".into(),
            on: vec![("k".into(), "k".into())],
        };
        let err = |agg: AggregateQuery| {
            plan_join(
                &agg,
                &join,
                "l",
                &l,
                &TableStats::seed(&l),
                1,
                &r,
                &TableStats::seed(&r),
                1,
                1,
                None,
            )
            .unwrap_err()
        };
        assert_eq!(
            err(AggregateQuery::paper("k", "v")),
            PlanError::AmbiguousColumn("k".into())
        );
        assert_eq!(
            err(AggregateQuery::paper("l.k", "l.nope")),
            PlanError::UnknownColumn("l.nope".into())
        );
        assert_eq!(
            err(AggregateQuery::paper("x.k", "l.v")),
            PlanError::UnknownColumn("x.k".into())
        );
    }

    #[test]
    fn explain_renders_decision_and_steps() {
        let (l, r) = tables();
        let p = plan(&l, &r, 4);
        let text = p.explain();
        assert!(text.contains("join=hash build=r probe=l strategy=broadcast"));
        assert!(text.contains("1. JoinBuild(r[k] rows=3 distinct≈2)"));
        assert!(text.contains("2. JoinProbe(l[k] rows=5)"));
        assert!(text.contains("left=l data_version=1 right=r data_version=1"));
    }
}
