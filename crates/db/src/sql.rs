//! A SQL front end for the aggregation query family of Figure 2.
//!
//! The paper motivates its work with SQL (`SELECT g, COUNT(*), SUM(v)
//! FROM r GROUP BY g`) and the TPC-H queries it dominates; this module
//! closes the loop by parsing exactly that query family into an
//! [`AggregateQuery`]:
//!
//! ```text
//! SELECT <group>, <agg> [, <agg>...]
//! FROM <table>
//! [WHERE <column> <cmp> <number>]
//! GROUP BY <group>
//! [HAVING <agg> <cmp> <number>]
//! [ORDER BY <group | agg> [ASC | DESC]]
//! [LIMIT <k>]
//! ```
//!
//! where `<agg>` is `COUNT(*)`, `SUM(col)`, `MIN(col)`, `MAX(col)` or
//! `AVG(col)` and `<cmp>` is `<>` / `!=` (native in the ISA's comparison
//! class, Table III) or `>` / `<` (composed with the arithmetic class's
//! `maximum` — see [`crate::filter`]). `=`, `<=` and `>=` remain
//! unsupported as *comparisons*: they would need a mask-complement
//! instruction.
//!
//! The `FROM` clause optionally names an inner equi-join:
//!
//! ```text
//! FROM <a> [INNER] JOIN <b> ON a.k = b.k [AND a.k2 = b.k2 ...]
//! ```
//!
//! Join keys must be table-qualified; `=` is accepted *only* in `ON`
//! (keys are equi-compared on the host hash table, not through the
//! vector ISA). With a join, every column reference elsewhere in the
//! statement may be qualified (`a.col`), and must be when the bare name
//! exists on both sides. See [`crate::JoinPlan`] for planning and
//! execution.
//!
//! The write path adds
//!
//! ```text
//! INSERT INTO <table> (<col> [, <col>...]) VALUES (<num>, ...) [, (...)]*
//! DELETE FROM <table> [WHERE <column> <cmp> <number>]
//! UPDATE <table> SET <col> = <num> [, <col> = <num>...] [WHERE ...]
//! ```
//!
//! parsed by [`parse_statement`] and executed through the catalogue's
//! write paths (tombstones and overwrites in the delta — see
//! [`crate::delta`]). Tuple arity, duplicate columns and out-of-range
//! values are parse-time errors. `=` is accepted only in `SET`
//! assignments; as a *comparison* it stays unsupported (the ISA gap).
//!
//! Transactions bracket writes or pin reads:
//!
//! ```text
//! BEGIN [TRANSACTION]     -- write transaction: buffered, atomic at COMMIT
//! BEGIN READ ONLY         -- repeatable reads at one snapshot
//! COMMIT | ROLLBACK
//! ```
//!
//! and time travel reads older states:
//!
//! ```text
//! CREATE SNAPSHOT <name>              -- durable named version
//! SELECT ... FROM <table> AS OF <name>
//! SELECT ... FROM <table> AS OF data_version <N>
//! ```
//!
//! ```
//! use vagg_db::sql::parse;
//!
//! let q = parse("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g")?;
//! assert_eq!(q.table, "r");
//! assert_eq!(q.query.sql("r"), "SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g");
//! # Ok::<(), vagg_db::sql::ParseSqlError>(())
//! ```

use crate::filter::Predicate;
use crate::query::{AggFn, AggregateQuery, Having, OrderBy, OrderKey};
use std::error::Error;
use std::fmt;

/// A parsed statement: the target table plus the structured query.
#[derive(Debug, Clone)]
pub struct SqlQuery {
    /// The `FROM` table name (the probe-side *candidate* when a
    /// [`JoinClause`] is present — the planner picks the actual build
    /// side from statistics).
    pub table: String,
    /// The structured query the engine executes. With a join, column
    /// references may be table-qualified (`t.col`) and are resolved
    /// against the joined pair at plan time.
    pub query: AggregateQuery,
    /// Time travel: `None` reads the current state, `Some` reads a
    /// named or per-version historical state.
    pub as_of: Option<AsOf>,
    /// An equi-join: `FROM a JOIN b ON a.k = b.k [AND ...]`. `None`
    /// for the single-table query family.
    pub join: Option<JoinClause>,
}

/// The `JOIN ... ON` clause of an equi-join `SELECT`: the second table
/// and the equi-key pairs, normalised to `(FROM-side column,
/// JOIN-side column)` regardless of how the SQL ordered each equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinClause {
    /// The joined (right-hand) table name.
    pub table: String,
    /// The equi-key column pairs: `(column of the FROM table, column
    /// of the joined table)`, in SQL order.
    pub on: Vec<(String, String)>,
}

/// The `AS OF` clause: which historical state a `SELECT` reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsOf {
    /// `AS OF <name>` — a named version created by `CREATE SNAPSHOT`.
    Name(String),
    /// `AS OF data_version <N>` — the table's state at data version
    /// `N` (available while the delta generation that produced it
    /// stands; compaction folds old versions away).
    DataVersion(u64),
}

/// One parsed statement: a `SELECT` / `EXPLAIN SELECT`, a write
/// (`INSERT`, `DELETE`, `UPDATE`), a transaction bracket (`BEGIN`
/// [`READ ONLY`], `COMMIT`, `ROLLBACK`), or `CREATE SNAPSHOT`.
#[derive(Debug, Clone)]
pub enum Statement {
    /// Execute the query and return rows.
    Select(SqlQuery),
    /// Plan the query and return the typed [`crate::QueryPlan`].
    Explain(SqlQuery),
    /// Execute the query with tracing on and return the rows plus a
    /// per-step/per-morsel [`crate::QueryTrace`].
    ExplainAnalyze(SqlQuery),
    /// Append rows through the write path
    /// (see [`crate::SharedCatalogue::append`]).
    Insert(InsertStatement),
    /// Tombstone matching rows (see [`crate::delta`]).
    Delete(DeleteStatement),
    /// Overwrite columns of matching rows.
    Update(UpdateStatement),
    /// `BEGIN [TRANSACTION]` (a write transaction: statements buffer
    /// until `COMMIT` installs them atomically) or `BEGIN READ ONLY`
    /// (the session captures one [`crate::Snapshot`] and every
    /// statement until `COMMIT` reads at it).
    Begin {
        /// `true` for `BEGIN READ ONLY`.
        read_only: bool,
    },
    /// `COMMIT`: close the open transaction — install a write
    /// transaction's buffered statements, or release a read-only
    /// transaction's snapshot.
    Commit,
    /// `ROLLBACK`: discard the open transaction.
    Rollback,
    /// `CREATE SNAPSHOT name`: freeze the current state under a name
    /// that survives compaction and restart (time travel anchor).
    CreateSnapshot(
        /// The version's name.
        String,
    ),
}

/// A parsed `DELETE FROM t [WHERE col cmp num]` statement. The rows the
/// predicate matches are tombstoned in the table's delta — filtered
/// from every later read, physically dropped at compaction.
#[derive(Debug, Clone)]
pub struct DeleteStatement {
    /// The target table name.
    pub table: String,
    /// The WHERE predicate; `None` deletes every row.
    pub filter: Option<(String, Predicate)>,
}

/// A parsed `UPDATE t SET col = num [, ...] [WHERE col cmp num]`
/// statement. Matching rows get overwrite entries in the table's
/// delta, folded in at read and at compaction.
#[derive(Debug, Clone)]
pub struct UpdateStatement {
    /// The target table name.
    pub table: String,
    /// The `(column, new value)` assignments, in SQL order.
    pub sets: Vec<(String, u32)>,
    /// The WHERE predicate; `None` updates every row.
    pub filter: Option<(String, Predicate)>,
}

/// A parsed `INSERT INTO t (cols...) VALUES (...), ...` statement.
/// Tuple arity against the column list, duplicate columns and
/// out-of-range values are rejected at parse time with typed
/// [`ParseSqlError`]s; the column set is checked against the table's
/// schema at append time (typed [`crate::IngestError`]s).
#[derive(Debug, Clone)]
pub struct InsertStatement {
    /// The target table name.
    pub table: String,
    /// The column list, in tuple-position order.
    pub columns: Vec<String>,
    /// The value tuples, each exactly `columns.len()` wide.
    pub rows: Vec<Vec<u32>>,
}

/// Where one `?` placeholder of a prepared statement binds, in SQL
/// order (see [`parse_template`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamSlot {
    /// The WHERE clause's comparison constant.
    FilterConstant,
    /// The HAVING clause's comparison constant.
    HavingConstant,
    /// The LIMIT row budget.
    Limit,
}

/// A parsed prepared-statement template: the query carries sentinel
/// constants where the SQL had `?` placeholders, and `slots` records
/// each placeholder's binding site in SQL order. Produced by
/// [`parse_template`], consumed by [`crate::Database::prepare`].
#[derive(Debug, Clone)]
pub struct SqlTemplate {
    /// The `FROM` table name.
    pub table: String,
    /// The query with sentinel constants in the placeholder positions.
    pub query: AggregateQuery,
    /// The placeholders in SQL order (empty for a fully literal
    /// statement, which is a valid zero-parameter template).
    pub slots: Vec<ParamSlot>,
    /// The equi-join clause, when the template is a two-table
    /// statement (consumed by [`crate::Database::prepare_join`]).
    pub join: Option<JoinClause>,
}

/// Why a statement failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSqlError {
    /// A character the lexer does not recognise.
    UnexpectedChar(char),
    /// The statement ended where more input was required.
    UnexpectedEnd(&'static str),
    /// A token other than the expected one appeared.
    Expected {
        /// What the grammar required here.
        expected: &'static str,
        /// What was found instead.
        found: String,
    },
    /// An aggregate function name that is not COUNT/SUM/MIN/MAX/AVG.
    UnknownAggregate(String),
    /// Aggregates referencing different value columns (unsupported).
    MixedValueColumns(String, String),
    /// The `GROUP BY` column differs from the first selected column.
    GroupByMismatch {
        /// The first column of the SELECT list.
        selected: String,
        /// The column named in GROUP BY.
        grouped: String,
    },
    /// A comparison the ISA cannot express (`=`, `<=`, `>=`).
    UnsupportedComparison(String),
    /// Input remained after a complete statement.
    TrailingInput(String),
    /// The SELECT list has no aggregate functions.
    NoAggregates,
    /// A `?` placeholder in a statement that is not being prepared —
    /// placeholders only make sense through [`parse_template`] /
    /// [`crate::Database::prepare`].
    UnboundPlaceholder,
    /// An `INSERT` tuple whose width disagrees with its column list.
    InsertArity {
        /// 1-based tuple number in the `VALUES` list.
        tuple: usize,
        /// Columns the `INSERT` names.
        expected: usize,
        /// Values the tuple carries.
        got: usize,
    },
    /// An `INSERT` or `UPDATE SET` column list naming one column twice.
    InsertDuplicateColumn(
        /// The repeated column.
        String,
    ),
    /// An `INSERT` value that does not fit the store's 32-bit columns.
    InsertValueTooLarge {
        /// 1-based tuple number in the `VALUES` list.
        tuple: usize,
        /// The offending value.
        value: u64,
    },
    /// A numeric literal too large to lex (beyond 64 bits).
    NumberTooLarge(
        /// The literal's digits.
        String,
    ),
    /// A `WHERE`/`HAVING` comparison constant that does not fit the
    /// store's 32-bit column values.
    ConstantTooLarge {
        /// The offending constant.
        value: u64,
    },
}

impl fmt::Display for ParseSqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSqlError::UnexpectedChar(c) => {
                write!(f, "unexpected character {c:?}")
            }
            ParseSqlError::UnexpectedEnd(what) => {
                write!(f, "unexpected end of statement, expected {what}")
            }
            ParseSqlError::Expected { expected, found } => {
                write!(f, "expected {expected}, found {found:?}")
            }
            ParseSqlError::UnknownAggregate(name) => {
                write!(
                    f,
                    "unknown aggregate {name:?} (supported: COUNT, SUM, MIN, MAX, AVG)"
                )
            }
            ParseSqlError::MixedValueColumns(a, b) => {
                write!(
                    f,
                    "aggregates reference different value columns {a:?} and {b:?}"
                )
            }
            ParseSqlError::GroupByMismatch { selected, grouped } => {
                write!(
                    f,
                    "GROUP BY column {grouped:?} does not match selected column {selected:?}"
                )
            }
            ParseSqlError::UnsupportedComparison(op) => {
                write!(
                    f,
                    "unsupported comparison {op:?}: the vector ISA expresses \
                     <>, !=, > and < (Table III comparisons plus a maximum \
                     composition); = / <= / >= would need a mask-complement \
                     instruction"
                )
            }
            ParseSqlError::TrailingInput(tok) => {
                write!(f, "unexpected input after statement: {tok:?}")
            }
            ParseSqlError::NoAggregates => {
                write!(f, "the SELECT list names no aggregate functions")
            }
            ParseSqlError::UnboundPlaceholder => {
                write!(
                    f,
                    "`?` placeholders are only valid in prepared statements; \
                     use Database::prepare"
                )
            }
            ParseSqlError::InsertArity {
                tuple,
                expected,
                got,
            } => write!(
                f,
                "INSERT tuple {tuple} has {got} value(s), the column list \
                 names {expected}"
            ),
            ParseSqlError::InsertDuplicateColumn(c) => {
                write!(f, "column list names {c:?} twice")
            }
            ParseSqlError::InsertValueTooLarge { tuple, value } => write!(
                f,
                "INSERT tuple {tuple}: value {value} does not fit a 32-bit \
                 column"
            ),
            ParseSqlError::NumberTooLarge(digits) => {
                write!(f, "numeric literal {digits} exceeds 64 bits")
            }
            ParseSqlError::ConstantTooLarge { value } => write!(
                f,
                "comparison constant {value} does not fit a 32-bit column \
                 value"
            ),
        }
    }
}

impl Error for ParseSqlError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(u64),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    NotEqual,
    Greater,
    Less,
    Equals,
    Semicolon,
    Question,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Ident(s) => s.clone(),
            Token::Number(n) => n.to_string(),
            Token::Comma => ",".into(),
            Token::Dot => ".".into(),
            Token::LParen => "(".into(),
            Token::RParen => ")".into(),
            Token::Star => "*".into(),
            Token::NotEqual => "<>".into(),
            Token::Greater => ">".into(),
            Token::Less => "<".into(),
            Token::Equals => "=".into(),
            Token::Semicolon => ";".into(),
            Token::Question => "?".into(),
        }
    }
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseSqlError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '.' => {
                chars.next();
                out.push(Token::Dot);
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            ';' => {
                chars.next();
                out.push(Token::Semicolon);
            }
            '?' => {
                chars.next();
                out.push(Token::Question);
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        out.push(Token::NotEqual);
                    }
                    Some('=') => {
                        return Err(ParseSqlError::UnsupportedComparison("<=".into()));
                    }
                    _ => out.push(Token::Less),
                }
            }
            '>' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        return Err(ParseSqlError::UnsupportedComparison(">=".into()));
                    }
                    _ => out.push(Token::Greater),
                }
            }
            '!' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        out.push(Token::NotEqual);
                    }
                    _ => return Err(ParseSqlError::UnexpectedChar('!')),
                }
            }
            // `=` lexes (UPDATE ... SET needs it); as a *comparison*
            // the parser rejects it with the ISA-gap guidance.
            '=' => {
                chars.next();
                out.push(Token::Equals);
            }
            '0'..='9' => {
                let mut digits = String::new();
                while let Some(&d) = chars.peek() {
                    match d {
                        '0'..='9' => {
                            digits.push(d);
                            chars.next();
                        }
                        '_' => {
                            chars.next();
                        }
                        _ => break,
                    }
                }
                let n: u64 = digits
                    .parse()
                    .map_err(|_| ParseSqlError::NumberTooLarge(digits.clone()))?;
                out.push(Token::Number(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&a) = chars.peek() {
                    if a.is_alphanumeric() || a == '_' {
                        s.push(a);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => return Err(ParseSqlError::UnexpectedChar(other)),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// `Some` while parsing a prepared-statement template: `?`
    /// placeholders are recorded here; `None` rejects them.
    slots: Option<Vec<ParamSlot>>,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self, expected: &'static str) -> Result<Token, ParseSqlError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or(ParseSqlError::UnexpectedEnd(expected))?;
        self.pos += 1;
        Ok(t)
    }

    fn ident(&mut self, expected: &'static str) -> Result<String, ParseSqlError> {
        match self.next(expected)? {
            Token::Ident(s) => Ok(s),
            other => Err(ParseSqlError::Expected {
                expected,
                found: other.describe(),
            }),
        }
    }

    fn keyword(&mut self, kw: &'static str) -> Result<(), ParseSqlError> {
        let s = self.ident(kw)?;
        if s.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(ParseSqlError::Expected {
                expected: kw,
                found: s,
            })
        }
    }

    fn expect(&mut self, tok: Token, expected: &'static str) -> Result<(), ParseSqlError> {
        let t = self.next(expected)?;
        if t == tok {
            Ok(())
        } else {
            Err(ParseSqlError::Expected {
                expected,
                found: t.describe(),
            })
        }
    }

    fn peek_is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// A column reference: a bare `col` or a table-qualified `t.col`
    /// (joins qualify columns; against a single table a qualified name
    /// simply fails column resolution at plan time).
    fn column(&mut self, expected: &'static str) -> Result<String, ParseSqlError> {
        let first = self.ident(expected)?;
        self.maybe_qualify(first)
    }

    /// Extends an already-consumed identifier with a `.col` suffix when
    /// one follows.
    fn maybe_qualify(&mut self, first: String) -> Result<String, ParseSqlError> {
        if self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let col = self.ident("a column name after `.`")?;
            Ok(format!("{first}.{col}"))
        } else {
            Ok(first)
        }
    }

    /// Records a `?` placeholder, or rejects it outside a template.
    fn record_slot(&mut self, slot: ParamSlot) -> Result<(), ParseSqlError> {
        match &mut self.slots {
            Some(slots) => {
                slots.push(slot);
                Ok(())
            }
            None => Err(ParseSqlError::UnboundPlaceholder),
        }
    }
}

/// One parsed SELECT-list aggregate: the function and its column
/// (`None` for `COUNT(*)`).
fn parse_aggregate(p: &mut Parser, name: &str) -> Result<(AggFn, Option<String>), ParseSqlError> {
    let fun = match name.to_ascii_uppercase().as_str() {
        "COUNT" => AggFn::Count,
        "SUM" => AggFn::Sum,
        "MIN" => AggFn::Min,
        "MAX" => AggFn::Max,
        "AVG" => AggFn::Avg,
        other => return Err(ParseSqlError::UnknownAggregate(other.into())),
    };
    p.expect(Token::LParen, "(")?;
    let col = match p.next("aggregate argument")? {
        Token::Star if fun == AggFn::Count => None,
        Token::Ident(c) if fun != AggFn::Count => Some(p.maybe_qualify(c)?),
        Token::Star => {
            return Err(ParseSqlError::Expected {
                expected: "a column name (only COUNT takes *)",
                found: "*".into(),
            })
        }
        other => {
            return Err(ParseSqlError::Expected {
                expected: "aggregate argument",
                found: other.describe(),
            })
        }
    };
    p.expect(Token::RParen, ")")?;
    Ok((fun, col))
}

/// Parses one `SELECT` statement of the supported grammar.
///
/// Statements beginning with `EXPLAIN` are rejected here; use
/// [`parse_statement`] to accept both forms.
///
/// # Errors
///
/// Returns [`ParseSqlError`] describing the first problem found: lexical
/// errors, grammar violations, unsupported comparisons, aggregate
/// inconsistencies, or trailing input.
pub fn parse(sql: &str) -> Result<SqlQuery, ParseSqlError> {
    let found = match parse_statement(sql)? {
        Statement::Select(q) => return Ok(q),
        Statement::Explain(_) => "EXPLAIN",
        Statement::ExplainAnalyze(_) => "EXPLAIN",
        Statement::Insert(_) => "INSERT",
        Statement::Delete(_) => "DELETE",
        Statement::Update(_) => "UPDATE",
        Statement::Begin { .. } => "BEGIN",
        Statement::Commit => "COMMIT",
        Statement::Rollback => "ROLLBACK",
        Statement::CreateSnapshot(_) => "CREATE",
    };
    Err(ParseSqlError::Expected {
        expected: "SELECT",
        found: found.into(),
    })
}

/// Parses one statement: `SELECT ...`, `EXPLAIN [ANALYZE] SELECT ...`,
/// `INSERT INTO t (cols...) VALUES (...), ...`, `DELETE FROM t ...`,
/// `UPDATE t SET ...`, `CREATE SNAPSHOT name`, `BEGIN`
/// (`[TRANSACTION]` / `READ ONLY`), `COMMIT` or `ROLLBACK`.
///
/// # Errors
///
/// As [`parse`], plus the typed `INSERT` errors
/// ([`ParseSqlError::InsertArity`],
/// [`ParseSqlError::InsertDuplicateColumn`],
/// [`ParseSqlError::InsertValueTooLarge`]).
pub fn parse_statement(sql: &str) -> Result<Statement, ParseSqlError> {
    let mut p = Parser {
        tokens: tokenize(sql)?,
        pos: 0,
        slots: None,
    };
    if p.peek_is_keyword("INSERT") {
        p.pos += 1;
        return parse_insert(&mut p).map(Statement::Insert);
    }
    if p.peek_is_keyword("DELETE") {
        p.pos += 1;
        return parse_delete(&mut p).map(Statement::Delete);
    }
    if p.peek_is_keyword("UPDATE") {
        p.pos += 1;
        return parse_update(&mut p).map(Statement::Update);
    }
    if p.peek_is_keyword("CREATE") {
        p.pos += 1;
        p.keyword("SNAPSHOT")?;
        let name = p.ident("the snapshot name")?;
        parse_statement_end(&mut p)?;
        return Ok(Statement::CreateSnapshot(name));
    }
    if p.peek_is_keyword("BEGIN") {
        p.pos += 1;
        return parse_begin(&mut p);
    }
    if p.peek_is_keyword("COMMIT") {
        p.pos += 1;
        parse_statement_end(&mut p)?;
        return Ok(Statement::Commit);
    }
    if p.peek_is_keyword("ROLLBACK") {
        p.pos += 1;
        parse_statement_end(&mut p)?;
        return Ok(Statement::Rollback);
    }
    let explain = p.peek_is_keyword("EXPLAIN");
    if explain {
        p.pos += 1;
    }
    let analyze = explain && p.peek_is_keyword("ANALYZE");
    if analyze {
        p.pos += 1;
    }
    let query = parse_select(&mut p)?;
    Ok(if analyze {
        Statement::ExplainAnalyze(query)
    } else if explain {
        Statement::Explain(query)
    } else {
        Statement::Select(query)
    })
}

// `[TRANSACTION | READ ONLY] [;]` — the leading BEGIN keyword was
// already consumed. A bare `BEGIN` (or `BEGIN TRANSACTION`) opens a
// write transaction; `BEGIN READ ONLY` opens a snapshot-pinned
// read-only transaction.
fn parse_begin(p: &mut Parser) -> Result<Statement, ParseSqlError> {
    const EXPECTED: &str = "TRANSACTION, READ ONLY, or the end of the statement";
    if p.peek_is_keyword("TRANSACTION") {
        p.pos += 1;
        parse_statement_end(p)?;
        return Ok(Statement::Begin { read_only: false });
    }
    if p.peek_is_keyword("READ") {
        p.pos += 1;
        let only = p.ident("ONLY (after READ)")?;
        if !only.eq_ignore_ascii_case("ONLY") {
            return Err(ParseSqlError::Expected {
                expected: "ONLY (after READ)",
                found: only,
            });
        }
        parse_statement_end(p)?;
        return Ok(Statement::Begin { read_only: true });
    }
    if let Some(t) = p.peek() {
        if t != &Token::Semicolon {
            return Err(ParseSqlError::Expected {
                expected: EXPECTED,
                found: t.describe(),
            });
        }
    }
    parse_statement_end(p)?;
    Ok(Statement::Begin { read_only: false })
}

// `FROM t [WHERE col cmp num] [;]` — the leading DELETE keyword was
// already consumed.
fn parse_delete(p: &mut Parser) -> Result<DeleteStatement, ParseSqlError> {
    p.keyword("FROM")?;
    let table = p.ident("the table name")?;
    let filter = parse_where(p)?;
    parse_statement_end(p)?;
    Ok(DeleteStatement { table, filter })
}

// `t SET col = num [, col = num]* [WHERE col cmp num] [;]` — the
// leading UPDATE keyword was already consumed.
fn parse_update(p: &mut Parser) -> Result<UpdateStatement, ParseSqlError> {
    let table = p.ident("the table name")?;
    p.keyword("SET")?;
    let mut sets: Vec<(String, u32)> = Vec::new();
    loop {
        let column = p.ident("a column name")?;
        p.expect(Token::Equals, "=")?;
        let value = match p.next("a value")? {
            Token::Number(n) => {
                u32::try_from(n).map_err(|_| ParseSqlError::ConstantTooLarge { value: n })?
            }
            other => {
                return Err(ParseSqlError::Expected {
                    expected: "a value",
                    found: other.describe(),
                })
            }
        };
        if sets.iter().any(|(c, _)| c == &column) {
            return Err(ParseSqlError::InsertDuplicateColumn(column));
        }
        sets.push((column, value));
        if p.peek() == Some(&Token::Comma) {
            p.pos += 1;
        } else {
            break;
        }
    }
    let filter = parse_where(p)?;
    parse_statement_end(p)?;
    Ok(UpdateStatement {
        table,
        sets,
        filter,
    })
}

// Optional `WHERE <col> <cmp> <num>` — shared by SELECT, DELETE and
// UPDATE.
fn parse_where(p: &mut Parser) -> Result<Option<(String, Predicate)>, ParseSqlError> {
    if !p.peek_is_keyword("WHERE") {
        return Ok(None);
    }
    p.pos += 1;
    let col = p.column("the filtered column")?;
    Ok(Some((col, parse_predicate(p, ParamSlot::FilterConstant)?)))
}

// Optional trailing semicolon, then end of input.
fn parse_statement_end(p: &mut Parser) -> Result<(), ParseSqlError> {
    if p.peek() == Some(&Token::Semicolon) {
        p.pos += 1;
    }
    if let Some(t) = p.peek() {
        return Err(ParseSqlError::TrailingInput(t.describe()));
    }
    Ok(())
}

// `INTO t (col, ...) VALUES (num, ...) [, (num, ...)]* [;]` — the
// leading INSERT keyword was already consumed.
fn parse_insert(p: &mut Parser) -> Result<InsertStatement, ParseSqlError> {
    p.keyword("INTO")?;
    let table = p.ident("the table name")?;
    p.expect(Token::LParen, "(")?;
    let mut columns = vec![p.ident("a column name")?];
    while p.peek() == Some(&Token::Comma) {
        p.pos += 1;
        columns.push(p.ident("a column name")?);
    }
    p.expect(Token::RParen, ")")?;
    for (i, c) in columns.iter().enumerate() {
        if columns[..i].contains(c) {
            return Err(ParseSqlError::InsertDuplicateColumn(c.clone()));
        }
    }
    p.keyword("VALUES")?;
    let mut rows: Vec<Vec<u32>> = Vec::new();
    loop {
        let tuple = rows.len() + 1;
        p.expect(Token::LParen, "(")?;
        let mut row = Vec::with_capacity(columns.len());
        loop {
            match p.next("a value")? {
                Token::Number(n) => row.push(
                    u32::try_from(n)
                        .map_err(|_| ParseSqlError::InsertValueTooLarge { tuple, value: n })?,
                ),
                other => {
                    return Err(ParseSqlError::Expected {
                        expected: "a value",
                        found: other.describe(),
                    })
                }
            }
            match p.next("`,` or `)`")? {
                Token::Comma => {}
                Token::RParen => break,
                other => {
                    return Err(ParseSqlError::Expected {
                        expected: "`,` or `)`",
                        found: other.describe(),
                    })
                }
            }
        }
        if row.len() != columns.len() {
            return Err(ParseSqlError::InsertArity {
                tuple,
                expected: columns.len(),
                got: row.len(),
            });
        }
        rows.push(row);
        if p.peek() == Some(&Token::Comma) {
            p.pos += 1;
        } else {
            break;
        }
    }
    if p.peek() == Some(&Token::Semicolon) {
        p.pos += 1;
    }
    if let Some(t) = p.peek() {
        return Err(ParseSqlError::TrailingInput(t.describe()));
    }
    Ok(InsertStatement {
        table,
        columns,
        rows,
    })
}

/// Parses one `SELECT` statement as a prepared-statement template:
/// `?` placeholders are accepted wherever a comparison constant or a
/// LIMIT row count may appear, and recorded as [`ParamSlot`]s in SQL
/// order. A statement without placeholders is a valid zero-parameter
/// template. `EXPLAIN` is rejected (prepare the bare `SELECT` and use
/// [`crate::QueryPlan::explain`] on its plan instead).
///
/// ```
/// use vagg_db::sql::{parse_template, ParamSlot};
///
/// let t = parse_template(
///     "SELECT g, SUM(v) FROM r WHERE w > ? GROUP BY g LIMIT ?",
/// )?;
/// assert_eq!(t.slots, vec![ParamSlot::FilterConstant, ParamSlot::Limit]);
/// # Ok::<(), vagg_db::sql::ParseSqlError>(())
/// ```
///
/// # Errors
///
/// As [`parse`], plus `EXPLAIN` statements are rejected.
pub fn parse_template(sql: &str) -> Result<SqlTemplate, ParseSqlError> {
    let mut p = Parser {
        tokens: tokenize(sql)?,
        pos: 0,
        slots: Some(Vec::new()),
    };
    if p.peek_is_keyword("EXPLAIN") {
        return Err(ParseSqlError::Expected {
            expected: "SELECT",
            found: "EXPLAIN".into(),
        });
    }
    let q = parse_select(&mut p)?;
    if q.as_of.is_some() {
        // A prepared plan is rebound against the *live* table;
        // freezing it at a historical state would defeat both.
        return Err(ParseSqlError::Expected {
            expected: "a statement without AS OF (time travel cannot be prepared)",
            found: "AS OF".into(),
        });
    }
    Ok(SqlTemplate {
        table: q.table,
        query: q.query,
        slots: p.slots.expect("template parser keeps its slot list"),
        join: q.join,
    })
}

// One `t.col` reference of an ON clause — join keys must be
// table-qualified so each equality attributes unambiguously.
fn parse_on_ref(p: &mut Parser) -> Result<(String, String), ParseSqlError> {
    let table = p.ident("a table-qualified join key (t.col)")?;
    p.expect(Token::Dot, "`.` (join keys are table-qualified)")?;
    let col = p.ident("a column name after `.`")?;
    Ok((table, col))
}

fn parse_select(p: &mut Parser) -> Result<SqlQuery, ParseSqlError> {
    p.keyword("SELECT")?;
    // Grouping columns: plain (possibly table-qualified) identifiers
    // before the first aggregate call (aggregates are recognised by
    // their parenthesis).
    let group_col = p.column("the grouping column")?;
    p.expect(Token::Comma, ",")?;
    let mut group_rest: Vec<String> = Vec::new();

    // Aggregate list.
    let mut aggregates: Vec<AggFn> = Vec::new();
    let mut value_col: Option<String> = None;
    loop {
        let name = p.ident("a grouping column or aggregate function")?;
        if aggregates.is_empty() && p.peek() != Some(&Token::LParen) {
            group_rest.push(p.maybe_qualify(name)?);
            p.expect(Token::Comma, ",")?;
            continue;
        }
        let (fun, col) = parse_aggregate(p, &name)?;
        if let Some(col) = col {
            match &value_col {
                None => value_col = Some(col),
                Some(prev) if *prev != col => {
                    return Err(ParseSqlError::MixedValueColumns(prev.clone(), col))
                }
                Some(_) => {}
            }
        }
        if !aggregates.contains(&fun) {
            aggregates.push(fun);
        }
        match p.peek() {
            Some(Token::Comma) => {
                p.pos += 1;
            }
            _ => break,
        }
    }
    if aggregates.is_empty() {
        return Err(ParseSqlError::NoAggregates);
    }

    p.keyword("FROM")?;
    let table = p.ident("the table name")?;

    // Optional `[INNER] JOIN b ON a.k = b.k [AND ...]` equi-join.
    let mut join: Option<JoinClause> = None;
    if p.peek_is_keyword("INNER") || p.peek_is_keyword("JOIN") {
        if p.peek_is_keyword("INNER") {
            p.pos += 1;
        }
        p.keyword("JOIN")?;
        let right = p.ident("the joined table name")?;
        if right == table {
            return Err(ParseSqlError::Expected {
                expected: "a second table (self-joins are not supported)",
                found: right,
            });
        }
        p.keyword("ON")?;
        let mut on: Vec<(String, String)> = Vec::new();
        loop {
            let (lt, lc) = parse_on_ref(p)?;
            // `=` is accepted *here only*: join keys are equi-compared
            // on the host hash table, not through the vector ISA's
            // comparison class (where `=` stays unsupported).
            p.expect(Token::Equals, "= (join keys are equi-compared)")?;
            let (rt, rc) = parse_on_ref(p)?;
            let pair = if lt == table && rt == right {
                (lc, rc)
            } else if lt == right && rt == table {
                (rc, lc)
            } else {
                return Err(ParseSqlError::Expected {
                    expected: "ON columns qualified by the two joined tables",
                    found: format!("{lt}.{lc} = {rt}.{rc}"),
                });
            };
            on.push(pair);
            if p.peek_is_keyword("AND") {
                p.pos += 1;
            } else {
                break;
            }
        }
        join = Some(JoinClause { table: right, on });
    }

    // Optional `AS OF <name | data_version N>` time travel.
    let mut as_of: Option<AsOf> = None;
    if p.peek_is_keyword("AS") {
        p.pos += 1;
        p.keyword("OF")?;
        let name = p.ident("a snapshot name or data_version")?;
        as_of = Some(if name.eq_ignore_ascii_case("data_version") {
            match p.next("a version number")? {
                Token::Number(n) => AsOf::DataVersion(n),
                other => {
                    return Err(ParseSqlError::Expected {
                        expected: "a version number",
                        found: other.describe(),
                    })
                }
            }
        } else {
            AsOf::Name(name)
        });
    }

    // Optional WHERE <col> <cmp> <num>.
    let filter = parse_where(p)?;

    p.keyword("GROUP")?;
    p.keyword("BY")?;
    let mut grouped_cols = vec![p.column("the GROUP BY column")?];
    while p.peek() == Some(&Token::Comma) {
        p.pos += 1;
        grouped_cols.push(p.column("a GROUP BY column")?);
    }
    let mut selected_cols = vec![group_col.clone()];
    selected_cols.extend(group_rest.iter().cloned());
    if grouped_cols != selected_cols {
        return Err(ParseSqlError::GroupByMismatch {
            selected: selected_cols.join(", "),
            grouped: grouped_cols.join(", "),
        });
    }

    // Optional HAVING <agg>(col|*) <cmp> <num>.
    let mut having: Option<Having> = None;
    if p.peek_is_keyword("HAVING") {
        p.pos += 1;
        let name = p.ident("an aggregate function")?;
        let (fun, col) = parse_aggregate(p, &name)?;
        if let (Some(prev), Some(col)) = (&value_col, &col) {
            if prev != col {
                return Err(ParseSqlError::MixedValueColumns(prev.clone(), col.clone()));
            }
        }
        if value_col.is_none() {
            value_col = col;
        }
        if !aggregates.contains(&fun) {
            aggregates.push(fun);
        }
        having = Some(Having {
            agg: fun,
            pred: parse_predicate(p, ParamSlot::HavingConstant)?,
        });
    }

    // Optional ORDER BY <col | agg> [ASC | DESC] [LIMIT k].
    let mut order_by: Option<OrderBy> = None;
    if p.peek_is_keyword("ORDER") {
        p.pos += 1;
        p.keyword("BY")?;
        let name = p.ident("an ORDER BY key")?;
        let key = if p.peek() == Some(&Token::Dot) {
            // A qualified name is never an aggregate call.
            let name = p.maybe_qualify(name)?;
            if name == group_col {
                OrderKey::Group
            } else {
                return Err(ParseSqlError::Expected {
                    expected: "the grouping column or an aggregate",
                    found: name,
                });
            }
        } else if p.peek() == Some(&Token::LParen) {
            let (fun, col) = parse_aggregate(p, &name)?;
            if let (Some(prev), Some(col)) = (&value_col, &col) {
                if prev != col {
                    return Err(ParseSqlError::MixedValueColumns(prev.clone(), col.clone()));
                }
            }
            if value_col.is_none() {
                value_col = col;
            }
            if !aggregates.contains(&fun) {
                aggregates.push(fun);
            }
            OrderKey::Agg(fun)
        } else if name == group_col {
            OrderKey::Group
        } else {
            return Err(ParseSqlError::Expected {
                expected: "the grouping column or an aggregate",
                found: name,
            });
        };
        let desc = if p.peek_is_keyword("DESC") {
            p.pos += 1;
            true
        } else {
            if p.peek_is_keyword("ASC") {
                p.pos += 1;
            }
            false
        };
        order_by = Some(OrderBy {
            key,
            desc,
            limit: None,
        });
    }

    // Optional LIMIT k (defaults to ascending group order without an
    // explicit ORDER BY, as the engine's natural output order).
    if p.peek_is_keyword("LIMIT") {
        p.pos += 1;
        let k = match p.next("a row count")? {
            // A LIMIT beyond the address space is semantically "keep
            // everything": saturate instead of erroring.
            Token::Number(k) => usize::try_from(k).unwrap_or(usize::MAX),
            Token::Question => {
                p.record_slot(ParamSlot::Limit)?;
                PLACEHOLDER_SENTINEL as usize
            }
            other => {
                return Err(ParseSqlError::Expected {
                    expected: "a row count",
                    found: other.describe(),
                })
            }
        };
        order_by
            .get_or_insert(OrderBy {
                key: OrderKey::Group,
                desc: false,
                limit: None,
            })
            .limit = Some(k);
    }

    // Optional trailing semicolon, then end.
    if p.peek() == Some(&Token::Semicolon) {
        p.pos += 1;
    }
    if let Some(t) = p.peek() {
        return Err(ParseSqlError::TrailingInput(t.describe()));
    }

    // COUNT(*)-only queries have no value column; grouping column works
    // as a placeholder since SUM is not requested.
    let value = value_col.unwrap_or_else(|| group_col.clone());
    Ok(SqlQuery {
        table,
        as_of,
        join,
        query: AggregateQuery {
            group_by: group_col,
            group_by_rest: group_rest,
            value,
            aggregates,
            filter,
            having,
            order_by,
        },
    })
}

// The constant a template carries in a `?` position until bind time.
// Any non-zero value works: it keeps `<> ?` away from the dedicated
// `NonZero` compare (bind maps `<> 0` there, like the literal parser).
const PLACEHOLDER_SENTINEL: u32 = 1;

// `<cmp> <number | ?>` — the comparison vocabulary the ISA can express
// (see [`crate::filter`]: `<>`/`!=` natively, `>`/`<` composed with
// `maximum`). In template mode a `?` constant is recorded under `slot`.
fn parse_predicate(p: &mut Parser, slot: ParamSlot) -> Result<Predicate, ParseSqlError> {
    let op = p.next("a comparison operator")?;
    if op == Token::Equals {
        return Err(ParseSqlError::UnsupportedComparison("=".into()));
    }
    let k = match p.next("a comparison constant")? {
        Token::Number(k) => {
            u32::try_from(k).map_err(|_| ParseSqlError::ConstantTooLarge { value: k })?
        }
        Token::Question => {
            p.record_slot(slot)?;
            PLACEHOLDER_SENTINEL
        }
        other => {
            return Err(ParseSqlError::Expected {
                expected: "a comparison constant",
                found: other.describe(),
            })
        }
    };
    match op {
        Token::NotEqual if k == 0 => Ok(Predicate::NonZero),
        Token::NotEqual => Ok(Predicate::NotEqual(k)),
        Token::Greater => Ok(Predicate::GreaterThan(k)),
        Token::Less => Ok(Predicate::LessThan(k)),
        other => Err(ParseSqlError::Expected {
            expected: "a comparison (<>, !=, >, <)",
            found: other.describe(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query() {
        let q = parse("SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g").unwrap();
        assert_eq!(q.table, "r");
        assert_eq!(q.query.group_by, "g");
        assert_eq!(q.query.value, "v");
        assert_eq!(q.query.aggregates, vec![AggFn::Count, AggFn::Sum]);
        assert!(q.query.filter.is_none());
    }

    #[test]
    fn parses_composite_group_by() {
        let q = parse(
            "SELECT city, age, COUNT(*), SUM(earnings) FROM people \
             GROUP BY city, age",
        )
        .unwrap();
        assert_eq!(q.query.group_by, "city");
        assert_eq!(q.query.group_by_rest, vec!["age".to_string()]);
        assert_eq!(q.query.value, "earnings");
    }

    #[test]
    fn parses_three_grouping_columns() {
        let q = parse("SELECT a, b, c, COUNT(*) FROM r GROUP BY a, b, c").unwrap();
        assert_eq!(q.query.group_columns(), vec!["a", "b", "c"]);
        assert_eq!(q.query.aggregates, vec![AggFn::Count]);
    }

    #[test]
    fn composite_group_by_list_must_match_select_list() {
        let err = parse("SELECT a, b, COUNT(*) FROM r GROUP BY a").unwrap_err();
        assert!(matches!(err, ParseSqlError::GroupByMismatch { .. }));
        let err = parse("SELECT a, b, COUNT(*) FROM r GROUP BY b, a").unwrap_err();
        assert!(matches!(err, ParseSqlError::GroupByMismatch { .. }));
    }

    #[test]
    fn case_insensitive_keywords_and_semicolon() {
        let q = parse("select age, count(*), avg(earnings) from people group by age;").unwrap();
        assert_eq!(q.table, "people");
        assert_eq!(q.query.aggregates, vec![AggFn::Count, AggFn::Avg]);
        assert_eq!(q.query.value, "earnings");
    }

    #[test]
    fn where_clause_not_equal() {
        let q = parse("SELECT g, SUM(v) FROM r WHERE w <> 9 GROUP BY g").unwrap();
        assert_eq!(q.query.filter, Some(("w".into(), Predicate::NotEqual(9))));
    }

    #[test]
    fn where_clause_nonzero_uses_the_dedicated_compare() {
        let q = parse("SELECT g, SUM(v) FROM r WHERE v != 0 GROUP BY g").unwrap();
        assert_eq!(q.query.filter, Some(("v".into(), Predicate::NonZero)));
    }

    #[test]
    fn where_clause_range_comparisons() {
        let q = parse("SELECT g, SUM(v) FROM r WHERE w > 100 GROUP BY g").unwrap();
        assert_eq!(
            q.query.filter,
            Some(("w".into(), Predicate::GreaterThan(100)))
        );
        let q = parse("SELECT g, SUM(v) FROM r WHERE w < 5 GROUP BY g").unwrap();
        assert_eq!(q.query.filter, Some(("w".into(), Predicate::LessThan(5))));
    }

    #[test]
    fn having_clause() {
        let q = parse("SELECT g, SUM(v) FROM r GROUP BY g HAVING COUNT(*) > 3").unwrap();
        let h = q.query.having.unwrap();
        assert_eq!(h.agg, AggFn::Count);
        assert_eq!(h.pred, Predicate::GreaterThan(3));
        // COUNT was pulled into the aggregate list so the engine
        // materialises it.
        assert!(q.query.aggregates.contains(&AggFn::Count));
    }

    #[test]
    fn having_rejects_mismatched_value_column() {
        let e = parse("SELECT g, SUM(v) FROM r GROUP BY g HAVING SUM(w) > 3").unwrap_err();
        assert_eq!(e, ParseSqlError::MixedValueColumns("v".into(), "w".into()));
    }

    #[test]
    fn order_by_group_and_aggregate() {
        let q = parse("SELECT g, SUM(v) FROM r GROUP BY g ORDER BY g").unwrap();
        let ob = q.query.order_by.unwrap();
        assert_eq!(ob.key, OrderKey::Group);
        assert!(!ob.desc);
        assert_eq!(ob.limit, None);

        let q = parse("SELECT g, SUM(v) FROM r GROUP BY g ORDER BY SUM(v) DESC LIMIT 10").unwrap();
        let ob = q.query.order_by.unwrap();
        assert_eq!(ob.key, OrderKey::Agg(AggFn::Sum));
        assert!(ob.desc);
        assert_eq!(ob.limit, Some(10));
    }

    #[test]
    fn order_by_asc_is_accepted_and_default() {
        let q = parse("SELECT g, SUM(v) FROM r GROUP BY g ORDER BY g ASC").unwrap();
        assert!(!q.query.order_by.unwrap().desc);
    }

    #[test]
    fn bare_limit_defaults_to_group_order() {
        let q = parse("SELECT g, SUM(v) FROM r GROUP BY g LIMIT 3").unwrap();
        let ob = q.query.order_by.unwrap();
        assert_eq!(ob.key, OrderKey::Group);
        assert_eq!(ob.limit, Some(3));
    }

    #[test]
    fn order_by_unknown_key_is_an_error() {
        let e = parse("SELECT g, SUM(v) FROM r GROUP BY g ORDER BY other").unwrap_err();
        assert!(matches!(e, ParseSqlError::Expected { .. }));
    }

    #[test]
    fn full_tail_roundtrips_through_sql_rendering() {
        let text = "SELECT g, COUNT(*), SUM(v) FROM r WHERE w > 2 GROUP BY g \
                    HAVING COUNT(*) <> 1 ORDER BY SUM(v) DESC LIMIT 5";
        let q = parse(text).unwrap();
        assert_eq!(q.query.sql("r"), text);
    }

    #[test]
    fn le_and_ge_are_rejected_with_guidance() {
        for bad in ["<=", ">="] {
            let e = parse(&format!(
                "SELECT g, SUM(v) FROM r WHERE w {bad} 1 GROUP BY g"
            ))
            .unwrap_err();
            assert_eq!(e, ParseSqlError::UnsupportedComparison(bad.into()));
        }
    }

    #[test]
    fn all_five_aggregates() {
        let q =
            parse("SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM r GROUP BY g").unwrap();
        assert_eq!(q.query.aggregates.len(), 5);
        assert!(q.query.needs_minmax());
    }

    #[test]
    fn count_star_only_query() {
        let q = parse("SELECT g, COUNT(*) FROM r GROUP BY g").unwrap();
        assert_eq!(q.query.aggregates, vec![AggFn::Count]);
    }

    #[test]
    fn numbers_allow_underscores() {
        let q = parse("SELECT g, SUM(v) FROM r WHERE w <> 10_000 GROUP BY g").unwrap();
        assert_eq!(
            q.query.filter,
            Some(("w".into(), Predicate::NotEqual(10_000)))
        );
    }

    #[test]
    fn rejects_equality_with_a_helpful_message() {
        let e = parse("SELECT g, SUM(v) FROM r WHERE w = 3 GROUP BY g").unwrap_err();
        assert!(matches!(e, ParseSqlError::UnsupportedComparison(_)));
        assert!(e.to_string().contains("Table III"));
    }

    #[test]
    fn rejects_mismatched_group_by() {
        let e = parse("SELECT g, SUM(v) FROM r GROUP BY h").unwrap_err();
        assert!(matches!(e, ParseSqlError::GroupByMismatch { .. }));
    }

    #[test]
    fn rejects_mixed_value_columns() {
        let e = parse("SELECT g, SUM(v), MIN(w) FROM r GROUP BY g").unwrap_err();
        assert_eq!(e, ParseSqlError::MixedValueColumns("v".into(), "w".into()));
    }

    #[test]
    fn rejects_unknown_aggregate() {
        let e = parse("SELECT g, MEDIAN(v) FROM r GROUP BY g").unwrap_err();
        assert_eq!(e, ParseSqlError::UnknownAggregate("MEDIAN".into()));
    }

    #[test]
    fn rejects_sum_star() {
        let e = parse("SELECT g, SUM(*) FROM r GROUP BY g").unwrap_err();
        assert!(matches!(e, ParseSqlError::Expected { .. }));
    }

    #[test]
    fn rejects_trailing_input() {
        let e = parse("SELECT g, SUM(v) FROM r GROUP BY g extra").unwrap_err();
        assert_eq!(e, ParseSqlError::TrailingInput("extra".into()));
        // ...including after a complete tail clause.
        let e = parse("SELECT g, SUM(v) FROM r GROUP BY g LIMIT 5 extra").unwrap_err();
        assert_eq!(e, ParseSqlError::TrailingInput("extra".into()));
    }

    #[test]
    fn rejects_truncated_statement() {
        let e = parse("SELECT g, SUM(v) FROM").unwrap_err();
        assert_eq!(e, ParseSqlError::UnexpectedEnd("the table name"));
    }

    #[test]
    fn rejects_garbage_characters() {
        let e = parse("SELECT g, SUM(v) FROM r GROUP BY g #").unwrap_err();
        assert_eq!(e, ParseSqlError::UnexpectedChar('#'));
    }

    #[test]
    fn duplicate_aggregates_are_deduplicated() {
        let q = parse("SELECT g, SUM(v), SUM(v), COUNT(*) FROM r GROUP BY g").unwrap();
        assert_eq!(q.query.aggregates, vec![AggFn::Sum, AggFn::Count]);
    }

    #[test]
    fn roundtrips_through_sql_rendering() {
        let text = "SELECT g, COUNT(*), SUM(v) FROM r WHERE w <> 9 GROUP BY g";
        let q = parse(text).unwrap();
        assert_eq!(q.query.sql(&q.table), text);
    }

    #[test]
    fn parses_explain_statements() {
        let s = parse_statement("EXPLAIN SELECT g, COUNT(*), SUM(v) FROM r GROUP BY g").unwrap();
        match s {
            Statement::Explain(q) => {
                assert_eq!(q.table, "r");
                assert_eq!(q.query.group_by, "g");
            }
            other => panic!("expected EXPLAIN, parsed {other:?}"),
        }
        // Case-insensitive, like the other keywords.
        assert!(matches!(
            parse_statement("explain select g, sum(v) from r group by g").unwrap(),
            Statement::Explain(_)
        ));
        // A bare SELECT parses as a Select statement.
        assert!(matches!(
            parse_statement("SELECT g, SUM(v) FROM r GROUP BY g").unwrap(),
            Statement::Select(_)
        ));
    }

    #[test]
    fn parses_explain_analyze_statements() {
        let s = parse_statement("EXPLAIN ANALYZE SELECT g, SUM(v) FROM r GROUP BY g").unwrap();
        match s {
            Statement::ExplainAnalyze(q) => {
                assert_eq!(q.table, "r");
                assert_eq!(q.query.group_by, "g");
            }
            other => panic!("expected EXPLAIN ANALYZE, parsed {other:?}"),
        }
        assert!(matches!(
            parse_statement("explain analyze select g, sum(v) from r group by g").unwrap(),
            Statement::ExplainAnalyze(_)
        ));
        // ANALYZE only means something directly after EXPLAIN; elsewhere
        // it is an ordinary identifier (here: an unknown table's name).
        assert!(parse_statement("SELECT g, SUM(v) FROM analyze GROUP BY g").is_ok());
    }

    #[test]
    fn template_records_slots_in_sql_order() {
        let t = parse_template(
            "SELECT g, COUNT(*), SUM(v) FROM r WHERE w > ? GROUP BY g \
             HAVING SUM(v) <> ? ORDER BY SUM(v) DESC LIMIT ?",
        )
        .unwrap();
        assert_eq!(
            t.slots,
            vec![
                ParamSlot::FilterConstant,
                ParamSlot::HavingConstant,
                ParamSlot::Limit
            ]
        );
        // Sentinels hold the placeholder positions with the right kinds.
        assert_eq!(
            t.query.filter,
            Some(("w".into(), Predicate::GreaterThan(1)))
        );
        assert_eq!(t.query.having.unwrap().pred, Predicate::NotEqual(1));
        assert_eq!(t.query.order_by.unwrap().limit, Some(1));
    }

    #[test]
    fn template_without_placeholders_has_no_slots() {
        let t = parse_template("SELECT g, SUM(v) FROM r WHERE w <> 3 GROUP BY g").unwrap();
        assert!(t.slots.is_empty());
        assert_eq!(t.query.filter, Some(("w".into(), Predicate::NotEqual(3))));
    }

    #[test]
    fn template_not_equal_placeholder_stays_off_the_nonzero_compare() {
        // `<> ?` must keep the NotEqual kind: binding decides NonZero.
        let t = parse_template("SELECT g, SUM(v) FROM r WHERE w <> ? GROUP BY g").unwrap();
        assert_eq!(t.query.filter, Some(("w".into(), Predicate::NotEqual(1))));
    }

    #[test]
    fn template_rejects_explain() {
        let e = parse_template("EXPLAIN SELECT g, SUM(v) FROM r GROUP BY g").unwrap_err();
        assert_eq!(
            e,
            ParseSqlError::Expected {
                expected: "SELECT",
                found: "EXPLAIN".into()
            }
        );
    }

    #[test]
    fn placeholders_outside_prepare_are_rejected() {
        for sql in [
            "SELECT g, SUM(v) FROM r WHERE w > ? GROUP BY g",
            "SELECT g, SUM(v) FROM r GROUP BY g HAVING SUM(v) <> ?",
            "SELECT g, SUM(v) FROM r GROUP BY g LIMIT ?",
        ] {
            let e = parse(sql).unwrap_err();
            assert_eq!(e, ParseSqlError::UnboundPlaceholder, "{sql}");
            assert!(e.to_string().contains("prepare"));
        }
    }

    #[test]
    fn stray_placeholder_in_the_select_list_is_a_grammar_error() {
        let e = parse_template("SELECT ?, SUM(v) FROM r GROUP BY g").unwrap_err();
        assert!(matches!(e, ParseSqlError::Expected { .. }));
    }

    #[test]
    fn plain_parse_rejects_explain() {
        let e = parse("EXPLAIN SELECT g, SUM(v) FROM r GROUP BY g").unwrap_err();
        assert_eq!(
            e,
            ParseSqlError::Expected {
                expected: "SELECT",
                found: "EXPLAIN".into()
            }
        );
    }

    #[test]
    fn explain_of_malformed_select_reports_the_inner_error() {
        let e = parse_statement("EXPLAIN SELECT g, SUM(v) FROM").unwrap_err();
        assert_eq!(e, ParseSqlError::UnexpectedEnd("the table name"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<ParseSqlError>();
    }

    #[test]
    fn parses_transaction_brackets() {
        assert!(matches!(
            parse_statement("BEGIN READ ONLY").unwrap(),
            Statement::Begin { read_only: true }
        ));
        assert!(matches!(
            parse_statement("begin read only;").unwrap(),
            Statement::Begin { read_only: true }
        ));
        assert!(matches!(
            parse_statement("COMMIT").unwrap(),
            Statement::Commit
        ));
        assert!(matches!(
            parse_statement("commit;").unwrap(),
            Statement::Commit
        ));
        assert!(matches!(
            parse_statement("ROLLBACK").unwrap(),
            Statement::Rollback
        ));
        assert!(matches!(
            parse_statement("rollback;").unwrap(),
            Statement::Rollback
        ));
    }

    #[test]
    fn bare_begin_opens_a_write_transaction() {
        for sql in ["BEGIN", "BEGIN;", "BEGIN TRANSACTION", "begin transaction;"] {
            assert!(
                matches!(
                    parse_statement(sql).unwrap(),
                    Statement::Begin { read_only: false }
                ),
                "{sql} should open a write transaction"
            );
        }
        // Unknown qualifiers still get guidance.
        let e = parse_statement("BEGIN READ WRITE").unwrap_err();
        assert!(e.to_string().contains("ONLY"), "{e}");
        let e = parse_statement("BEGIN SOMETHING").unwrap_err();
        assert!(e.to_string().contains("TRANSACTION"), "{e}");
        assert_eq!(
            parse_statement("BEGIN READ ONLY extra").unwrap_err(),
            ParseSqlError::TrailingInput("extra".into())
        );
        assert_eq!(
            parse_statement("COMMIT extra").unwrap_err(),
            ParseSqlError::TrailingInput("extra".into())
        );
        assert_eq!(
            parse_statement("ROLLBACK extra").unwrap_err(),
            ParseSqlError::TrailingInput("extra".into())
        );
    }

    #[test]
    fn parses_delete_statements() {
        match parse_statement("DELETE FROM r WHERE g > 3;").unwrap() {
            Statement::Delete(d) => {
                assert_eq!(d.table, "r");
                assert_eq!(d.filter, Some(("g".into(), Predicate::GreaterThan(3))));
            }
            other => panic!("expected DELETE, parsed {other:?}"),
        }
        match parse_statement("delete from r").unwrap() {
            Statement::Delete(d) => {
                assert_eq!(d.table, "r");
                assert_eq!(d.filter, None, "no WHERE deletes every row");
            }
            other => panic!("expected DELETE, parsed {other:?}"),
        }
        assert_eq!(
            parse_statement("DELETE FROM r WHERE g > 3 extra").unwrap_err(),
            ParseSqlError::TrailingInput("extra".into())
        );
    }

    #[test]
    fn parses_update_statements() {
        match parse_statement("UPDATE r SET v = 9, w = 1 WHERE g <> 0;").unwrap() {
            Statement::Update(u) => {
                assert_eq!(u.table, "r");
                assert_eq!(u.sets, vec![("v".into(), 9), ("w".into(), 1)]);
                assert_eq!(u.filter, Some(("g".into(), Predicate::NonZero)));
            }
            other => panic!("expected UPDATE, parsed {other:?}"),
        }
        match parse_statement("update r set v = 5").unwrap() {
            Statement::Update(u) => {
                assert_eq!(u.sets, vec![("v".into(), 5)]);
                assert_eq!(u.filter, None, "no WHERE updates every row");
            }
            other => panic!("expected UPDATE, parsed {other:?}"),
        }
        // Typed errors: duplicate SET column, oversized value, missing `=`.
        assert_eq!(
            parse_statement("UPDATE r SET v = 1, v = 2").unwrap_err(),
            ParseSqlError::InsertDuplicateColumn("v".into())
        );
        assert_eq!(
            parse_statement("UPDATE r SET v = 4294967296").unwrap_err(),
            ParseSqlError::ConstantTooLarge {
                value: 4_294_967_296
            }
        );
        assert!(matches!(
            parse_statement("UPDATE r SET v 5").unwrap_err(),
            ParseSqlError::Expected { expected: "=", .. }
        ));
    }

    #[test]
    fn parses_create_snapshot() {
        match parse_statement("CREATE SNAPSHOT before_load;").unwrap() {
            Statement::CreateSnapshot(name) => assert_eq!(name, "before_load"),
            other => panic!("expected CREATE SNAPSHOT, parsed {other:?}"),
        }
        assert!(matches!(
            parse_statement("CREATE TABLE t").unwrap_err(),
            ParseSqlError::Expected {
                expected: "SNAPSHOT",
                ..
            }
        ));
    }

    #[test]
    fn parses_as_of_clauses() {
        let q = parse("SELECT g, SUM(v) FROM r AS OF before_load GROUP BY g").unwrap();
        assert_eq!(q.as_of, Some(AsOf::Name("before_load".into())));
        let q =
            parse("SELECT g, SUM(v) FROM r AS OF data_version 3 WHERE v > 1 GROUP BY g").unwrap();
        assert_eq!(q.as_of, Some(AsOf::DataVersion(3)));
        assert!(q.query.filter.is_some(), "WHERE still parses after AS OF");
        let q = parse("SELECT g, SUM(v) FROM r GROUP BY g").unwrap();
        assert_eq!(q.as_of, None);
        // `AS OF data_version` needs the number.
        assert!(matches!(
            parse("SELECT g, SUM(v) FROM r AS OF data_version GROUP BY g").unwrap_err(),
            ParseSqlError::Expected {
                expected: "a version number",
                ..
            }
        ));
    }

    #[test]
    fn templates_reject_as_of() {
        let e = parse_template("SELECT g, SUM(v) FROM r AS OF x GROUP BY g").unwrap_err();
        assert!(e.to_string().contains("prepared"), "{e}");
    }

    #[test]
    fn equality_in_update_where_is_still_rejected() {
        let e = parse_statement("UPDATE r SET v = 1 WHERE g = 2").unwrap_err();
        assert!(matches!(e, ParseSqlError::UnsupportedComparison(_)));
        let e = parse_statement("DELETE FROM r WHERE g = 2").unwrap_err();
        assert!(matches!(e, ParseSqlError::UnsupportedComparison(_)));
    }

    #[test]
    fn plain_parse_and_templates_reject_transaction_brackets() {
        assert_eq!(
            parse("BEGIN READ ONLY").unwrap_err(),
            ParseSqlError::Expected {
                expected: "SELECT",
                found: "BEGIN".into()
            }
        );
        assert_eq!(
            parse("COMMIT").unwrap_err(),
            ParseSqlError::Expected {
                expected: "SELECT",
                found: "COMMIT".into()
            }
        );
        assert!(matches!(
            parse_template("BEGIN READ ONLY").unwrap_err(),
            ParseSqlError::Expected { .. }
        ));
    }

    #[test]
    fn parses_insert_statements() {
        let s = parse_statement("INSERT INTO r (g, v) VALUES (1, 10), (2, 20);").unwrap();
        match s {
            Statement::Insert(ins) => {
                assert_eq!(ins.table, "r");
                assert_eq!(ins.columns, vec!["g".to_string(), "v".to_string()]);
                assert_eq!(ins.rows, vec![vec![1, 10], vec![2, 20]]);
            }
            _ => panic!("expected INSERT"),
        }
        // Case-insensitive keywords, single column, single tuple.
        let s = parse_statement("insert into t (x) values (7)").unwrap();
        match s {
            Statement::Insert(ins) => {
                assert_eq!(ins.table, "t");
                assert_eq!(ins.columns, vec!["x".to_string()]);
                assert_eq!(ins.rows, vec![vec![7]]);
            }
            _ => panic!("expected INSERT"),
        }
    }

    #[test]
    fn insert_arity_mismatch_is_a_typed_parse_error() {
        let e = parse_statement("INSERT INTO r (g, v) VALUES (1, 10), (2)").unwrap_err();
        assert_eq!(
            e,
            ParseSqlError::InsertArity {
                tuple: 2,
                expected: 2,
                got: 1
            }
        );
        assert!(e.to_string().contains("tuple 2"));
        let e = parse_statement("INSERT INTO r (g) VALUES (1, 2)").unwrap_err();
        assert_eq!(
            e,
            ParseSqlError::InsertArity {
                tuple: 1,
                expected: 1,
                got: 2
            }
        );
    }

    #[test]
    fn insert_duplicate_column_is_a_typed_parse_error() {
        let e = parse_statement("INSERT INTO r (g, g) VALUES (1, 2)").unwrap_err();
        assert_eq!(e, ParseSqlError::InsertDuplicateColumn("g".into()));
        assert!(e.to_string().contains("twice"));
    }

    #[test]
    fn insert_oversized_value_is_a_typed_parse_error() {
        let e = parse_statement("INSERT INTO r (g) VALUES (4294967296)").unwrap_err();
        assert_eq!(
            e,
            ParseSqlError::InsertValueTooLarge {
                tuple: 1,
                value: 4_294_967_296
            }
        );
        assert!(e.to_string().contains("32-bit"));
        // u32::MAX itself still fits.
        assert!(parse_statement("INSERT INTO r (g) VALUES (4294967295)").is_ok());
    }

    #[test]
    fn insert_grammar_errors_are_reported() {
        assert!(matches!(
            parse_statement("INSERT r (g) VALUES (1)").unwrap_err(),
            ParseSqlError::Expected {
                expected: "INTO",
                ..
            }
        ));
        assert!(matches!(
            parse_statement("INSERT INTO r VALUES (1)").unwrap_err(),
            ParseSqlError::Expected { .. }
        ));
        assert!(matches!(
            parse_statement("INSERT INTO r (g) VALUES (?)").unwrap_err(),
            ParseSqlError::Expected {
                expected: "a value",
                ..
            }
        ));
        assert_eq!(
            parse_statement("INSERT INTO r (g) VALUES (1) extra").unwrap_err(),
            ParseSqlError::TrailingInput("extra".into())
        );
        assert_eq!(
            parse_statement("INSERT INTO r (g) VALUES").unwrap_err(),
            ParseSqlError::UnexpectedEnd("(")
        );
    }

    #[test]
    fn oversized_numeric_literals_are_typed_errors_not_truncation() {
        // Beyond 64 bits: the lexer rejects instead of wrapping.
        let e =
            parse("SELECT g, SUM(v) FROM r WHERE v > 99999999999999999999 GROUP BY g").unwrap_err();
        assert_eq!(
            e,
            ParseSqlError::NumberTooLarge("99999999999999999999".into())
        );
        assert!(e.to_string().contains("64 bits"));
        // Fits u64 but not a 32-bit column value: the comparison
        // constant is rejected instead of silently truncated to 0.
        let e = parse("SELECT g, SUM(v) FROM r WHERE v <> 4294967296 GROUP BY g").unwrap_err();
        assert_eq!(
            e,
            ParseSqlError::ConstantTooLarge {
                value: 4_294_967_296
            }
        );
        let e = parse("SELECT g, SUM(v) FROM r GROUP BY g HAVING SUM(v) > 4294967296").unwrap_err();
        assert!(matches!(e, ParseSqlError::ConstantTooLarge { .. }));
        // u32::MAX itself still parses.
        assert!(parse("SELECT g, SUM(v) FROM r WHERE v < 4294967295 GROUP BY g").is_ok());
        // An over-u32 LIMIT saturates (it means "keep everything").
        let q = parse("SELECT g, SUM(v) FROM r GROUP BY g LIMIT 18446744073709551615").unwrap();
        assert_eq!(q.query.order_by.unwrap().limit, Some(usize::MAX));
    }

    #[test]
    fn plain_parse_and_templates_reject_insert() {
        let e = parse("INSERT INTO r (g) VALUES (1)").unwrap_err();
        assert_eq!(
            e,
            ParseSqlError::Expected {
                expected: "SELECT",
                found: "INSERT".into()
            }
        );
        let e = parse_template("INSERT INTO r (g) VALUES (1)").unwrap_err();
        assert!(matches!(e, ParseSqlError::Expected { .. }));
    }
}
