//! Per-query execution tracing — the span tree behind `EXPLAIN ANALYZE`.
//!
//! A [`QueryTrace`] is built while a query *actually executes*: every
//! plan step records the rows it saw and the simulated cycles it cost
//! ([`StepTrace`]), every morsel records where it ran and what it waited
//! for ([`MorselTrace`]), and the coordinator folds the lot into
//! per-step and per-worker rollups with the planner's *estimates* kept
//! alongside the observed *actuals* ([`StepRollup`]). The rendered form
//! is the `EXPLAIN ANALYZE` output.
//!
//! Tracing is opt-in per query and changes no results: recording only
//! *reads* the simulated cycle counter and host-side lengths, neither of
//! which perturbs the machine, so a traced run is bit-identical to an
//! untraced one (property-tested in `tests/observability.rs`). When no
//! trace is requested the execution paths carry a `None` and pay one
//! branch per phase, nothing more.

use crate::engine::QueryOutput;
use crate::plan::{PlanStep, QueryPlan};

/// One executed plan step's observed actuals, recorded by
/// [`crate::Session`] while the step runs.
#[derive(Debug, Clone)]
pub struct StepTrace {
    /// The plan step that ran.
    pub step: PlanStep,
    /// Rows entering the step.
    pub rows_in: u64,
    /// Rows leaving the step.
    pub rows_out: u64,
    /// Simulated cycles the step cost (cycle-counter delta; exact and
    /// deterministic).
    pub cycles: u64,
}

/// One morsel's execution record: where it ran, what it waited for, and
/// the per-step actuals of its distributive slice.
#[derive(Debug, Clone)]
pub struct MorselTrace {
    /// The shard whose plan this morsel belongs to.
    pub shard: usize,
    /// Morsel row range start (inclusive).
    pub lo: usize,
    /// Morsel row range end (exclusive).
    pub hi: usize,
    /// The worker whose deque the morsel was seeded onto.
    pub home_worker: usize,
    /// The OS worker that actually ran it (nondeterministic under
    /// stealing; diagnostic only).
    pub worker: usize,
    /// Whether the running worker stole it from another deque.
    pub stolen: bool,
    /// Host nanoseconds between job submission and the morsel starting
    /// (wall-clock; diagnostic only, never asserted on).
    pub queue_wait_ns: u64,
    /// Simulated cycles the morsel's distributive slice cost.
    pub cycles: u64,
    /// Per-step actuals, in execution order.
    pub steps: Vec<StepTrace>,
}

/// Estimated-vs-actual rollup of one plan step across every morsel and
/// shard that ran it.
#[derive(Debug, Clone)]
pub struct StepRollup {
    /// The rendered plan step (plans that differ per shard — e.g. in
    /// algorithm choice — roll up separately).
    pub step: String,
    /// The planner's row estimate for the step's output, summed across
    /// shard plans; `None` where the planner makes no estimate (e.g.
    /// WHERE selectivity).
    pub est_rows: Option<u64>,
    /// Observed rows entering the step, summed across morsels.
    pub rows_in: u64,
    /// Observed rows leaving the step, summed across morsels.
    pub rows_out: u64,
    /// Simulated cycles, summed across morsels.
    pub cycles: u64,
    /// How many morsels executed the step.
    pub morsels: u64,
}

/// Deterministic per-worker rollup from the virtual schedule (see
/// `virtual_schedule` in the executor): the same measured morsel costs
/// replayed onto virtual workers, so the numbers are reproducible even
/// though physical placement is racy.
#[derive(Debug, Clone)]
pub struct WorkerRollup {
    /// Virtual worker index.
    pub worker: usize,
    /// Simulated cycles of the morsels this worker ran.
    pub cycles: u64,
    /// Morsels this worker ran.
    pub morsels: u64,
    /// How many of those morsels it stole.
    pub steals: u64,
}

/// The folded trace of one executed query: per-step estimated-vs-actual
/// rollups, per-worker rollups, morsel spans, and the shared-state costs
/// (key dictionary, join freeze barrier) — everything `EXPLAIN ANALYZE`
/// renders.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// The traced statement, rendered back to SQL.
    pub sql: String,
    /// Per-step rollups in first-execution order.
    pub steps: Vec<StepRollup>,
    /// Every morsel's span (empty for single-session execution, which
    /// runs the plan whole).
    pub morsels: Vec<MorselTrace>,
    /// Deterministic per-worker rollups (empty for single-session).
    pub workers: Vec<WorkerRollup>,
    /// Steals in the deterministic virtual schedule.
    pub steals: u64,
    /// Morsels actually handed to the executor (after zone-map
    /// pruning).
    pub morsels_dispatched: u64,
    /// Morsels skipped before dispatch because their zone maps proved
    /// the WHERE predicate matches no row in their range.
    pub morsels_pruned: u64,
    /// Rows those pruned morsels covered — rows the query never
    /// touched.
    pub rows_pruned: u64,
    /// Entries interned into the query-scoped [`crate::KeyDictionary`]
    /// (composite GROUP BY re-keying, join build side); 0 when unused.
    pub dict_entries: u64,
    /// Dictionary intern calls answered by an existing entry.
    pub dict_hits: u64,
    /// Host nanoseconds spent in the join build→probe freeze barrier;
    /// `None` for non-join queries. Wall-clock, diagnostic only.
    pub freeze_ns: Option<u64>,
    /// Total host nanoseconds morsels waited in deques (wall-clock,
    /// diagnostic only).
    pub queue_wait_ns: u64,
    /// Total simulated cycles charged to the query (the virtual-schedule
    /// makespan for sharded execution, the machine delta otherwise).
    pub cycles: u64,
    /// Result rows returned.
    pub rows: u64,
}

impl QueryTrace {
    /// An empty trace for a statement.
    pub(crate) fn new(sql: String) -> Self {
        Self {
            sql,
            steps: Vec::new(),
            morsels: Vec::new(),
            workers: Vec::new(),
            steals: 0,
            morsels_dispatched: 0,
            morsels_pruned: 0,
            rows_pruned: 0,
            dict_entries: 0,
            dict_hits: 0,
            freeze_ns: None,
            queue_wait_ns: 0,
            cycles: 0,
            rows: 0,
        }
    }

    fn rollup_mut(&mut self, step: String) -> &mut StepRollup {
        if let Some(i) = self.steps.iter().position(|r| r.step == step) {
            return &mut self.steps[i];
        }
        self.steps.push(StepRollup {
            step,
            est_rows: None,
            rows_in: 0,
            rows_out: 0,
            cycles: 0,
            morsels: 0,
        });
        self.steps.last_mut().expect("just pushed")
    }

    /// Folds one plan's estimates in: establishes the rollup order and
    /// sums `est_rows` across shard plans. Pass-through staging steps
    /// are estimated at the plan's input rows, the aggregate kernels at
    /// the planner's cardinality estimate, and step-intrinsic estimates
    /// come from [`PlanStep::estimated_rows`].
    pub(crate) fn estimate_plan(&mut self, plan: &QueryPlan) {
        for step in plan.steps() {
            let est = match step {
                PlanStep::FuseKeys { .. } | PlanStep::VectorFilter { .. } => {
                    Some(plan.rows() as u64)
                }
                PlanStep::Aggregate(_) | PlanStep::MinMaxKernel => {
                    Some(plan.cardinality_estimate())
                }
                other => other.estimated_rows(),
            };
            let r = self.rollup_mut(step.to_string());
            if let Some(est) = est {
                r.est_rows = Some(r.est_rows.unwrap_or(0).saturating_add(est));
            }
        }
    }

    /// Folds one execution's observed step actuals in.
    pub(crate) fn record_steps(&mut self, steps: &[StepTrace]) {
        for s in steps {
            let r = self.rollup_mut(s.step.to_string());
            r.rows_in += s.rows_in;
            r.rows_out += s.rows_out;
            r.cycles += s.cycles;
            r.morsels += 1;
        }
    }

    /// Folds a host-side coordinator step (merge/finalise, join
    /// build/probe) in: no simulated cycles, observed rows only.
    pub(crate) fn record_host_step(
        &mut self,
        step: String,
        est_rows: Option<u64>,
        rows_in: u64,
        rows_out: u64,
    ) {
        let r = self.rollup_mut(step);
        if let Some(est) = est_rows {
            r.est_rows = Some(r.est_rows.unwrap_or(0).saturating_add(est));
        }
        r.rows_in += rows_in;
        r.rows_out += rows_out;
        r.morsels += 1;
    }

    /// Like [`QueryTrace::record_host_step`], but when `before` names an
    /// existing rollup and `step` does not, the new rollup is inserted
    /// before it — keeping the rendered order aligned with execution
    /// order when a coordinator step runs between plan steps.
    pub(crate) fn record_host_step_before(
        &mut self,
        before: Option<&str>,
        step: String,
        est_rows: Option<u64>,
        rows_in: u64,
        rows_out: u64,
    ) {
        if !self.steps.iter().any(|r| r.step == step) {
            if let Some(pos) = before.and_then(|b| self.steps.iter().position(|r| r.step == b)) {
                self.steps.insert(
                    pos,
                    StepRollup {
                        step: step.clone(),
                        est_rows: None,
                        rows_in: 0,
                        rows_out: 0,
                        cycles: 0,
                        morsels: 0,
                    },
                );
            }
        }
        self.record_host_step(step, est_rows, rows_in, rows_out);
    }

    /// Renders the trace the way [`QueryPlan::explain`] renders a plan,
    /// with each numbered step annotated `est≈…` vs `rows=in→out` and
    /// its simulated cycle cost.
    ///
    /// Everything rendered except the `*_ns` wall-clock diagnostics is
    /// deterministic for a given table and configuration: cycles are
    /// simulated time and worker loads come from the virtual schedule.
    pub fn explain(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{}", self.sql);
        let _ = write!(
            out,
            "\n  rows={} cycles={} morsels={} steals={} queue_wait_ns={}",
            self.rows,
            self.cycles,
            self.morsels.len(),
            self.steals,
            self.queue_wait_ns
        );
        if self.morsels_dispatched > 0 || self.morsels_pruned > 0 {
            let _ = write!(
                out,
                "\n  morsels: dispatched={} pruned={} rows_pruned={}",
                self.morsels_dispatched, self.morsels_pruned, self.rows_pruned
            );
        }
        if self.dict_entries > 0 || self.dict_hits > 0 {
            let _ = write!(
                out,
                "\n  dictionary: entries={} hits={}",
                self.dict_entries, self.dict_hits
            );
        }
        if let Some(ns) = self.freeze_ns {
            let _ = write!(out, "\n  freeze_barrier_ns={ns}");
        }
        for (i, r) in self.steps.iter().enumerate() {
            let _ = write!(out, "\n  {}. {}", i + 1, r.step);
            match r.est_rows {
                Some(est) => {
                    let _ = write!(out, " est≈{est}");
                }
                None => out.push_str(" est≈?"),
            }
            let _ = write!(
                out,
                " rows={}→{} cycles={} morsels={}",
                r.rows_in, r.rows_out, r.cycles, r.morsels
            );
        }
        if !self.workers.is_empty() {
            out.push_str("\n  workers:");
            for w in &self.workers {
                let _ = write!(
                    out,
                    " {}:cycles={} morsels={} steals={}",
                    w.worker, w.cycles, w.morsels, w.steals
                );
            }
        }
        out
    }
}

/// What `EXPLAIN ANALYZE` produced: the query's ordinary output —
/// bit-identical to running the statement untraced — plus the trace
/// gathered while producing it.
#[derive(Debug, Clone)]
pub struct AnalyzedQuery {
    /// The executed query's rows and report, exactly as the untraced
    /// statement would have returned them.
    pub output: QueryOutput,
    /// The execution trace.
    pub trace: QueryTrace,
}

impl AnalyzedQuery {
    /// The rendered `EXPLAIN ANALYZE` text (see [`QueryTrace::explain`]).
    pub fn explain(&self) -> String {
        self.trace.explain()
    }
}
