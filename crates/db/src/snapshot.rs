//! MVCC snapshots: immutable point-in-time views of a catalogue.
//!
//! Every read in vagg-db happens **at a snapshot**. A [`Snapshot`] is a
//! consistent cut of a [`crate::SharedCatalogue`] captured under one
//! registry read-lock: for every table it records the schema and data
//! versions, an `Arc`-cheap handle to the immutable base columns, the
//! length of the append-only delta at capture time (a stable *prefix
//! view* — see [`crate::DeltaStore`]), and a clone of the live
//! [`TableStats`]. Nothing blocks the write path: appends, compactions
//! and re-registrations proceed freely while snapshots are alive, and
//! the snapshot keeps answering from the rows it pinned.
//!
//! * [`crate::Database::run_sql`] / [`crate::Database::execute_sql`]
//!   are *snapshot-of-now* wrappers: each statement captures a
//!   single-table cut, plans and runs at it, and releases it — there is
//!   exactly one read path.
//! * [`crate::Database::run_sql_at`] and
//!   [`crate::PreparedStatement::execute_at`] run at an explicit,
//!   long-lived snapshot: repeatable reads across statements, plans
//!   pinned to the snapshot's statistics (the §V-D choice is made from
//!   the pinned cardinality, not the drifted live one).
//! * SQL `BEGIN READ ONLY` / `COMMIT` map a session onto one snapshot
//!   for the duration of the transaction.
//!
//! ## Pins and deferred GC
//!
//! Each table cut registers a **pin** `(table, schema version, delta
//! epoch, data version, prefix)` in the catalogue's pin registry;
//! [`Drop`] releases it. A compaction (or re-registration) that would
//! discard delta rows some pin still reads *retires* the delta to a
//! frozen side store instead — a deferred GC, counted in
//! [`SnapshotStats::deferred_gcs`] — and the store is reclaimed when
//! the last pin on that epoch drops
//! ([`SnapshotStats::reclaimed_gcs`]). The immutable base needs no such
//! machinery: the snapshot's own `Arc` handles keep the old base
//! columns alive for exactly as long as they are readable.
//!
//! ```
//! use vagg_db::{Database, Table};
//!
//! let mut db = Database::new();
//! db.register(
//!     Table::new("r")
//!         .with_column("g", vec![1, 2, 1])
//!         .with_column("v", vec![10, 20, 30]),
//! );
//! let snap = db.snapshot(); // point-in-time view of every table
//! db.run_sql("INSERT INTO r (g, v) VALUES (9, 99)")?;
//! // The live path sees 4 rows; the snapshot still answers with 3.
//! assert_eq!(db.table("r").unwrap().rows(), 4);
//! assert_eq!(snap.table("r").unwrap().rows(), 3);
//! # Ok::<(), vagg_db::SqlError>(())
//! ```

use crate::catalogue::SharedCatalogue;
use crate::delta::{DeltaCut, DeltaStore, TableStats};
use crate::table::Table;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// One table's slice of a snapshot: everything needed to rebuild the
/// merged view and to re-plan at the pinned statistics, captured under
/// a single registry read-lock.
#[derive(Debug, Clone)]
pub(crate) struct TableCut {
    /// The registration (schema) version the cut belongs to.
    pub(crate) schema_version: u64,
    /// The data version pinned by this cut.
    pub(crate) data_version: u64,
    /// The delta generation the prefix indexes into.
    pub(crate) epoch: u64,
    /// The immutable base at capture time (`Arc`-shared columns — this
    /// handle is what keeps a replaced base readable).
    pub(crate) base: Table,
    /// Delta state visible to this cut (a stable prefix of the
    /// append-only row/tombstone/overwrite logs at `epoch`).
    pub(crate) delta_cut: DeltaCut,
    /// The live statistics at capture time — what plans made at this
    /// snapshot feed the §V-D policy.
    pub(crate) stats: TableStats,
    /// The registry's already-materialised merged view, when it was
    /// clean at capture time (reads at this cut are then free).
    pub(crate) clean_view: Option<Table>,
}

impl TableCut {
    /// Delta state this cut will actually read from the shared store:
    /// empty when the cut carries its own materialised clean view (the
    /// snapshot then never touches the delta, so compaction needs no
    /// deferral on its account), else the pinned cut.
    fn pin_cut(&self) -> DeltaCut {
        if self.clean_view.is_some() {
            DeltaCut::default()
        } else {
            self.delta_cut
        }
    }
}

/// The pin a [`TableCut`] registers; the registry key is
/// `(table, schema_version, epoch)` and the slot key the data version.
#[derive(Debug, Clone, Copy)]
struct PinSlot {
    count: usize,
    cut: DeltaCut,
}

/// The catalogue-side pin registry: which delta epochs live snapshots
/// still read, plus the retired (deferred-GC) delta stores and the
/// observability counters behind [`SnapshotStats`].
#[derive(Debug, Default)]
pub(crate) struct PinRegistry {
    /// `(table, schema_version, epoch)` → data version → pin slot.
    pins: BTreeMap<(String, u64, u64), BTreeMap<u64, PinSlot>>,
    /// Deltas whose rows were discarded by compaction/re-registration
    /// while still pinned: frozen here until the last pin drops.
    retired: BTreeMap<(String, u64, u64), DeltaStore>,
    live_snapshots: u64,
    snapshots_taken: u64,
    deferred_gcs: u64,
    reclaimed_gcs: u64,
}

impl PinRegistry {
    /// Registers one snapshot's cuts (the snapshot itself is counted
    /// once, each table cut holds one pin).
    pub(crate) fn register(&mut self, cuts: &BTreeMap<String, TableCut>) {
        self.snapshots_taken += 1;
        self.live_snapshots += 1;
        for (table, cut) in cuts {
            let slot = self
                .pins
                .entry((table.clone(), cut.schema_version, cut.epoch))
                .or_default()
                .entry(cut.data_version)
                .or_insert(PinSlot {
                    count: 0,
                    cut: cut.pin_cut(),
                });
            slot.count += 1;
            // Cuts at one data version always agree on the logs, but a
            // clean-view cut pins an empty cut (it never reads the
            // delta) while a view-less one pins the real prefixes —
            // keep the stronger requirement for the shared slot.
            let pin = cut.pin_cut();
            slot.cut = DeltaCut {
                rows: slot.cut.rows.max(pin.rows),
                tombstones: slot.cut.tombstones.max(pin.tombstones),
                overwrites: slot.cut.overwrites.max(pin.overwrites),
            };
        }
    }

    /// Releases one snapshot's pins, reclaiming retired deltas whose
    /// last prefix pin just dropped.
    pub(crate) fn release(&mut self, cuts: &BTreeMap<String, TableCut>) {
        self.live_snapshots = self.live_snapshots.saturating_sub(1);
        for (table, cut) in cuts {
            let key = (table.clone(), cut.schema_version, cut.epoch);
            let Some(slots) = self.pins.get_mut(&key) else {
                debug_assert!(false, "released a pin that was never registered");
                continue;
            };
            if let Some(slot) = slots.get_mut(&cut.data_version) {
                slot.count -= 1;
                if slot.count == 0 {
                    slots.remove(&cut.data_version);
                }
            }
            if slots.is_empty() {
                self.pins.remove(&key);
            }
            if !self.needs_delta(&key) && self.retired.remove(&key).is_some() {
                self.reclaimed_gcs += 1;
            }
        }
    }

    /// Whether any live pin still reads delta rows of this generation —
    /// the compaction/re-registration check that decides between
    /// freeing the delta and retiring it.
    pub(crate) fn needs_delta(&self, key: &(String, u64, u64)) -> bool {
        self.pins
            .get(key)
            .is_some_and(|slots| slots.values().any(|s| !s.cut.is_empty()))
    }

    /// Parks a discarded-but-pinned delta in the side store (a deferred
    /// GC).
    pub(crate) fn retire(&mut self, key: (String, u64, u64), delta: DeltaStore) {
        self.deferred_gcs += 1;
        self.retired.insert(key, delta);
    }

    /// The retired delta a pinned cut reads after its live store moved
    /// on.
    pub(crate) fn retired(&self, key: &(String, u64, u64)) -> Option<&DeltaStore> {
        self.retired.get(key)
    }

    /// The current observability counters.
    pub(crate) fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            live_snapshots: self.live_snapshots,
            live_pins: self
                .pins
                .values()
                .flat_map(|slots| slots.values())
                .map(|s| s.count as u64)
                .sum(),
            snapshots_taken: self.snapshots_taken,
            oldest_pinned_version: self
                .pins
                .values()
                .flat_map(|slots| slots.keys())
                .min()
                .copied(),
            deferred_gcs: self.deferred_gcs,
            reclaimed_gcs: self.reclaimed_gcs,
            retired_deltas: self.retired.len(),
        }
    }
}

/// Observability counters for the snapshot subsystem of one catalogue
/// (see [`crate::SharedCatalogue::snapshot_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SnapshotStats {
    /// Snapshots currently alive (captured, not yet dropped).
    pub live_snapshots: u64,
    /// Table pins currently held (one per table per live snapshot).
    pub live_pins: u64,
    /// Snapshots captured so far — including the snapshot-of-now cuts
    /// every [`crate::Database::run_sql`] read takes, so this counter
    /// is also the proof that the live path runs through the one
    /// snapshot read path.
    pub snapshots_taken: u64,
    /// The smallest data version any live pin holds (`None` when no
    /// snapshot is alive) — how far back the oldest reader still looks.
    pub oldest_pinned_version: Option<u64>,
    /// Delta stores whose reclamation was deferred: compaction or
    /// re-registration discarded rows a live snapshot still reads, so
    /// the delta was retired to the side store instead of freed.
    pub deferred_gcs: u64,
    /// Retired delta stores reclaimed after their last pin dropped.
    pub reclaimed_gcs: u64,
    /// Retired delta stores currently parked (deferred, not yet
    /// reclaimed).
    pub retired_deltas: usize,
}

impl SnapshotStats {
    /// Folds these counters into a [`crate::MetricsSnapshot`] under
    /// `snapshot_*` names — the MVCC subsystem's contribution to the
    /// unified registry view. The `oldest_pinned_version` gauge is
    /// omitted: it is not a sum-mergeable counter.
    pub(crate) fn export_into(&self, snap: &mut crate::metrics::MetricsSnapshot) {
        snap.add("snapshots_live", self.live_snapshots);
        snap.add("snapshot_pins_live", self.live_pins);
        snap.add("snapshots_taken", self.snapshots_taken);
        snap.add("snapshot_deferred_gcs", self.deferred_gcs);
        snap.add("snapshot_reclaimed_gcs", self.reclaimed_gcs);
        snap.add("snapshot_retired_deltas", self.retired_deltas as u64);
    }

    /// Folds another catalogue's counters into this one (the sharded
    /// observability view: one registry per shard).
    pub(crate) fn absorb(&mut self, other: &SnapshotStats) {
        self.live_snapshots += other.live_snapshots;
        self.live_pins += other.live_pins;
        self.snapshots_taken += other.snapshots_taken;
        self.oldest_pinned_version = match (self.oldest_pinned_version, other.oldest_pinned_version)
        {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.deferred_gcs += other.deferred_gcs;
        self.reclaimed_gcs += other.reclaimed_gcs;
        self.retired_deltas += other.retired_deltas;
    }
}

/// An immutable, consistent point-in-time view of a catalogue — see
/// the [module docs](self). Captured by
/// [`crate::SharedCatalogue::snapshot`] /
/// [`crate::Database::snapshot`]; dropping it releases its pins.
pub struct Snapshot {
    catalogue: SharedCatalogue,
    cuts: BTreeMap<String, TableCut>,
    /// Merged views materialised on first read, per table.
    views: Mutex<BTreeMap<String, Table>>,
}

impl fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let versions: BTreeMap<&str, u64> = self
            .cuts
            .iter()
            .map(|(t, c)| (t.as_str(), c.data_version))
            .collect();
        f.debug_struct("Snapshot")
            .field("tables", &versions)
            .finish_non_exhaustive()
    }
}

impl Snapshot {
    pub(crate) fn over(catalogue: SharedCatalogue, cuts: BTreeMap<String, TableCut>) -> Self {
        Self {
            catalogue,
            cuts,
            views: Mutex::new(BTreeMap::new()),
        }
    }

    /// The catalogue this snapshot was cut from.
    pub fn catalogue(&self) -> &SharedCatalogue {
        &self.catalogue
    }

    /// Tables captured in this snapshot, sorted. The full-catalogue
    /// [`crate::SharedCatalogue::snapshot`] captures every table; the
    /// snapshot-of-now cuts behind `run_sql` capture only the table the
    /// statement reads.
    pub fn table_names(&self) -> Vec<String> {
        self.cuts.keys().cloned().collect()
    }

    /// The pinned data version of `table` — what every read and plan at
    /// this snapshot sees, regardless of later ingest.
    pub fn data_version(&self, table: &str) -> Option<u64> {
        self.cuts.get(table).map(|c| c.data_version)
    }

    /// The schema (registration) version of `table` at capture time.
    pub fn schema_version(&self, table: &str) -> Option<u64> {
        self.cuts.get(table).map(|c| c.schema_version)
    }

    /// Delta rows pinned by this snapshot (rows that were parked in the
    /// table's delta store at capture time).
    pub fn delta_rows(&self, table: &str) -> Option<usize> {
        self.cuts.get(table).map(|c| c.delta_cut.rows)
    }

    /// The table statistics at capture time — the numbers plans made at
    /// this snapshot feed the §V-D policy.
    pub fn table_stats(&self, table: &str) -> Option<TableStats> {
        self.cuts.get(table).map(|c| c.stats.clone())
    }

    /// The pinned content of `table`: base ++ delta-prefix, merged at
    /// the captured versions (materialised on first read, cached for
    /// the snapshot's lifetime; column data is `Arc`-shared).
    pub fn table(&self, table: &str) -> Option<Table> {
        let cut = self.cuts.get(table)?;
        if let Some(view) = self.views.lock().expect("snapshot view lock").get(table) {
            return Some(view.clone());
        }
        let view = match &cut.clean_view {
            Some(v) => v.clone(),
            None if cut.delta_cut.is_empty() => cut.base.clone(),
            None => self.catalogue.materialise_cut(table, cut),
        };
        self.views
            .lock()
            .expect("snapshot view lock")
            .insert(table.to_string(), view.clone());
        Some(view)
    }

    /// The cut backing `table`, for the catalogue's planner.
    pub(crate) fn cut(&self, table: &str) -> Option<&TableCut> {
        self.cuts.get(table)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.catalogue.release_snapshot(&self.cuts);
    }
}
